"""Concurrent namespace storms against the simulated metadata server.

N simulated clients race create/rename/delete/open traffic through the
per-shard serving loops — over a sharded service and over the 1-shard
FIFO baseline — including storms with a shard-server crash mid-rename.
Every client event must settle, the surviving namespace must match the
per-client bookkeeping, and the namespace invariants must be clean
(run the suite with ``--sanitize`` to also assert engine invariants).
"""

import pytest

from repro.metastore import MetadataService, MetaServer
from repro.metastore.crash import CrashInjector
from repro.metastore.harness import make_entry
from repro.sim import Environment


def run_storm(env, server, n_clients=8, files_per_client=6, rename=True,
              delete_every=3):
    """Drive a create/rename/delete/open storm; returns surviving names.

    Each client owns a disjoint name space, so every operation is
    expected to succeed — the contention under test is shard-queue
    interleaving (and crash recovery), not name collisions.
    """
    survivors: set[str] = set()

    def client(cid):
        owned = []
        for i in range(files_per_client):
            name = f"c{cid}.f{i}"
            yield server.submit("create", name, make_entry(name))
            owned.append(name)
        if rename:
            for i, name in enumerate(list(owned)):
                if i % 2 == 0:
                    new = f"{name}.moved"
                    yield server.submit("rename", name, new)
                    owned[owned.index(name)] = new
        for i, name in enumerate(list(owned)):
            if delete_every and i % delete_every == 0:
                yield server.submit("delete", name)
                owned.remove(name)
        for name in owned:
            entry = yield server.submit("lookup", name)
            assert entry.attrs.name == name
        survivors.update(owned)

    def driver():
        yield env.all_of(
            [env.process(client(c), name=f"client{c}")
             for c in range(n_clients)]
        )

    env.run(env.process(driver(), name="storm"))
    return survivors


def check_clean(server, survivors):
    svc = server.service
    assert set(svc.names()) == survivors
    assert svc.check_invariants() == []
    assert server.queue_lengths() == [0] * svc.n_shards


class TestStorms:
    @pytest.mark.parametrize("shards", [1, 4])
    def test_storm_clean_namespace(self, shards):
        env = Environment()
        svc = MetadataService(n_shards=shards)
        server = MetaServer(env, svc)
        survivors = run_storm(env, server)
        check_clean(server, survivors)
        assert server.crashes == 0
        assert server.total_served > 0

    def test_sharded_storm_is_faster_than_fifo(self):
        def storm_time(shards):
            env = Environment()
            server = MetaServer(env, MetadataService(n_shards=shards))
            run_storm(env, server, n_clients=16, files_per_client=4,
                      rename=False, delete_every=0)
            return env.now

        fifo, sharded = storm_time(1), storm_time(8)
        # the same op count fanned out over 8 queues finishes sooner
        assert sharded < fifo

    @pytest.mark.parametrize("crash_step", [1, 2, 3, 4, 5])
    def test_storm_with_injected_crash_mid_rename(self, crash_step):
        """A server crash inside a rename mutation: salvage + replay +
        resubmit must settle every event with no torn namespace."""
        env = Environment()
        inj = CrashInjector()
        svc = MetadataService(n_shards=4, injector=inj)
        server = MetaServer(env, svc)

        names = [f"f{i}" for i in range(8)]
        done = []

        def client():
            for n in names:
                yield server.submit("create", n, make_entry(n))
            inj.reset()
            inj.arm(crash_step)
            for n in names:
                yield server.submit("rename", n, f"{n}.moved")
            done.append(True)

        env.run(env.process(client(), name="renamer"))
        assert done == [True]
        assert server.crashes == 1
        assert server.salvaged >= 1
        assert set(svc.names()) == {f"{n}.moved" for n in names}
        assert svc.check_invariants() == []

    def test_storm_with_deliberate_shard_kill(self):
        """crash_shard mid-storm: queued requests are salvaged, replayed
        requests are acknowledged, and the storm completes."""
        env = Environment()
        svc = MetadataService(n_shards=4)
        server = MetaServer(env, svc)

        def killer():
            yield env.timeout(server.op_time * 3)
            for idx in range(4):
                server.crash_shard(idx)

        env.process(killer(), name="killer")
        survivors = run_storm(env, server, n_clients=6, files_per_client=4)
        check_clean(server, survivors)
        assert server.crashes == 4

    def test_breaker_trip_quarantines_shard(self):
        env = Environment()
        svc = MetadataService(n_shards=2)
        server = MetaServer(env, svc, breaker_threshold=2)
        server.note_op_failure(0)
        assert server.breakers[0].state == "closed"   # below threshold
        server.note_op_failure(0)                     # trip -> poison pill
        # the poison is consumed (and the server reborn) once simulated
        # time runs; the reborn serving loop then serves the storm
        survivors = run_storm(env, server, n_clients=4, files_per_client=3)
        assert server.crashes == 1
        check_clean(server, survivors)

    def test_app_level_rejection_is_not_a_crash(self):
        env = Environment()
        svc = MetadataService(n_shards=2)
        server = MetaServer(env, svc)
        from repro.core.errors import FileNotFoundError_

        outcome = []

        def client():
            try:
                yield server.submit("delete", "ghost")
            except FileNotFoundError_:
                outcome.append("rejected")

        env.run(env.process(client(), name="client"))
        assert outcome == ["rejected"]
        assert server.crashes == 0
