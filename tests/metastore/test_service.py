"""Unit tests for the sharded metadata service's namespace operations."""

import pytest

from repro.core.errors import FileExistsError_, FileNotFoundError_
from repro.metastore import MetadataService, shard_index
from repro.metastore.harness import make_entry, name_on_shard


def make_service(n_shards=4):
    return MetadataService(n_shards=n_shards)


class TestRouting:
    def test_shard_index_is_deterministic(self):
        assert shard_index("alpha", 4) == shard_index("alpha", 4)
        for n in (1, 2, 4, 8):
            assert 0 <= shard_index("alpha", n) < n

    def test_names_spread_across_shards(self):
        hit = {shard_index(f"file{i}", 4) for i in range(64)}
        assert hit == {0, 1, 2, 3}

    def test_validation(self):
        with pytest.raises(ValueError):
            MetadataService(n_shards=0)


class TestCreateDelete:
    def test_create_then_lookup(self):
        svc = make_service()
        eid = svc.create("a", make_entry("a"))
        assert "a" in svc and len(svc) == 1
        assert svc.lookup("a").attrs.name == "a"
        reg = svc.shard("a").extents[eid]
        assert reg.owner == "a"

    def test_duplicate_create_refused_without_journaling(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        journal_len = len(svc.shard("a").journal)
        with pytest.raises(FileExistsError_):
            svc.create("a", make_entry("a"))
        # the rejection happened before any intent was logged
        assert len(svc.shard("a").journal) == journal_len

    def test_delete_removes_entry_and_extent(self):
        svc = make_service()
        eid = svc.create("a", make_entry("a"))
        svc.delete("a")
        assert "a" not in svc
        assert eid not in svc.shard("a").extents
        with pytest.raises(FileNotFoundError_):
            svc.delete("a")

    def test_counters(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        svc.create("b", make_entry("b"))
        svc.delete("a")
        svc.lookup("b")
        assert (svc.creates, svc.deletes, svc.lookups) == (2, 1, 1)


class TestRename:
    def test_same_shard_rename(self):
        svc = make_service()
        old = name_on_shard(0, 4, "old")
        new = name_on_shard(0, 4, "new")
        eid = svc.create(old, make_entry(old))
        svc.rename(old, new)
        assert old not in svc and new in svc
        assert svc.lookup(new).attrs.name == new
        assert svc.shards[0].extents[eid].owner == new
        assert svc.renames == 1

    def test_cross_shard_rename_moves_entry_and_extent(self):
        svc = make_service()
        old = name_on_shard(0, 4, "old")
        new = name_on_shard(1, 4, "new")
        eid = svc.create(old, make_entry(old))
        svc.rename(old, new)
        assert svc.shard_of(new) == 1
        assert new in svc.shards[1].entries
        assert old not in svc.shards[0].entries
        assert eid in svc.shards[1].extents
        assert eid not in svc.shards[0].extents
        assert svc.shards[1].extents[eid].owner == new

    def test_rename_to_existing_refused(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        svc.create("b", make_entry("b"))
        with pytest.raises(FileExistsError_):
            svc.rename("a", "b")
        assert "a" in svc and "b" in svc

    def test_rename_missing_source_refused(self):
        svc = make_service()
        with pytest.raises(FileNotFoundError_):
            svc.rename("nope", "x")


class TestExtend:
    def test_extend_grows_records_and_extent(self):
        svc = make_service()
        eid = svc.create("a", make_entry("a", n_records=64, record_size=32))
        svc.extend("a", 128)
        assert svc.lookup("a").attrs.n_records == 128
        assert svc.shard("a").extents[eid].nbytes == 128 * 32
        assert svc.extends == 1

    def test_extend_cannot_shrink(self):
        svc = make_service()
        svc.create("a", make_entry("a", n_records=64))
        with pytest.raises(ValueError):
            svc.extend("a", 8)

    def test_extend_missing_file(self):
        svc = make_service()
        with pytest.raises(FileNotFoundError_):
            svc.extend("nope", 128)


class TestVerification:
    def test_invariants_clean_after_op_mix(self):
        svc = make_service()
        for i in range(12):
            svc.create(f"file{i}", make_entry(f"file{i}"))
        svc.delete("file3")
        svc.rename("file4", "renamed4")
        svc.extend("file5", 256)
        assert svc.check_invariants() == []

    def test_expected_namespace_tracks_committed_ops(self):
        svc = make_service()
        e1 = svc.create("a", make_entry("a"))
        svc.create("b", make_entry("b"))
        svc.delete("b")
        svc.rename("a", "c")
        expected = svc.expected_namespace()
        assert expected == {"c": e1}

    def test_lost_name_detected(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        # simulate namespace corruption behind the journal's back
        shard = svc.shard("a")
        del shard.entries["a"]
        kinds = {f.kind for f in svc.check_invariants()}
        assert "namespace-lost-name" in kinds
        assert "namespace-orphan-extent" in kinds  # its extent is orphaned

    def test_double_owner_detected(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        entry = svc.lookup("a")
        # plant the same name on a second shard
        other = svc.shards[(svc.shard_of("a") + 1) % 4]
        other.entries["a"] = entry
        kinds = {f.kind for f in svc.check_invariants()}
        assert "namespace-double-owner" in kinds

    def test_ghost_name_detected(self):
        svc = make_service()
        name = name_on_shard(0, 4, "ghost")
        svc.shards[0].entries[name] = make_entry(name)
        kinds = {f.kind for f in svc.check_invariants()}
        assert "namespace-ghost-name" in kinds

    def test_to_dict_summary(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        d = svc.to_dict()
        assert d["n_shards"] == 4 and d["entries"] == 1
        assert d["counters"]["creates"] == 1
        assert len(d["shards"]) == 4


class TestRecovery:
    def test_recover_on_clean_service_is_a_no_op(self):
        svc = make_service()
        svc.create("a", make_entry("a"))
        epochs = [s.epoch for s in svc.shards]
        assert svc.recover() == []
        assert [s.epoch for s in svc.shards] == epochs

    def test_recover_reports_repaired_txids(self):
        from repro.metastore.crash import InjectedCrash

        svc = MetadataService(n_shards=4)
        svc.create("a", make_entry("a"))
        svc.injector.reset()
        svc.injector.arm(3)   # die mid-create, after intent + extent
        with pytest.raises(InjectedCrash):
            svc.create("b", make_entry("b"))
        repaired = svc.recover()
        assert len(repaired) == 1
        assert repaired[0]["action"] == "rolled-forward"
        assert "b" in svc
        assert svc.check_invariants() == []
