"""Unit tests for the write-ahead intent journal and the crash injector."""

import pytest

from repro.metastore.crash import CrashInjector, InjectedCrash
from repro.metastore.journal import ABORT, COMMIT, INTENT, IntentJournal
from repro.metastore.harness import make_entry


class TestIntentJournal:
    def test_append_assigns_monotonic_lsns(self):
        j = IntentJournal()
        r1 = j.append(INTENT, 1, "create", name="a")
        r2 = j.append(COMMIT, 1, "create")
        r3 = j.append(INTENT, 2, "delete", name="a")
        assert [r.lsn for r in (r1, r2, r3)] == [0, 1, 2]
        assert len(j) == 3

    def test_intent_of_and_resolved(self):
        j = IntentJournal()
        j.append(INTENT, 7, "create", name="x")
        assert j.intent_of(7).op == "create"
        assert j.intent_of(99) is None
        assert not j.resolved(7)
        j.append(COMMIT, 7, "create")
        assert j.resolved(7)

    def test_abort_also_resolves(self):
        j = IntentJournal()
        j.append(INTENT, 3, "rename-out", old="a", new="b")
        j.append(ABORT, 3, "rename-out")
        assert j.resolved(3)
        assert j.uncommitted() == []

    def test_uncommitted_returns_open_intents(self):
        j = IntentJournal()
        j.append(INTENT, 1, "create", name="a")
        j.append(COMMIT, 1, "create")
        j.append(INTENT, 2, "create", name="b")   # never resolved
        open_recs = j.uncommitted()
        assert [r.txid for r in open_recs] == [2]

    def test_committed_returns_intents_of_committed_txids(self):
        j = IntentJournal()
        j.append(INTENT, 1, "create", name="a")
        j.append(COMMIT, 1, "create")
        j.append(INTENT, 2, "delete", name="a")   # open
        j.append(INTENT, 3, "create", name="b")
        j.append(ABORT, 3, "create")              # aborted, not committed
        assert [r.txid for r in j.committed()] == [1]

    def test_record_to_dict_reduces_entry_refs_to_names(self):
        j = IntentJournal()
        entry = make_entry("somefile")
        rec = j.append(INTENT, 1, "create", name="somefile", entry=entry)
        d = rec.to_dict()
        assert d["payload"]["entry"] == "somefile"
        assert d["kind"] == INTENT and d["txid"] == 1


class TestCrashInjector:
    def test_unarmed_run_traces_steps(self):
        inj = CrashInjector()
        inj.step("a")
        inj.step("b")
        assert inj.trace == ["a", "b"]

    def test_armed_run_crashes_at_step_k(self):
        inj = CrashInjector()
        inj.arm(2)
        inj.step("a")
        with pytest.raises(InjectedCrash) as exc:
            inj.step("b")
        assert exc.value.step == 2 and exc.value.tag == "b"

    def test_one_crash_per_arming(self):
        inj = CrashInjector()
        inj.arm(1)
        with pytest.raises(InjectedCrash):
            inj.step("a")
        # disarmed after the crash: recovery's steps (if any) run through
        inj.step("b")
        inj.step("c")

    def test_reset_clears_trace_and_counter(self):
        inj = CrashInjector()
        inj.step("a")
        inj.reset()
        assert inj.trace == []
        inj.arm(1)
        with pytest.raises(InjectedCrash) as exc:
            inj.step("b")
        assert exc.value.step == 1
