"""The crash-point matrix as a test: kill every op at every durable step.

The pure-namespace matrix runs exactly what ``python -m
repro.metastore.harness`` runs in CI; the pfs-backed matrix additionally
fronts a real file system (live extents on simulated devices) and runs
the fsck catalog cross-check after every injected crash + recovery, so
atomicity is asserted at the media layer too.
"""

import pytest

from repro.container.verify import cross_check
from repro.metastore.crash import CrashInjector, InjectedCrash
from repro.metastore.harness import (
    crash_matrix,
    default_scenarios,
    name_on_shard,
    quick_scenarios,
    run_scenario,
)

from ..fs.conftest import build_pfs


class TestNamespaceMatrix:
    def test_full_matrix_is_atomic(self):
        results, ok = crash_matrix()
        assert ok, "\n".join(
            f"{r.scenario}: {s.step} ({s.tag}) -> {s.outcome} {s.findings}"
            for r in results for s in r.steps if not s.ok
        )
        # the matrix is exhaustive: every scenario has several crash
        # points and both before- and after-states are exercised somewhere
        assert sum(len(r.steps) for r in results) >= 25
        outcomes = {s.outcome for r in results for s in r.steps}
        assert outcomes == {"before", "after"}

    def test_quick_matrix_is_a_subset(self):
        names = {s.name for s in quick_scenarios()}
        assert names == {"create", "rename-cross-shard", "delete"}
        results, ok = crash_matrix(quick_scenarios())
        assert ok

    def test_single_shard_matrix(self):
        # with one shard every rename is same-shard; still atomic
        scenarios = [
            s for s in default_scenarios(1) if "cross" not in s.name
        ]
        results, ok = crash_matrix(scenarios, n_shards=1)
        assert ok

    def test_compound_scenario_protects_committed_prefix(self):
        scenario = next(
            s for s in default_scenarios() if s.name == "rename-after-create"
        )
        result = run_scenario(scenario)
        assert result.ok
        # crash points exist in both ops of the sequence
        assert len(result.steps) > 8


def _pfs_with_metastore(injector):
    from repro.sim import Environment

    env = Environment()
    pfs = build_pfs(env)
    pfs.create("seed_a", "S", n_records=16, record_size=32, n_processes=1)
    pfs.create("seed_b", "S", n_records=16, record_size=32, n_processes=1)
    pfs.attach_metastore(shards=4, injector=injector)
    injector.reset()
    return pfs


def _pfs_ops():
    """(label, op) pairs exercised at the *pfs* level (live extents)."""
    from repro.metastore.service import shard_index

    # a rename target hashing to a different shard than the source
    new_cross = name_on_shard((shard_index("seed_a", 4) + 1) % 4, 4, "moved")
    return [
        ("create", lambda pfs: pfs.create(
            "newfile", "S", n_records=16, record_size=32, n_processes=1)),
        ("delete", lambda pfs: pfs.delete("seed_a")),
        ("rename", lambda pfs: pfs.catalog.rename("seed_a", new_cross)),
    ]


class TestPfsBackedMatrix:
    @pytest.mark.parametrize("label", ["create", "delete", "rename"])
    def test_pfs_crash_matrix_with_fsck_cross_check(self, label):
        op = dict(_pfs_ops())[label]

        # pass 0: enumerate the op's durable steps and boundary states
        inj = CrashInjector()
        pfs = _pfs_with_metastore(inj)
        before = pfs.metastore.snapshot()
        op(pfs)
        after = pfs.metastore.snapshot()
        n_steps = len(inj.trace)
        assert n_steps >= 4
        assert before != after

        for k in range(1, n_steps + 1):
            inj = CrashInjector()
            pfs = _pfs_with_metastore(inj)
            inj.arm(k)
            with pytest.raises(InjectedCrash):
                op(pfs)
            pfs.metastore.recover()
            snap = pfs.metastore.snapshot()
            assert snap in (before, after), f"step {k}: torn state"
            assert pfs.metastore.check_invariants() == []
            report = cross_check(pfs)
            assert not report.findings, (
                f"step {k}: fsck cross-check found "
                f"{[f.kind for f in report.findings]}"
            )

    def test_clean_pfs_cross_check_is_clean(self):
        inj = CrashInjector()
        pfs = _pfs_with_metastore(inj)
        report = cross_check(pfs)
        assert not report.findings
        assert report.total_bytes > 0
