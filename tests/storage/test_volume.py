"""Unit tests for volumes over device arrays."""

import numpy as np
import pytest

from repro.devices import RAM_DEVICE, WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.sim import Environment
from repro.storage import AllocationError, ClusteredLayout, StripedLayout, Volume


def make_volume(env, n_devices, timing=WREN_1989, cylinders=64):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=cylinders)
    devices = [
        DeviceController(env, DiskModel(geo, timing), name=f"d{i}")
        for i in range(n_devices)
    ]
    return Volume(env, devices)


class TestAllocation:
    def test_allocate_and_free(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = StripedLayout(2, 512)
        ext = vol.allocate(lay, 4096)
        assert ext.total_bytes == 4096
        vol.free(ext)
        assert vol.allocators[0].free_bytes == vol.devices[0].capacity_bytes

    def test_allocation_rollback_on_failure(self):
        env = Environment()
        vol = make_volume(env, 2, cylinders=1)  # tiny devices: 4096 B each
        lay = StripedLayout(2, 512)
        with pytest.raises(AllocationError):
            vol.allocate(lay, 100_000)
        # nothing leaked
        assert vol.allocators[0].free_bytes == vol.devices[0].capacity_bytes
        assert vol.allocators[1].free_bytes == vol.devices[1].capacity_bytes

    def test_layout_wider_than_volume_rejected(self):
        env = Environment()
        vol = make_volume(env, 2)
        with pytest.raises(ValueError):
            vol.allocate(StripedLayout(4, 512), 4096)

    def test_empty_volume_rejected(self):
        with pytest.raises(ValueError):
            Volume(Environment(), [])


class TestIO:
    def test_striped_roundtrip(self):
        env = Environment()
        vol = make_volume(env, 3)
        lay = StripedLayout(3, 512)
        ext = vol.allocate(lay, 8192)
        payload = np.arange(5000, dtype=np.uint8) % 251

        def proc():
            yield vol.write(ext, lay, 100, payload)
            data = yield vol.read(ext, lay, 100, 5000)
            return data

        result = env.run(env.process(proc()))
        assert np.array_equal(result, payload)

    def test_clustered_roundtrip(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = ClusteredLayout(2, [3000, 3000, 3000])  # 3 partitions, 2 devices
        ext = vol.allocate(lay, 9000)
        payload = (np.arange(9000) % 256).astype(np.uint8)

        def proc():
            yield vol.write(ext, lay, 0, payload)
            data = yield vol.read(ext, lay, 0, 9000)
            return data

        assert np.array_equal(env.run(env.process(proc())), payload)

    def test_bytes_written_return_value(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = StripedLayout(2, 512)
        ext = vol.allocate(lay, 4096)

        def proc():
            n = yield vol.write(ext, lay, 0, b"hello")
            return n

        assert env.run(env.process(proc())) == 5

    def test_zero_length_io(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = StripedLayout(2, 512)
        ext = vol.allocate(lay, 4096)

        def proc():
            data = yield vol.read(ext, lay, 0, 0)
            return data

        assert len(env.run(env.process(proc()))) == 0

    def test_two_files_do_not_collide(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = StripedLayout(2, 512)
        ext_a = vol.allocate(lay, 2048)
        ext_b = vol.allocate(lay, 2048)

        def proc():
            yield vol.write(ext_a, lay, 0, b"A" * 2048)
            yield vol.write(ext_b, lay, 0, b"B" * 2048)
            a = yield vol.read(ext_a, lay, 0, 2048)
            b = yield vol.read(ext_b, lay, 0, 2048)
            return bytes(a[:1]), bytes(b[:1])

        assert env.run(env.process(proc())) == (b"A", b"B")

    def test_striped_read_is_parallel_across_devices(self):
        """The core speedup claim: N devices serve a large read ~N x faster."""

        def elapsed(n_devices):
            env = Environment()
            vol = make_volume(env, n_devices, cylinders=256)
            lay = StripedLayout(n_devices, 4096)
            nbytes = 4096 * 32
            ext = vol.allocate(lay, nbytes)

            def proc():
                yield vol.read(ext, lay, 0, nbytes)

            env.run(env.process(proc()))
            return env.now

        t1, t4 = elapsed(1), elapsed(4)
        assert t4 < t1 / 2.5  # near-4x, allow overheads

    def test_peek_poke(self):
        env = Environment()
        vol = make_volume(env, 2)
        lay = StripedLayout(2, 512)
        ext = vol.allocate(lay, 4096)
        vol.poke(ext, lay, 1000, b"xyz")
        assert bytes(vol.peek(ext, lay, 1000, 3)) == b"xyz"
