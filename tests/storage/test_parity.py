"""Unit tests for parity groups (Kim-style synchronized interleaving)."""

import numpy as np
import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DeviceFailedError,
    DiskGeometry,
    DiskModel,
)
from repro.sim import Environment
from repro.storage import ParityGroup, StaleParityError


def make_group(env, n_data=3, mode="synchronized", parity_unit=512):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=16)
    data = [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"data{i}")
        for i in range(n_data)
    ]
    parity = DeviceController(env, DiskModel(geo, WREN_1989), name="check")
    return ParityGroup(env, data, parity, mode=mode, parity_unit=parity_unit), data, parity


class TestConstruction:
    def test_too_few_devices(self):
        env = Environment()
        geo = DiskGeometry(cylinders=4)
        d = DeviceController(env, DiskModel(geo, WREN_1989))
        p = DeviceController(env, DiskModel(geo, WREN_1989))
        with pytest.raises(ValueError):
            ParityGroup(env, [d], p)

    def test_unknown_mode(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_group(env, mode="raid6")

    def test_capacity_mismatch(self):
        env = Environment()
        geo_a = DiskGeometry(cylinders=4)
        geo_b = DiskGeometry(cylinders=8)
        data = [
            DeviceController(env, DiskModel(geo_a, WREN_1989)),
            DeviceController(env, DiskModel(geo_b, WREN_1989)),
        ]
        p = DeviceController(env, DiskModel(geo_a, WREN_1989))
        with pytest.raises(ValueError):
            ParityGroup(env, data, p)


class TestSynchronizedStripes:
    def test_stripe_write_sets_parity(self):
        env = Environment()
        group, data, parity = make_group(env)
        chunks = [bytes([i + 1]) * 512 for i in range(3)]

        def proc():
            yield group.write_stripe(0, chunks)

        env.run(env.process(proc()))
        expected = np.bitwise_xor(
            np.bitwise_xor(data[0].peek(0, 512), data[1].peek(0, 512)),
            data[2].peek(0, 512),
        )
        assert np.array_equal(parity.peek(0, 512), expected)

    def test_reconstruct_failed_device(self):
        env = Environment()
        group, data, parity = make_group(env)
        chunks = [bytes([7 * (i + 1)]) * 512 for i in range(3)]

        def proc():
            yield group.write_stripe(0, chunks)
            data[1].fail()
            rebuilt = yield group.reconstruct(1, 0, 512)
            return bytes(rebuilt)

        assert env.run(env.process(proc())) == chunks[1]

    def test_read_transparently_reconstructs(self):
        env = Environment()
        group, data, parity = make_group(env)
        chunks = [bytes([i + 1]) * 512 for i in range(3)]

        def proc():
            yield group.write_stripe(0, chunks)
            data[2].fail()
            value = yield group.read(2, 0, 512)
            return bytes(value)

        assert env.run(env.process(proc())) == chunks[2]

    def test_read_healthy_device_is_direct(self):
        env = Environment()
        group, data, parity = make_group(env)

        def proc():
            yield group.write_stripe(0, [b"a" * 512, b"b" * 512, b"c" * 512])
            value = yield group.read(0, 0, 512)
            return bytes(value)

        assert env.run(env.process(proc())) == b"a" * 512

    def test_double_failure_unrecoverable(self):
        env = Environment()
        group, data, parity = make_group(env)
        outcome = []

        def proc():
            yield group.write_stripe(0, [b"a" * 512, b"b" * 512, b"c" * 512])
            data[0].fail()
            data[1].fail()
            try:
                yield group.reconstruct(0, 0, 512)
            except DeviceFailedError:
                outcome.append("unrecoverable")

        env.process(proc())
        env.run()
        assert outcome == ["unrecoverable"]

    def test_chunk_validation(self):
        env = Environment()
        group, _, _ = make_group(env)
        with pytest.raises(ValueError):
            group.write_stripe(0, [b"a" * 512, b"b" * 512])  # wrong count
        with pytest.raises(ValueError):
            group.write_stripe(0, [b"a" * 512, b"b" * 512, b"c" * 100])


class TestIndependentWritesSynchronizedMode:
    """The paper's §5 claim: parity striping does not cover PS/IS access."""

    def test_independent_write_marks_parity_stale(self):
        env = Environment()
        group, data, parity = make_group(env)

        def proc():
            yield group.write_stripe(0, [b"a" * 512] * 3)
            yield group.write(1, 0, b"Z" * 512)  # PS-style independent write

        env.run(env.process(proc()))
        assert not group.is_consistent(1, 0, 512)
        assert group.stale_units == 1

    def test_reconstruction_over_stale_parity_refused(self):
        env = Environment()
        group, data, parity = make_group(env)
        outcome = []

        def proc():
            yield group.write_stripe(0, [b"a" * 512] * 3)
            yield group.write(1, 0, b"Z" * 512)
            data[1].fail()
            try:
                yield group.reconstruct(1, 0, 512)
            except StaleParityError:
                outcome.append("stale")

        env.process(proc())
        env.run()
        assert outcome == ["stale"]

    def test_stripe_rewrite_clears_staleness(self):
        env = Environment()
        group, data, parity = make_group(env)

        def proc():
            yield group.write(1, 0, b"Z" * 512)
            yield group.write_stripe(0, [b"a" * 512] * 3)

        env.run(env.process(proc()))
        assert group.is_consistent(1, 0, 512)
        assert group.stale_units == 0


class TestRmwMode:
    """The ablation: read-modify-write keeps parity valid under PS/IS access."""

    def test_independent_write_keeps_parity_consistent(self):
        env = Environment()
        group, data, parity = make_group(env, mode="rmw")

        def proc():
            yield group.write_stripe(0, [b"a" * 512] * 3)
            yield group.write(1, 0, b"Z" * 512)
            data[1].fail()
            rebuilt = yield group.reconstruct(1, 0, 512)
            return bytes(rebuilt)

        assert env.run(env.process(proc())) == b"Z" * 512
        assert group.stale_units == 0

    def test_rmw_write_costs_more_time_than_stale_write(self):
        def run(mode):
            env = Environment()
            group, _, _ = make_group(env, mode=mode)

            def proc():
                yield group.write(0, 0, b"x" * 512)

            env.run(env.process(proc()))
            return env.now

        assert run("rmw") > run("synchronized")


class TestRebuildDevice:
    def test_full_rebuild_onto_replacement(self):
        env = Environment()
        group, data, parity = make_group(env)
        cap = data[0].capacity_bytes
        stripe = [
            (np.arange(cap) % 13).astype(np.uint8),
            (np.arange(cap) % 17).astype(np.uint8),
            (np.arange(cap) % 19).astype(np.uint8),
        ]

        def proc():
            yield group.write_stripe(0, stripe)
            data[2].fail()
            yield group.rebuild_device(2)
            return data[2].peek(0, cap)

        result = env.run(env.process(proc()))
        assert np.array_equal(result, stripe[2])

    def test_rebuild_refused_with_stale_units(self):
        env = Environment()
        group, data, parity = make_group(env)
        outcome = []

        def proc():
            yield group.write(0, 0, b"x" * 512)  # stale unit
            data[0].fail()
            try:
                yield group.rebuild_device(0)
            except StaleParityError:
                outcome.append("refused")

        env.process(proc())
        env.run()
        assert outcome == ["refused"]
