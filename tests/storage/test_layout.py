"""Unit + property tests for data layouts.

The central property: a layout is a *bijection* from file bytes to
(device, offset) pairs — no byte lost, none doubly placed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import (
    ClusteredLayout,
    InterleavedLayout,
    Segment,
    StripedLayout,
    make_layout,
)


def enumerate_placement(layout, file_bytes):
    """(device, offset) of every file byte, via map_range of the whole file."""
    placement = []
    for seg in layout.map_range(0, file_bytes):
        for i in range(seg.length):
            placement.append((seg.device, seg.offset + i))
    return placement


class TestStriped:
    def test_small_example(self):
        lay = StripedLayout(n_devices=3, stripe_unit=4)
        segs = lay.map_range(0, 12)
        assert segs == [
            Segment(0, 0, 4), Segment(1, 0, 4), Segment(2, 0, 4),
        ]

    def test_second_round_advances_device_offset(self):
        lay = StripedLayout(n_devices=2, stripe_unit=4)
        segs = lay.map_range(8, 8)
        assert segs == [Segment(0, 4, 4), Segment(1, 4, 4)]

    def test_unaligned_range(self):
        lay = StripedLayout(n_devices=2, stripe_unit=4)
        segs = lay.map_range(2, 5)
        assert segs == [Segment(0, 2, 2), Segment(1, 0, 3)]

    def test_single_device_degenerates_to_contiguous(self):
        lay = StripedLayout(n_devices=1, stripe_unit=4)
        assert lay.map_range(3, 10) == [
            Segment(0, 3, 1), Segment(0, 4, 4), Segment(0, 8, 4), Segment(0, 12, 1)
        ]

    def test_device_bytes_balanced(self):
        lay = StripedLayout(n_devices=3, stripe_unit=4)
        assert lay.device_bytes(24) == [8, 8, 8]
        assert lay.device_bytes(25) == [12, 8, 8]
        assert lay.device_bytes(0) == [0, 0, 0]

    def test_locate(self):
        lay = StripedLayout(n_devices=2, stripe_unit=4)
        assert lay.locate(0) == (0, 0)
        assert lay.locate(4) == (1, 0)
        assert lay.locate(9) == (0, 5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            StripedLayout(0, 4)
        with pytest.raises(ValueError):
            StripedLayout(2, 0)
        with pytest.raises(ValueError):
            StripedLayout(2, 4).map_range(-1, 4)

    @settings(max_examples=60)
    @given(st.integers(1, 8), st.integers(1, 64), st.integers(0, 500))
    def test_bijection_property(self, d, su, nbytes):
        lay = StripedLayout(d, su)
        placement = enumerate_placement(lay, nbytes)
        assert len(placement) == nbytes
        assert len(set(placement)) == nbytes  # no collisions
        # every byte fits in the extent the layout asked for
        per_dev = lay.device_bytes(nbytes)
        for dev, off in placement:
            assert off < per_dev[dev]

    @settings(max_examples=40)
    @given(st.integers(1, 8), st.integers(1, 32), st.integers(0, 300),
           st.integers(0, 100), st.integers(0, 100))
    def test_subrange_consistent_with_whole(self, d, su, nbytes, off, ln):
        """Mapping a sub-range gives the same placement as the whole file."""
        off = min(off, nbytes)
        ln = min(ln, nbytes - off)
        lay = StripedLayout(d, su)
        whole = enumerate_placement(lay, nbytes)
        sub = []
        for seg in lay.map_range(off, ln):
            for i in range(seg.length):
                sub.append((seg.device, seg.offset + i))
        assert sub == whole[off : off + ln]


class TestInterleaved:
    def test_block_on_single_device(self):
        lay = InterleavedLayout(n_devices=3, block_bytes=8)
        for b in range(9):
            segs = lay.map_range(b * 8, 8)
            assert len(segs) == 1
            assert segs[0].device == b % 3
            assert segs[0].device == lay.device_of_block(b)

    def test_name(self):
        assert InterleavedLayout(2, 8).name == "interleaved"
        assert StripedLayout(2, 8).name == "striped"

    def test_device_of_block_validates(self):
        with pytest.raises(ValueError):
            InterleavedLayout(2, 8).device_of_block(-1)


class TestClustered:
    def test_partitions_to_distinct_devices(self):
        lay = ClusteredLayout(n_devices=3, partition_bytes=[10, 20, 30])
        assert lay.map_range(0, 10) == [Segment(0, 0, 10)]
        assert lay.map_range(10, 20) == [Segment(1, 0, 20)]
        assert lay.map_range(30, 30) == [Segment(2, 0, 30)]

    def test_range_spanning_partitions_splits(self):
        lay = ClusteredLayout(n_devices=3, partition_bytes=[10, 10])
        segs = lay.map_range(5, 10)
        assert segs == [Segment(0, 5, 5), Segment(1, 0, 5)]

    def test_wraparound_stacks_partitions(self):
        # 4 partitions on 2 devices: p0,p2 on dev0; p1,p3 on dev1
        lay = ClusteredLayout(n_devices=2, partition_bytes=[10, 10, 10, 10])
        assert lay.device_of_partition(2) == 0
        segs = lay.map_range(20, 10)  # partition 2
        assert segs == [Segment(0, 10, 10)]  # stacked after partition 0

    def test_device_bytes_requires_exact_size(self):
        lay = ClusteredLayout(n_devices=2, partition_bytes=[10, 20])
        assert lay.device_bytes(30) == [10, 20]
        with pytest.raises(ValueError):
            lay.device_bytes(31)

    def test_out_of_file_range_rejected(self):
        lay = ClusteredLayout(n_devices=2, partition_bytes=[10, 10])
        with pytest.raises(ValueError):
            lay.map_range(15, 10)

    def test_zero_length_partitions_allowed(self):
        lay = ClusteredLayout(n_devices=2, partition_bytes=[10, 0, 10])
        segs = lay.map_range(0, 20)
        assert sum(s.length for s in segs) == 20

    @settings(max_examples=60)
    @given(
        st.integers(1, 6),
        st.lists(st.integers(0, 50), min_size=1, max_size=10),
    )
    def test_bijection_property(self, d, parts):
        lay = ClusteredLayout(d, parts)
        total = sum(parts)
        placement = enumerate_placement(lay, total)
        assert len(placement) == total
        assert len(set(placement)) == total
        per_dev = lay.device_bytes(total)
        for dev, off in placement:
            assert off < per_dev[dev]


class TestFactory:
    def test_striped(self):
        lay = make_layout("striped", 4, stripe_unit=512)
        assert isinstance(lay, StripedLayout) and lay.stripe_unit == 512

    def test_interleaved_requires_block_bytes(self):
        with pytest.raises(ValueError):
            make_layout("interleaved", 4)
        assert isinstance(
            make_layout("interleaved", 4, block_bytes=64), InterleavedLayout
        )

    def test_clustered_requires_partitions(self):
        with pytest.raises(ValueError):
            make_layout("clustered", 4)
        lay = make_layout("clustered", 2, partition_bytes=[5, 5])
        assert isinstance(lay, ClusteredLayout)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_layout("raid7", 4)
