"""Unit + property tests for the extent allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import AllocationError, ExtentAllocator


class TestBasic:
    def test_first_fit_from_zero(self):
        alloc = ExtentAllocator(100)
        assert alloc.allocate(30) == 0
        assert alloc.allocate(30) == 30
        assert alloc.free_bytes == 40

    def test_exhaustion_raises(self):
        alloc = ExtentAllocator(100)
        alloc.allocate(80)
        with pytest.raises(AllocationError):
            alloc.allocate(30)

    def test_free_and_reuse(self):
        alloc = ExtentAllocator(100)
        a = alloc.allocate(40)
        alloc.allocate(40)
        alloc.free(a, 40)
        assert alloc.allocate(40) == a

    def test_coalescing(self):
        alloc = ExtentAllocator(100)
        a = alloc.allocate(30)
        b = alloc.allocate(30)
        c = alloc.allocate(40)
        alloc.free(a, 30)
        alloc.free(c, 40)
        alloc.free(b, 30)  # middle free must merge all three
        assert alloc.largest_free_extent == 100
        assert alloc.fragmentation == 0.0

    def test_double_free_detected(self):
        alloc = ExtentAllocator(100)
        a = alloc.allocate(30)
        alloc.free(a, 30)
        with pytest.raises(ValueError):
            alloc.free(a, 30)

    def test_free_outside_device(self):
        alloc = ExtentAllocator(100)
        with pytest.raises(ValueError):
            alloc.free(90, 20)

    def test_zero_capacity(self):
        alloc = ExtentAllocator(0)
        with pytest.raises(AllocationError):
            alloc.allocate(1)

    def test_invalid_sizes(self):
        alloc = ExtentAllocator(100)
        with pytest.raises(ValueError):
            alloc.allocate(0)
        with pytest.raises(ValueError):
            alloc.free(0, 0)
        with pytest.raises(ValueError):
            ExtentAllocator(-1)
        with pytest.raises(ValueError):
            ExtentAllocator(10, alignment=0)


class TestAlignment:
    def test_allocations_aligned(self):
        alloc = ExtentAllocator(1000, alignment=64)
        a = alloc.allocate(10)   # rounds to 64
        b = alloc.allocate(100)  # rounds to 128
        assert a % 64 == 0 and b % 64 == 0
        assert b == 64

    def test_aligned_free_roundtrip(self):
        alloc = ExtentAllocator(1000, alignment=64)
        a = alloc.allocate(10)
        alloc.free(a, 10)
        assert alloc.free_bytes == 1000


class TestFragmentationMetric:
    def test_fragmented_state(self):
        alloc = ExtentAllocator(100)
        spans = [alloc.allocate(20) for _ in range(5)]
        alloc.free(spans[0], 20)
        alloc.free(spans[2], 20)
        # two separate 20-byte holes
        assert alloc.free_bytes == 40
        assert alloc.largest_free_extent == 20
        assert alloc.fragmentation == pytest.approx(0.5)

    def test_full_device_zero_fragmentation(self):
        alloc = ExtentAllocator(100)
        alloc.allocate(100)
        assert alloc.fragmentation == 0.0


@settings(max_examples=60)
@given(st.lists(st.integers(1, 40), min_size=1, max_size=30))
def test_allocations_never_overlap(sizes):
    alloc = ExtentAllocator(2000)
    taken = []
    for n in sizes:
        start = alloc.allocate(n)
        for s, ln in taken:
            assert start + n <= s or start >= s + ln
        taken.append((start, n))
    assert alloc.allocated_bytes == sum(sizes)


@settings(max_examples=40)
@given(st.lists(st.integers(1, 40), min_size=1, max_size=20), st.randoms())
def test_free_everything_restores_capacity(sizes, rnd):
    alloc = ExtentAllocator(2000)
    extents = [(alloc.allocate(n), n) for n in sizes]
    rnd.shuffle(extents)
    for start, n in extents:
        alloc.free(start, n)
    assert alloc.free_bytes == 2000
    assert alloc.largest_free_extent == 2000
    assert alloc.allocated_bytes == 0
