"""Unit tests for the per-organization internal view handles."""

import numpy as np
import pytest

from repro.core import ExhaustedError, OrganizationError, OwnershipError
from repro.fs import SSSession, make_internal_handle


def records(n, items=2, seed=2):
    rng = np.random.default_rng(seed)
    return rng.random((n, items))


def make_file(pfs, org, n=40, rpb=4, p=4, **kw):
    return pfs.create(
        f"i_{org}", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p, **kw,
    )


def preload(env, f, data):
    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))


class TestSequentialHandle:
    def test_reader_scans_in_order(self, env, pfs):
        f = make_file(pfs, "S", p=3, reader=1)
        data = records(40)
        preload(env, f, data)

        def proc():
            h = f.internal_view(1)
            a = yield from h.read_next(25)
            b = yield from h.read_next(25)
            return a, b, h.eof

        a, b, eof = env.run(env.process(proc()))
        assert np.array_equal(np.concatenate([a, b]), data)
        assert len(b) == 15 and eof

    def test_non_reader_rejected(self, pfs):
        f = make_file(pfs, "S", p=3, reader=1)
        with pytest.raises(OrganizationError):
            f.internal_view(0)

    def test_write_next(self, env, pfs):
        f = make_file(pfs, "S", p=1)
        data = records(40)

        def proc():
            h = f.internal_view(0)
            yield from h.write_next(data[:20])
            yield from h.write_next(data[20:])
            out = yield from f.global_view().read()
            return out, h.position

        out, pos = env.run(env.process(proc()))
        assert np.array_equal(out, data)
        assert pos == 40

    def test_process_bounds(self, pfs):
        f = make_file(pfs, "S", p=2)
        with pytest.raises(OrganizationError):
            f.internal_view(5)


class TestPartitionHandle:
    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_each_process_reads_its_records(self, env, pfs, org):
        f = make_file(pfs, org)
        data = records(40)
        preload(env, f, data)

        def proc():
            out = {}
            for p in range(4):
                h = f.internal_view(p)
                out[p] = yield from h.read_next(h.n_local_records)
            return out

        out = env.run(env.process(proc()))
        for p in range(4):
            assert np.array_equal(out[p], data[f.map.records_of(p)])

    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_parallel_write_then_global_read(self, env, pfs, org):
        f = make_file(pfs, org)
        data = records(40)
        done = []

        def writer(p):
            h = f.internal_view(p)
            recs = f.map.records_of(p)
            for chunk_start in range(0, len(recs), 3):
                chunk = data[recs[chunk_start : chunk_start + 3]]
                yield from h.write_next(chunk)
            done.append(p)

        def checker():
            for p in range(4):
                env.process(writer(p))
            # let all writers finish
            while len(done) < 4:
                yield env.timeout(0.01)
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(checker())), data)

    def test_block_cursor(self, env, pfs):
        f = make_file(pfs, "IS")
        data = records(40)
        preload(env, f, data)

        def proc():
            h = f.internal_view(1)  # blocks 1, 5, 9
            out = []
            while h.blocks_remaining:
                blk = yield from h.read_next_block()
                out.append(blk)
            final = yield from h.read_next_block()
            return out, final

        out, final = env.run(env.process(proc()))
        assert [b for b, _ in out] == [1, 5, 9]
        assert final is None
        for b, blockdata in out:
            lo = b * 4
            assert np.array_equal(blockdata, data[lo : lo + 4])

    def test_write_next_block(self, env, pfs):
        f = make_file(pfs, "IS")
        data = records(40)

        def proc():
            for p in range(4):
                h = f.internal_view(p)
                while h.blocks_remaining:
                    b = int(h._blocks[h._block_cursor])
                    lo = b * 4
                    hi = min(lo + 4, 40)
                    written = yield from h.write_next_block(data[lo:hi])
                    assert written == b
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_write_past_partition_raises(self, env, pfs):
        f = make_file(pfs, "PS")
        h = f.internal_view(0)
        oversize = records(f.map.n_local_records(0) + 1)
        with pytest.raises(ExhaustedError):
            # drive the generator to the validation point
            next(h.write_next(oversize))

    def test_eof_and_remaining(self, env, pfs):
        f = make_file(pfs, "PS")
        data = records(40)
        preload(env, f, data)

        def proc():
            h = f.internal_view(0)
            n = h.n_local_records
            yield from h.read_next(n)
            more = yield from h.read_next(5)
            return h.eof, h.remaining, len(more)

        eof, remaining, extra = env.run(env.process(proc()))
        assert eof and remaining == 0 and extra == 0


class TestSSHandles:
    def test_every_block_handed_out_exactly_once(self, env, pfs):
        f = make_file(pfs, "SS")
        data = records(40)
        preload(env, f, data)
        session = SSSession(f)
        got = {}

        def worker(p):
            h = session.handle(p)
            while True:
                item = yield from h.read_next()
                if item is None:
                    return
                block, blockdata = item
                got[block] = blockdata
                yield env.timeout(0.001 * (p + 1))  # uneven service rates

        for p in range(4):
            env.process(worker(p))
        env.run()
        session.validate()
        assert sorted(got) == list(range(10))
        for b, blockdata in got.items():
            assert np.array_equal(blockdata, data[b * 4 : b * 4 + 4])

    def test_self_scheduled_write_covers_file(self, env, pfs):
        f = make_file(pfs, "SS", n=12, rpb=1, p=3)
        data = records(12)
        written = {}

        def worker(p):
            h = session.handle(p)
            while True:
                # each block is one record; write block index as payload
                blk = session.blocks_issued
                if session.exhausted:
                    return
                b = yield from h.write_next(data[blk : blk + 1])
                if b is None:
                    return
                written[b] = blk
                yield env.timeout(0.0001)

        session = SSSession(f)
        for p in range(3):
            env.process(worker(p))
        env.run()
        session.validate()
        assert len(written) == 12

    def test_internal_view_requires_session(self, pfs):
        f = make_file(pfs, "SS")
        with pytest.raises(OrganizationError):
            f.internal_view(0)

    def test_session_rejects_wrong_file(self, pfs):
        f1 = make_file(pfs, "SS")
        f2 = pfs.create(
            "other_ss", "SS", n_records=8, record_size=16, dtype="float64",
            records_per_block=4, n_processes=2,
        )
        session = SSSession(f1)
        with pytest.raises(OrganizationError):
            make_internal_handle(f2, 0, session=session)

    def test_session_requires_ss_file(self, pfs):
        f = make_file(pfs, "PS")
        with pytest.raises(OrganizationError):
            SSSession(f)

    def test_early_advance_overlaps_transfers(self, env, pfs):
        """§4: early pointer advance lets SS calls pipeline."""

        def run(early):
            from .conftest import build_pfs

            env2_ = __import__("repro.sim", fromlist=["Environment"]).Environment()
            pfs2 = build_pfs(env2_, n_devices=4)
            f = pfs2.create(
                "ss_bench", "SS", n_records=64, record_size=512,
                records_per_block=4, n_processes=4,
            )
            data = np.zeros((64, 512), dtype=np.uint8)
            def pre():
                yield from f.global_view().write(data)
            env2_.run(env2_.process(pre()))
            session = SSSession(f, early_advance=early)

            def worker(p):
                h = session.handle(p)
                while True:
                    item = yield from h.read_next()
                    if item is None:
                        return

            start = env2_.now
            for p in range(4):
                env2_.process(worker(p))
            env2_.run()
            return env2_.now - start

        assert run(True) < run(False)


class TestDirectHandles:
    def test_gda_any_process_any_record(self, env, pfs):
        f = make_file(pfs, "GDA")
        data = records(40)
        preload(env, f, data)

        def proc():
            h0 = f.internal_view(0)
            h3 = f.internal_view(3)
            a = yield from h0.read_record(39)
            b = yield from h3.read_record(0, count=2)
            yield from h3.write_record(10, np.full((1, 2), 7.0))
            c = yield from h0.read_record(10)
            return a, b, c

        a, b, c = env.run(env.process(proc()))
        assert np.array_equal(a[0], data[39])
        assert np.array_equal(b, data[0:2])
        assert np.array_equal(c[0], [7.0, 7.0])

    def test_gda_bounds(self, env, pfs):
        f = make_file(pfs, "GDA")
        h = f.internal_view(0)
        with pytest.raises(ValueError):
            next(h.read_record(40))
        with pytest.raises(ValueError):
            next(h.read_record(0, count=0))

    def test_pda_ownership_enforced(self, env, pfs):
        f = make_file(pfs, "PDA")
        data = records(40)
        preload(env, f, data)
        owner = f.map.owner_of_record(0)
        intruder = (owner + 1) % 4

        def ok():
            h = f.internal_view(owner)
            out = yield from h.read_record(0)
            return out

        assert np.array_equal(env.run(env.process(ok()))[0], data[0])
        h_bad = f.internal_view(intruder)
        with pytest.raises(OwnershipError):
            next(h_bad.read_record(0))

    def test_pda_cached_reads_hit(self, env, pfs):
        f = make_file(pfs, "PDA")
        data = records(40)
        preload(env, f, data)
        p = f.map.owner_of_record(0)

        def proc():
            h = f.internal_view(p, cache_blocks=2)
            yield from h.read_record(0)
            t_after_miss = env.now
            yield from h.read_record(1)   # same block -> cache hit
            return t_after_miss, env.now, h.cache.hits, h.cache.misses

        t_miss, t_hit, hits, misses = env.run(env.process(proc()))
        assert hits == 1 and misses == 1
        assert t_hit == t_miss  # the hit cost no simulated time

    def test_cached_write_flush_persists(self, env, pfs):
        f = make_file(pfs, "GDA")
        data = records(40)
        preload(env, f, data)

        def proc():
            h = f.internal_view(0, cache_blocks=4)
            yield from h.write_record(5, np.full((1, 2), 3.25))
            yield from h.flush()
            # read through an uncached handle to verify persistence
            h2 = f.internal_view(1)
            out = yield from h2.read_record(5)
            return out

        assert np.array_equal(env.run(env.process(proc()))[0], [3.25, 3.25])

    def test_multirecord_read_spanning_blocks(self, env, pfs):
        f = make_file(pfs, "GDA")
        data = records(40)
        preload(env, f, data)

        def proc():
            h = f.internal_view(0, cache_blocks=4)
            out = yield from h.read_record(2, count=10)  # blocks 0..2
            return out

        assert np.array_equal(env.run(env.process(proc())), data[2:12])


class TestPartitionStream:
    """Internal-view read-ahead (§4's predictable-order optimization)."""

    def test_stream_visits_owned_blocks_in_order(self, env, pfs):
        from repro.buffering import BufferPool

        f = make_file(pfs, "IS")
        data = records(40)
        preload(env, f, data)

        def proc():
            pool = BufferPool(env, 3, 4096,
                              copy_cost_per_byte=0, per_buffer_overhead=0)
            stream = f.internal_view(1).stream(pool, depth=2)
            order = yield from stream.read_all()
            return order

        assert env.run(env.process(proc())) == [1, 5, 9]

    def test_stream_overlaps_io_with_compute(self):
        """Read-ahead on an internal view gives the same overlap shape as
        on the global view: elapsed ~ first I/O + total compute."""
        from repro.buffering import BufferPool
        from repro.sim import Environment
        from .conftest import build_pfs

        def run(depth):
            env = Environment()
            pfs = build_pfs(env, n_devices=4)
            f = pfs.create(
                "str", "IS", n_records=256, record_size=512,
                records_per_block=8, n_processes=4,
            )

            def setup():
                import numpy as np
                yield from f.global_view().write(
                    np.zeros((256, 512), dtype=np.uint8)
                )

            env.run(env.process(setup()))
            start = env.now

            def consumer():
                pool = BufferPool(env, depth + 1, 512 * 8,
                                  copy_cost_per_byte=0, per_buffer_overhead=0)
                stream = f.internal_view(0).stream(pool, depth=depth)
                yield from stream.read_all(compute=lambda i, d: 0.02)

            env.run(env.process(consumer()))
            return env.now - start

        assert run(1) < run(0)
