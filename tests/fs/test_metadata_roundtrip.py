"""Property-style round trip of FileAttributes through JSON.

The attribute dict is the container format's file-header payload
(``repro/attrs``), so ``to_dict`` must be a JSON fixed point for every
organization / dtype / block-shape / parameter combination — including
the numpy scalars and tuples callers routinely leave in
``layout_params`` / ``org_params``, which the pre-fix shallow copy
passed straight to ``json.dumps`` (TypeError) or silently changed type
across one round trip.
"""

import itertools
import json

import numpy as np
import pytest

from repro.core.organizations import FileCategory, FileOrganization
from repro.fs.metadata import FileAttributes

ORGS = list(FileOrganization)
DTYPES = ["uint8", "int16", "float32", "float64"]
BLOCKS = [(1, 1), (8, 4), (64, 16), (512, 100)]


def round_trip(attrs):
    wire = json.dumps(attrs.to_dict(), sort_keys=True)
    back = FileAttributes.from_dict(json.loads(wire))
    return wire, back


@pytest.mark.parametrize(
    "org,dtype,block",
    list(itertools.product(ORGS, DTYPES, BLOCKS))[::3],  # every 3rd combo
)
def test_round_trip_is_a_fixed_point(org, dtype, block):
    record_size, records_per_block = block
    attrs = FileAttributes(
        name=f"f_{org.value}_{dtype}",
        organization=org,
        category=FileCategory.STANDARD,
        record_size=record_size,
        records_per_block=records_per_block,
        n_records=1000,
        n_processes=4,
        layout="striped",
        layout_params={"stripe_unit": 512, "n_devices": 4},
        org_params={},
        dtype=dtype,
    )
    wire, back = round_trip(attrs)
    assert back == attrs
    # a second trip changes nothing (true fixed point)
    wire2, back2 = round_trip(back)
    assert wire2 == wire
    assert back2 == back


def test_numpy_scalars_in_params_survive():
    attrs = FileAttributes(
        name="np",
        organization=FileOrganization.PS,
        category=FileCategory.STANDARD,
        record_size=int(np.int64(32)),
        records_per_block=8,
        n_records=100,
        n_processes=2,
        layout="clustered",
        layout_params={
            "partition_sizes": np.array([50, 50], dtype=np.int64),
            "stripe_unit": np.int64(512),
        },
        org_params={"stride": np.int32(2)},
    )
    d = attrs.to_dict()
    wire = json.dumps(d)  # pre-fix: TypeError (np.int64 not serializable)
    assert json.loads(wire) == d
    assert d["layout_params"]["partition_sizes"] == [50, 50]
    assert type(d["layout_params"]["stripe_unit"]) is int
    assert type(d["org_params"]["stride"]) is int


def test_numpy_fields_themselves_are_coerced():
    attrs = FileAttributes(
        name="np2",
        organization=FileOrganization.S,
        category=FileCategory.STANDARD,
        record_size=np.int64(16),
        records_per_block=np.int64(4),
        n_records=np.int64(200),
        n_processes=np.int64(4),
        layout="striped",
    )
    d = attrs.to_dict()
    json.dumps(d)
    assert all(
        type(d[k]) is int
        for k in ("record_size", "records_per_block", "n_records", "n_processes")
    )


def test_tuples_normalize_on_the_way_out_not_on_the_trip():
    attrs = FileAttributes(
        name="t",
        organization=FileOrganization.PDA,
        category=FileCategory.SPECIALIZED,
        record_size=8,
        records_per_block=2,
        n_records=64,
        n_processes=2,
        layout="interleaved",
        org_params={"ranges": [(0, 32), (32, 64)]},
    )
    first = attrs.to_dict()
    _, back = round_trip(attrs)
    # the dict form is already list-of-lists, so JSON cannot change it
    assert first["org_params"]["ranges"] == [[0, 32], [32, 64]]
    assert back.to_dict() == first


def test_enum_fields_round_trip_for_every_category():
    for org, cat in itertools.product(ORGS, FileCategory):
        attrs = FileAttributes(
            name="e",
            organization=org,
            category=cat,
            record_size=4,
            records_per_block=2,
            n_records=10,
            n_processes=1,
            layout="striped",
        )
        _, back = round_trip(attrs)
        assert back.organization is org
        assert back.category is cat
