"""Unit tests for the global view handle."""

import numpy as np
import pytest

from repro.buffering import BufferPool


def records(n, items=2, seed=1):
    rng = np.random.default_rng(seed)
    return rng.random((n, items))


def make_file(pfs, org="PS", n=40, rpb=4, p=4, **kw):
    return pfs.create(
        f"g_{org}", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p, **kw,
    )


class TestSequentialCursor:
    def test_write_then_read_whole_file(self, env, pfs):
        f = make_file(pfs)
        data = records(40)

        def proc():
            w = f.global_view()
            yield from w.write(data)
            r = f.global_view()
            out = yield from r.read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_chunked_reads_advance_cursor(self, env, pfs):
        f = make_file(pfs)
        data = records(40)

        def proc():
            w = f.global_view()
            yield from w.write(data)
            r = f.global_view()
            a = yield from r.read(15)
            b = yield from r.read(15)
            c = yield from r.read(15)  # clipped to 10
            return a, b, c, r.eof

        a, b, c, eof = env.run(env.process(proc()))
        assert np.array_equal(np.concatenate([a, b, c]), data)
        assert len(c) == 10 and eof

    def test_read_at_eof_returns_empty(self, env, pfs):
        f = make_file(pfs)

        def proc():
            r = f.global_view()
            r.seek(40)
            out = yield from r.read(5)
            return out

        assert len(env.run(env.process(proc()))) == 0

    def test_seek_bounds(self, pfs):
        f = make_file(pfs)
        v = f.global_view()
        v.seek(40)  # seeking to EOF is legal
        with pytest.raises(ValueError):
            v.seek(41)
        with pytest.raises(ValueError):
            v.seek(-1)

    def test_global_view_of_ps_equals_concatenated_partitions(self, env, pfs):
        """§2 invariant: the global view is the partitions in order."""
        f = make_file(pfs, org="PS")
        data = records(40)

        def proc():
            # each process writes its own partition through its internal view
            writers = [f.internal_view(p) for p in range(4)]
            for p, h in enumerate(writers):
                recs = f.map.records_of(p)
                if len(recs):
                    yield from h.write_next(data[recs])
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_global_view_of_is_equals_global_order(self, env, pfs):
        f = make_file(pfs, org="IS")
        data = records(40)

        def proc():
            for p in range(4):
                h = f.internal_view(p)
                recs = f.map.records_of(p)
                yield from h.write_next(data[recs])
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)


class TestDirectAccess:
    def test_read_write_at(self, env, pfs):
        f = make_file(pfs, org="GDA")
        data = records(40)

        def proc():
            v = f.global_view()
            yield from v.write(data)
            yield from v.write_at(7, np.full((1, 2), 9.5))
            out = yield from v.read_at(6, 3)
            return out, v.position

        out, pos = env.run(env.process(proc()))
        assert np.array_equal(out[0], data[6])
        assert np.array_equal(out[1], [9.5, 9.5])
        assert np.array_equal(out[2], data[8])
        assert pos == 40  # write moved it; read_at/write_at did not


class TestBufferedStream:
    def test_stream_visits_blocks_in_order(self, env, pfs):
        f = make_file(pfs)
        data = records(40)

        def proc():
            yield from f.global_view().write(data)
            pool = BufferPool(env, 3, 4096, copy_cost_per_byte=0, per_buffer_overhead=0)
            stream = f.global_view().stream(pool, depth=2)
            order = yield from stream.read_all()
            return order

        assert env.run(env.process(proc())) == list(range(10))


class TestTracing:
    def test_global_reads_traced_by_block(self, env, pfs, recorder):
        f = make_file(pfs)
        data = records(40)

        def proc():
            v = f.global_view()
            yield from v.write(data)
            recorder.clear()
            yield from v.read()  # from cursor 40 -> empty, no trace
            v.seek(0)
            yield from v.read(10)  # blocks 0,1,2 (rpb=4 -> 4+4+2)

        env.run(env.process(proc()))
        by_proc = recorder.blocks_by_process(f.name)
        assert by_proc == {-1: [0, 1, 2]}
        counts = [e.records for e in recorder.for_file(f.name)]
        assert counts == [4, 4, 2]
