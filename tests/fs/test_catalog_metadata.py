"""Unit tests for catalog operations and metadata validation."""

import pytest

from repro.core import FileCategory, FileOrganization
from repro.fs import FileAttributes, FileExistsError_, FileNotFoundError_
from repro.fs.catalog import Catalog, CatalogEntry


def make_attrs(name="f", org=FileOrganization.PS):
    return FileAttributes(
        name=name,
        organization=org,
        category=FileCategory.STANDARD,
        record_size=8,
        records_per_block=4,
        n_records=40,
        n_processes=4,
        layout="clustered",
    )


def make_entry(name="f"):
    return CatalogEntry(attrs=make_attrs(name), extent=None, layout=None)


class TestCatalog:
    def test_add_get_remove(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        assert "a" in cat and len(cat) == 1
        assert cat.get("a").attrs.name == "a"
        cat.remove("a")
        assert "a" not in cat

    def test_duplicate_add(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        with pytest.raises(FileExistsError_):
            cat.add(make_entry("a"))

    def test_get_missing(self):
        with pytest.raises(FileNotFoundError_):
            Catalog().get("nope")

    def test_rename(self):
        cat = Catalog()
        cat.add(make_entry("old"))
        cat.rename("old", "new")
        assert cat.names() == ["new"]
        assert cat.get("new").attrs.name == "new"
        # rename is neither a create nor a delete
        assert cat.creates == 1 and cat.deletes == 0

    def test_rename_to_existing_rejected(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        cat.add(make_entry("b"))
        with pytest.raises(FileExistsError_):
            cat.rename("a", "b")
        assert sorted(cat.names()) == ["a", "b"]

    def test_to_dict_metadata_only(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        d = cat.to_dict()
        assert d["a"]["organization"] == "PS"


class TestFileAttributes:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            make_attrs(name="")

    def test_negative_records_rejected(self):
        kwargs = make_attrs().to_dict()
        kwargs["organization"] = FileOrganization(kwargs["organization"])
        kwargs["category"] = FileCategory(kwargs["category"])
        kwargs["n_records"] = -1
        with pytest.raises(ValueError):
            FileAttributes(**kwargs)

    def test_zero_processes_rejected(self):
        kwargs = make_attrs().to_dict()
        kwargs["organization"] = FileOrganization(kwargs["organization"])
        kwargs["category"] = FileCategory(kwargs["category"])
        kwargs["n_processes"] = 0
        with pytest.raises(ValueError):
            FileAttributes(**kwargs)

    def test_derived_properties(self):
        a = make_attrs()
        assert a.file_bytes == 40 * 8
        assert a.n_blocks == 10
        assert a.record_spec.record_size == 8
        assert a.block_spec.records_per_block == 4

    def test_dict_roundtrip_preserves_params(self):
        a = make_attrs()
        a.org_params = {"assignment": "interleaved"}
        a.layout_params = {"stripe_unit": 512}
        b = FileAttributes.from_dict(a.to_dict())
        assert b == a
