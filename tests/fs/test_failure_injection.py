"""Failure injection across the stack: device death during file I/O."""

import numpy as np
import pytest

from repro.devices import DeviceFailedError, FailureInjector
from repro.sim import Environment, RngStreams

from .conftest import build_pfs


def payload(n, items=2, seed=0):
    return np.random.default_rng(seed).random((n, items))


class TestMidRunFailures:
    def test_striped_read_fails_when_device_dies_mid_transfer(self, env, pfs):
        f = pfs.create(
            "doomed", "S", n_records=256, record_size=512,
            records_per_block=8, stripe_unit=4096,
        )
        outcome = []

        def setup():
            yield from f.global_view().write(
                np.zeros((256, 512), dtype=np.uint8)
            )

        env.run(env.process(setup()))

        def reader():
            v = f.global_view()
            try:
                while not v.eof:
                    yield from v.read(32)
                outcome.append("completed")
            except DeviceFailedError as e:
                outcome.append(("failed", e.device))

        def killer():
            yield env.timeout(0.05)
            pfs.volume.devices[2].fail()

        env.process(reader())
        env.process(killer())
        env.run()
        assert outcome == [("failed", "d2")]

    def test_ps_file_partitions_on_surviving_devices_still_work(self, env, pfs):
        """Clustered PS: losing one device loses only that partition."""
        f = pfs.create(
            "part", "PS", n_records=64, record_size=512,
            records_per_block=4, n_processes=4,  # partition p on device p
        )
        data = np.zeros((64, 512), dtype=np.uint8)

        def setup():
            yield from f.global_view().write(data)

        env.run(env.process(setup()))
        pfs.volume.devices[1].fail()
        results = {}

        def worker(q):
            h = f.internal_view(q)
            try:
                yield from h.read_next(h.n_local_records)
                results[q] = "ok"
            except DeviceFailedError:
                results[q] = "failed"

        for q in range(4):
            env.process(worker(q))
        env.run()
        assert results == {0: "ok", 1: "failed", 2: "ok", 3: "ok"}

    def test_write_after_failure_raises(self, env, pfs):
        f = pfs.create("w", "S", n_records=16, record_size=512,
                       records_per_block=4, stripe_unit=512)
        pfs.volume.devices[0].fail()
        outcome = []

        def writer():
            try:
                yield from f.global_view().write(
                    np.zeros((16, 512), dtype=np.uint8)
                )
            except DeviceFailedError:
                outcome.append("failed")

        env.process(writer())
        env.run()
        assert outcome == ["failed"]

    def test_injector_driven_failure_during_long_scan(self, env, pfs):
        inj = FailureInjector(env, RngStreams(0))
        f = pfs.create(
            "long", "S", n_records=1024, record_size=512,
            records_per_block=8, stripe_unit=4096,
        )

        def setup():
            yield from f.global_view().write(
                np.zeros((1024, 512), dtype=np.uint8)
            )

        env.run(env.process(setup()))
        # deterministically kill disk 0 shortly into the scan
        inj.kill_at(pfs.volume.devices[0], env.now + 0.01)
        survived = []

        def reader():
            v = f.global_view()
            try:
                while not v.eof:
                    yield from v.read(16)
                survived.append(True)
            except DeviceFailedError:
                survived.append(False)

        env.process(reader())
        env.run()
        assert survived == [False]
        assert inj.failures[0].device == "d0"

    def test_repaired_device_serves_again(self, env, pfs):
        f = pfs.create("heal", "S", n_records=16, record_size=512,
                       records_per_block=4, stripe_unit=512)
        data = np.zeros((16, 512), dtype=np.uint8)

        def run():
            yield from f.global_view().write(data)
            snap = pfs.volume.devices[0].snapshot()
            pfs.volume.devices[0].fail()
            pfs.volume.devices[0].repair(contents=snap)
            out = yield from f.global_view().read()
            return out

        # cursor: second read starts at EOF; use fresh views
        def run2():
            yield from f.global_view().write(data)
            snap = pfs.volume.devices[0].snapshot()
            pfs.volume.devices[0].fail()
            pfs.volume.devices[0].repair(contents=snap)
            v = f.global_view()
            out = yield from v.read()
            return out

        out = env.run(env.process(run2()))
        assert np.array_equal(out, data)
