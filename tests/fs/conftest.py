"""Shared fixtures for file-system tests."""

import pytest

from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.fs import ParallelFileSystem
from repro.sim import Environment
from repro.storage import Volume
from repro.trace import TraceRecorder


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def recorder():
    return TraceRecorder()


def build_pfs(env, n_devices=4, recorder=None, cylinders=128):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=cylinders)
    devices = [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"d{i}")
        for i in range(n_devices)
    ]
    volume = Volume(env, devices)
    return ParallelFileSystem(env, volume, recorder=recorder)


@pytest.fixture
def pfs(env, recorder):
    return build_pfs(env, recorder=recorder)
