"""Unit tests for versioned checkpointing."""

import numpy as np
import pytest

from repro.core import FileCategory
from repro.fs.checkpoint import CheckpointManager

from .conftest import build_pfs


def payload(n, seed):
    return np.random.default_rng(seed).random((n, 2))


def make_source(env, pfs, org="PS", n=48, p=4):
    f = pfs.create(
        "state", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=4, n_processes=p,
    )

    def fill(data):
        def proc():
            v = f.global_view()
            v.seek(0)
            yield from v.write(data)

        env.run(env.process(proc()))

    return f, fill


class TestSaveRestore:
    def test_save_and_restore_latest(self, env, pfs):
        f, fill = make_source(env, pfs)
        v1 = payload(48, 1)
        fill(v1)
        mgr = CheckpointManager(pfs, f)

        def proc():
            version = yield from mgr.save()
            return version

        assert env.run(env.process(proc())) == 0
        # corrupt the live file, then restore
        fill(payload(48, 2))

        def proc2():
            yield from mgr.restore()

        env.run(env.process(proc2()))
        from repro.fs import verify_file

        assert verify_file(f, v1)

    def test_restore_specific_version(self, env, pfs):
        f, fill = make_source(env, pfs)
        v1, v2 = payload(48, 1), payload(48, 2)
        mgr = CheckpointManager(pfs, f, keep_last=3)

        def save():
            yield from mgr.save()

        fill(v1)
        env.run(env.process(save()))
        fill(v2)
        env.run(env.process(save()))

        def restore0():
            yield from mgr.restore(0)

        env.run(env.process(restore0()))
        from repro.fs import verify_file

        assert verify_file(f, v1)

    def test_rolling_retention(self, env, pfs):
        f, fill = make_source(env, pfs)
        mgr = CheckpointManager(pfs, f, keep_last=2)

        def save():
            yield from mgr.save()

        for seed in range(4):
            fill(payload(48, seed))
            env.run(env.process(save()))
        assert mgr.versions == [2, 3]
        assert mgr.latest == 3
        # the deleted versions are gone from the catalog
        assert not pfs.exists("state.ckpt.000000")
        assert pfs.exists("state.ckpt.000003")

    def test_restore_unknown_version(self, env, pfs):
        f, fill = make_source(env, pfs)
        mgr = CheckpointManager(pfs, f)
        with pytest.raises(ValueError):
            next(mgr.restore())       # nothing committed yet
        with pytest.raises(ValueError):
            next(mgr.restore(99))

    def test_checkpoints_are_specialized_files(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)

        def save():
            yield from mgr.save()

        env.run(env.process(save()))
        entry = pfs.catalog.get("state.ckpt.000000")
        assert entry.attrs.category is FileCategory.SPECIALIZED

    def test_dynamic_org_checkpoints_via_global_view(self, env, pfs):
        f = pfs.create(
            "ss_state", "SS", n_records=24, record_size=16, dtype="float64",
            records_per_block=1, n_processes=3,
        )
        data = payload(24, 5)

        def fill():
            yield from f.global_view().write(data)

        env.run(env.process(fill()))
        mgr = CheckpointManager(pfs, f)

        def save():
            yield from mgr.save()

        env.run(env.process(save()))
        ckpt = pfs.open("ss_state.ckpt.000000")
        from repro.fs import verify_file

        assert verify_file(ckpt, data)

    def test_discard_all(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f, keep_last=5)

        def save():
            yield from mgr.save()

        env.run(env.process(save()))
        env.run(env.process(save()))
        assert mgr.discard_all() == 2
        assert mgr.versions == []
        assert len(pfs.catalog) == 1  # only the source remains

    def test_validation(self, env, pfs):
        f, _ = make_source(env, pfs)
        with pytest.raises(ValueError):
            CheckpointManager(pfs, f, keep_last=0)

    def test_save_costs_simulated_time(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        before = env.now

        def save():
            yield from mgr.save()

        env.run(env.process(save()))
        assert env.now > before
