"""Unit tests for file creation, opening, deletion, and record I/O."""

import numpy as np
import pytest

from repro.core import FileCategory, FileOrganization, OrganizationError
from repro.fs import FileExistsError_, FileNotFoundError_
from repro.storage import ClusteredLayout, InterleavedLayout, StripedLayout

from .conftest import build_pfs


def records(n, items=2, dtype=np.float64, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, items)).astype(dtype)


class TestCreate:
    def test_default_layouts_follow_section4(self, pfs):
        cases = {
            "S": StripedLayout,
            "SS": StripedLayout,
            "GDA": StripedLayout,
            "PS": ClusteredLayout,
            "IS": InterleavedLayout,
            "PDA": InterleavedLayout,
        }
        for org, cls in cases.items():
            f = pfs.create(
                f"f_{org}", org, n_records=64, record_size=16,
                records_per_block=4, n_processes=4,
            )
            assert isinstance(f.layout, cls), org

    def test_duplicate_name_rejected(self, pfs):
        pfs.create("dup", "S", n_records=8, record_size=8)
        with pytest.raises(FileExistsError_):
            pfs.create("dup", "S", n_records=8, record_size=8)

    def test_category_defaults(self, pfs):
        seq = pfs.create("seq", "PS", n_records=8, record_size=8, n_processes=2)
        direct = pfs.create("dir", "PDA", n_records=8, record_size=8, n_processes=2)
        assert seq.attrs.category is FileCategory.STANDARD
        assert direct.attrs.category is FileCategory.SPECIALIZED

    def test_explicit_layout_override(self, pfs):
        f = pfs.create(
            "ps_striped", "PS", n_records=64, record_size=16,
            records_per_block=4, n_processes=4, layout="striped",
        )
        assert isinstance(f.layout, StripedLayout)

    def test_n_devices_subset(self, pfs):
        f = pfs.create(
            "narrow", "S", n_records=64, record_size=16, n_devices=2,
        )
        assert f.layout.n_devices == 2

    def test_n_devices_exceeding_volume_rejected(self, pfs):
        with pytest.raises(ValueError):
            pfs.create("wide", "S", n_records=8, record_size=8, n_devices=99)

    def test_org_params_forwarded(self, pfs):
        f = pfs.create(
            "pda_i", "PDA", n_records=64, record_size=16,
            records_per_block=4, n_processes=4, assignment="interleaved",
        )
        assert f.map.assignment == "interleaved"

    def test_clustered_layout_rejects_dynamic_org(self, pfs):
        with pytest.raises(OrganizationError):
            pfs.create(
                "bad", "SS", n_records=64, record_size=16,
                records_per_block=4, n_processes=4, layout="clustered",
            )


class TestOpenDelete:
    def test_open_roundtrips_attributes(self, pfs):
        pfs.create(
            "keep", "IS", n_records=60, record_size=24, dtype="float64",
            records_per_block=5, n_processes=3,
        )
        f = pfs.open("keep")
        assert f.attrs.organization is FileOrganization.IS
        assert f.attrs.dtype == "float64"
        assert f.map.n_processes == 3

    def test_open_with_different_process_count(self, pfs):
        pfs.create(
            "rescale", "IS", n_records=60, record_size=8,
            records_per_block=5, n_processes=3,
        )
        f = pfs.open("rescale", n_processes=6)
        assert f.map.n_processes == 6

    def test_open_missing_raises(self, pfs):
        with pytest.raises(FileNotFoundError_):
            pfs.open("ghost")

    def test_delete_frees_space(self, pfs):
        free_before = pfs.volume.allocators[0].free_bytes
        pfs.create("temp", "S", n_records=1000, record_size=64)
        assert pfs.volume.allocators[0].free_bytes < free_before
        pfs.delete("temp")
        assert pfs.volume.allocators[0].free_bytes == free_before
        assert not pfs.exists("temp")

    def test_catalog_counts(self, pfs):
        pfs.create("a", "S", n_records=8, record_size=8)
        pfs.create("b", "S", n_records=8, record_size=8)
        pfs.delete("a")
        assert pfs.catalog.creates == 2
        assert pfs.catalog.deletes == 1
        assert pfs.catalog.names() == ["b"]


class TestRecordIO:
    @pytest.mark.parametrize("org,layout", [
        ("S", None), ("PS", None), ("IS", None),
        ("SS", None), ("GDA", None), ("PDA", None),
        ("PS", "striped"), ("IS", "striped"),
    ])
    def test_roundtrip_every_org_and_layout(self, env, pfs, org, layout):
        data = records(40, items=3)
        f = pfs.create(
            f"rt_{org}_{layout}", org, n_records=40, record_size=24,
            dtype="float64", records_per_block=4, n_processes=4, layout=layout,
        )

        def proc():
            yield f.write_records(0, data)
            out = yield f.read_records(0, 40)
            return out

        result = env.run(env.process(proc()))
        assert np.array_equal(result, data)

    def test_partial_span_read(self, env, pfs):
        data = records(20)
        f = pfs.create("partial", "S", n_records=20, record_size=16, dtype="float64")

        def proc():
            yield f.write_records(0, data)
            out = yield f.read_records(5, 7)
            return out

        assert np.array_equal(env.run(env.process(proc())), data[5:12])

    def test_out_of_range_rejected(self, env, pfs):
        f = pfs.create("small", "S", n_records=4, record_size=8)
        with pytest.raises(ValueError):
            f.read_records(2, 3)
        with pytest.raises(ValueError):
            f.read_records(-1, 1)

    def test_block_io_roundtrip(self, env, pfs):
        data = records(22, items=1)  # short final block (rpb=4 -> 6 blocks)
        f = pfs.create(
            "blocks", "IS", n_records=22, record_size=8, dtype="float64",
            records_per_block=4, n_processes=2,
        )

        def proc():
            yield f.write_records(0, data)
            full = yield f.read_block(1)
            short = yield f.read_block(5)
            return full, short

        full, short = env.run(env.process(proc()))
        assert np.array_equal(full, data[4:8])
        assert np.array_equal(short, data[20:22])  # 2-record short block

    def test_write_block_validates_record_count(self, env, pfs):
        f = pfs.create(
            "wb", "IS", n_records=22, record_size=8, dtype="float64",
            records_per_block=4, n_processes=2,
        )
        with pytest.raises(ValueError):
            f.write_block(5, records(4, items=1))  # short block holds 2


class TestMetadataRoundtrip:
    def test_attrs_to_from_dict(self, pfs):
        f = pfs.create(
            "meta", "PDA", n_records=60, record_size=24, dtype="float64",
            records_per_block=5, n_processes=3, assignment="interleaved",
        )
        d = f.attrs.to_dict()
        from repro.fs import FileAttributes

        back = FileAttributes.from_dict(d)
        assert back == f.attrs


class TestEdgeShapes:
    def test_block_bigger_than_file(self, env, pfs):
        """records_per_block > n_records: a single short block."""
        f = pfs.create("tiny", "IS", n_records=3, record_size=8,
                       dtype="float64", records_per_block=16, n_processes=2)
        assert f.n_blocks == 1
        data = records(3, items=1)

        def proc():
            yield from f.global_view().write(data)
            out = yield f.read_block(0)
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_single_record_file(self, env, pfs):
        f = pfs.create("one", "PS", n_records=1, record_size=8,
                       dtype="float64", n_processes=4)
        data = records(1, items=1)

        def proc():
            h = f.internal_view(f.map.owner_of_record(0))
            yield from h.write_next(data)
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_empty_file_all_views(self, env, pfs):
        f = pfs.create("void", "PS", n_records=0, record_size=8,
                       dtype="float64", n_processes=2)
        assert f.n_blocks == 0

        def proc():
            out = yield from f.global_view().read()
            h = f.internal_view(0)
            part = yield from h.read_next(5)
            return len(out), len(part), h.eof

        assert env.run(env.process(proc())) == (0, 0, True)

    def test_large_record_spanning_stripe_units(self, env, pfs):
        # one record bigger than the stripe unit: volume splits it
        f = pfs.create("wide", "S", n_records=4, record_size=16384,
                       records_per_block=1, stripe_unit=4096)
        payload = (np.arange(4 * 16384) % 256).astype(np.uint8).reshape(4, 16384)

        def proc():
            yield from f.global_view().write(payload)
            out = yield f.read_records(1, 2)
            return out

        assert np.array_equal(env.run(env.process(proc())), payload[1:3])
