"""Regression: Catalog.rename must never expose a lost-name window.

The old implementation removed the entry under the old name and then
re-inserted it under the new one; between the two steps a concurrent
lookup saw *neither* name. The fixed rename inserts the new name first
and only then drops the old, so at every intermediate state at least
one of the two names resolves.
"""

import pytest

from repro.core.errors import FileExistsError_, FileNotFoundError_
from repro.fs.catalog import Catalog
from repro.metastore.harness import make_entry


class ObservedDict(dict):
    """Dict that checks a namespace invariant after every mutation."""

    def __init__(self, *args, watch=(), **kwargs):
        super().__init__(*args, **kwargs)
        self.watch = watch
        self.violations = []

    def _check(self):
        if self.watch and not any(name in self for name in self.watch):
            self.violations.append(sorted(self))

    def __setitem__(self, key, value):
        super().__setitem__(key, value)
        self._check()

    def __delitem__(self, key):
        super().__delitem__(key)
        self._check()

    def pop(self, key, *default):
        out = super().pop(key, *default)
        self._check()
        return out


class TestRenameAtomicity:
    def test_rename_never_loses_the_name(self):
        """At every intermediate state, old or new must resolve.

        This fails against the remove-then-reinsert implementation: the
        observer sees a state where neither name is in the catalog.
        """
        cat = Catalog()
        cat.add(make_entry("a"))
        cat._entries = ObservedDict(cat._entries, watch=("a", "b"))
        cat.rename("a", "b")
        assert cat._entries.violations == []
        assert "b" in cat and "a" not in cat
        assert cat.get("b").attrs.name == "b"

    def test_rename_preserves_counters(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        creates, deletes = cat.creates, cat.deletes
        cat.rename("a", "b")
        # a rename is neither a create nor a delete
        assert (cat.creates, cat.deletes) == (creates, deletes)

    def test_rename_to_existing_name_refused(self):
        cat = Catalog()
        cat.add(make_entry("a"))
        cat.add(make_entry("b"))
        with pytest.raises(FileExistsError_):
            cat.rename("a", "b")
        # refused rename left both entries untouched
        assert "a" in cat and "b" in cat
        assert cat.get("a").attrs.name == "a"

    def test_rename_missing_source_refused(self):
        cat = Catalog()
        with pytest.raises(FileNotFoundError_):
            cat.rename("nope", "b")
        assert "b" not in cat

    def test_errors_are_importable_from_core(self):
        """Satellite: the shared error vocabulary lives in core.errors,
        with back-compat aliases still exposed by fs.catalog."""
        import repro.core.errors as core_errors
        import repro.fs.catalog as fs_catalog

        assert fs_catalog.FileExistsError_ is core_errors.FileExistsError_
        assert fs_catalog.FileNotFoundError_ is core_errors.FileNotFoundError_
        from repro.core.errors import ReproError

        assert issubclass(core_errors.FileExistsError_, ReproError)
        assert issubclass(core_errors.FileNotFoundError_, ReproError)
