"""Hypothesis property tests across the whole simulated file system.

The invariants here are the §2 contract itself: whatever the
organization, layout, blocking, or process count, (a) data written
through any view reads back identically through any other view, and
(b) the global view is the concatenation of per-process partitions in
global record order.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim import Environment

from .conftest import build_pfs

file_shapes = st.tuples(
    st.sampled_from(["S", "PS", "IS", "GDA", "PDA"]),
    st.integers(1, 120),     # n_records
    st.integers(1, 8),       # records_per_block
    st.integers(1, 5),       # n_processes
    st.sampled_from([None, "striped"]),   # layout override
)


def make_file(env, org, n, rpb, p, layout):
    pfs = build_pfs(env, n_devices=4)
    return pfs.create(
        "prop", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p, layout=layout,
        stripe_unit=256,
    )


@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(file_shapes, st.integers(0, 2**16))
def test_global_write_read_roundtrip(shape, seed):
    org, n, rpb, p, layout = shape
    env = Environment()
    f = make_file(env, org, n, rpb, p, layout)
    data = np.random.default_rng(seed).random((n, 2))

    def proc():
        yield from f.global_view().write(data)
        v = f.global_view()
        v.seek(0)
        out = yield from v.read()
        return out

    out = env.run(env.process(proc()))
    assert np.array_equal(out, data)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.sampled_from(["PS", "IS"]),
    st.integers(1, 120),
    st.integers(1, 8),
    st.integers(1, 5),
    st.integers(0, 2**16),
)
def test_partition_writes_compose_to_global_view(org, n, rpb, p, seed):
    """Every process writes its own records through the internal view;
    the global view must equal the original data exactly."""
    env = Environment()
    f = make_file(env, org, n, rpb, p, None)
    data = np.random.default_rng(seed).random((n, 2))

    def worker(q):
        h = f.internal_view(q)
        recs = f.map.records_of(q)
        if len(recs):
            yield from h.write_next(data[recs])

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(p)])
        out = yield from f.global_view().read()
        return out

    out = env.run(env.process(driver()))
    assert np.array_equal(out, data)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.sampled_from(["PS", "IS"]),
    st.integers(1, 120),
    st.integers(1, 8),
    st.integers(1, 5),
    st.integers(0, 2**16),
)
def test_internal_reads_see_global_writes(org, n, rpb, p, seed):
    """Dual direction: a global write is visible, correctly sliced, to
    every process's internal view."""
    env = Environment()
    f = make_file(env, org, n, rpb, p, None)
    data = np.random.default_rng(seed).random((n, 2))

    def proc():
        yield from f.global_view().write(data)
        views = {}
        for q in range(p):
            h = f.internal_view(q)
            views[q] = yield from h.read_next(max(h.n_local_records, 1))
        return views

    views = env.run(env.process(proc()))
    for q in range(p):
        expected = data[f.map.records_of(q)]
        if len(expected) == 0:
            assert len(views[q]) == 0
        else:
            assert np.array_equal(views[q], expected)


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.integers(1, 100),
    st.integers(1, 6),
    st.integers(1, 4),
    st.integers(0, 2**16),
)
def test_ss_schedule_reassembles_file(n, rpb, p, seed):
    """Self-scheduled reads, whatever the interleaving, collectively see
    every block exactly once with correct contents."""
    from repro.fs import SSSession

    env = Environment()
    f = make_file(env, "SS", n, rpb, p, None)
    data = np.random.default_rng(seed).random((n, 2))

    def setup():
        yield from f.global_view().write(data)

    env.run(env.process(setup()))
    session = SSSession(f)
    got = {}

    def worker(q):
        h = session.handle(q)
        while True:
            item = yield from h.read_next()
            if item is None:
                return
            got[item[0]] = item[1]
            yield env.timeout(0.001 * ((q + seed) % 3 + 1))

    for q in range(p):
        env.process(worker(q))
    env.run()
    session.validate()
    bs = f.attrs.block_spec
    for b, blockdata in got.items():
        lo = bs.first_record(b)
        hi = lo + bs.block_records(b, n)
        assert np.array_equal(blockdata, data[lo:hi])


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.integers(1, 100),
    st.integers(1, 6),
    st.integers(1, 4),
    st.integers(1, 4),
    st.integers(0, 2**16),
)
def test_conversion_preserves_contents(n, rpb, p_src, p_dst, seed):
    """convert_file between any PS/IS pair preserves the global view."""
    from repro.fs import convert_file

    env = Environment()
    pfs = build_pfs(env, n_devices=4)
    src = pfs.create(
        "src", "PS", n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p_src,
    )
    data = np.random.default_rng(seed).random((n, 2))

    def proc():
        yield from src.global_view().write(data)
        dst = yield from convert_file(
            pfs, src, "dst", "IS", n_processes=p_dst, chunk_records=17,
        )
        out = yield from dst.global_view().read()
        return out

    out = env.run(env.process(proc()))
    assert np.array_equal(out, data)
