"""Regression: an aborted convert_file must not leave a half-written
destination in the catalog.

Pre-fix, ``convert_file`` created the destination eagerly and only
removed it on success: an exception mid-copy (or the driving process
being cancelled) left a truncated file that a later ``pfs.open`` would
serve as if it were real data.
"""

import numpy as np
import pytest

from repro.fs.convert import convert_file

from .conftest import build_pfs


def make_src(env, pfs, n_records=64):
    f = pfs.create(
        "src", "PS", n_records=n_records, record_size=8,
        records_per_block=4, n_processes=4,
    )
    data = (
        np.arange(n_records * 8, dtype=np.uint64) % 251
    ).astype(np.uint8).reshape(n_records, 8)

    def seed():
        yield f.write_records(0, data)

    env.run(env.process(seed()))
    return f


def test_cancelled_conversion_rolls_back_destination(env, pfs):
    src = make_src(env, pfs)

    def driver():
        yield from convert_file(pfs, src, "dst", "IS", chunk_records=8)

    gen = driver()
    next(gen)  # first chunk in flight: destination exists mid-copy
    assert pfs.exists("dst")
    gen.close()  # the driving process is cancelled (GeneratorExit)
    assert not pfs.exists("dst")


def test_failing_conversion_rolls_back_destination(env, pfs):
    src = make_src(env, pfs)

    def driver():
        yield from convert_file(pfs, src, "dst", "IS", chunk_records=8)

    gen = driver()
    next(gen)
    assert pfs.exists("dst")
    with pytest.raises(RuntimeError, match="copy interrupted"):
        gen.throw(RuntimeError("copy interrupted"))
    assert not pfs.exists("dst")


def test_rollback_frees_the_extents_for_reuse(env, pfs):
    src = make_src(env, pfs)
    free_before = [a.free_bytes for a in pfs.volume.allocators]

    def driver():
        yield from convert_file(pfs, src, "dst", "IS", chunk_records=8)

    gen = driver()
    next(gen)
    gen.close()
    assert [a.free_bytes for a in pfs.volume.allocators] == free_before


def test_successful_conversion_still_returns_the_new_file(env, pfs):
    src = make_src(env, pfs)

    def driver():
        dst = yield from convert_file(pfs, src, "dst", "IS", chunk_records=8)
        data = yield dst.read_records(0, src.n_records)
        return dst, data

    dst, data = env.run(env.process(driver()))
    assert pfs.exists("dst")
    expected = (
        np.arange(src.n_records * 8, dtype=np.uint64) % 251
    ).astype(np.uint8).reshape(src.n_records, 8)
    assert np.array_equal(data, expected)
