"""Unit tests for view-mismatch handling: alternate views and conversion."""

import numpy as np
import pytest

from repro.core import OrganizationError
from repro.fs import alternate_view, convert_file
from repro.storage import InterleavedLayout


def records(n, seed=3):
    rng = np.random.default_rng(seed)
    return rng.random((n, 2))


def make_ps_file(pfs, env, n=48, rpb=4, p=4):
    f = pfs.create(
        "src_ps", "PS", n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p,
    )
    data = records(n)

    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))
    return f, data


class TestAlternateView:
    def test_is_view_of_ps_file_returns_correct_records(self, env, pfs):
        f, data = make_ps_file(pfs, env)

        def proc():
            out = {}
            for p in range(4):
                h = alternate_view(f, "IS", p)
                out[p] = yield from h.read_next(h.n_local_records)
            return out

        out = env.run(env.process(proc()))
        from repro.core import BlockSpec, InterleavedMap, RecordSpec

        is_map = InterleavedMap(BlockSpec(RecordSpec(16, "float64"), 4), 48, 4)
        for p in range(4):
            assert np.array_equal(out[p], data[is_map.records_of(p)])

    def test_alternate_view_with_different_process_count(self, env, pfs):
        f, data = make_ps_file(pfs, env)

        def proc():
            h = alternate_view(f, "IS", 5, n_processes=6)
            out = yield from h.read_next(h.n_local_records)
            return out

        out = env.run(env.process(proc()))
        from repro.core import BlockSpec, InterleavedMap, RecordSpec

        is_map = InterleavedMap(BlockSpec(RecordSpec(16, "float64"), 4), 48, 6)
        assert np.array_equal(out, data[is_map.records_of(5)])

    def test_alternate_view_is_slower_than_native(self, env, pfs):
        """The §5 'degraded performance' claim, at the handle level."""
        from .conftest import build_pfs
        from repro.sim import Environment

        def run(native):
            env2 = Environment()
            pfs2 = build_pfs(env2, n_devices=4)
            n, rpb, p = 512, 4, 4
            org = "IS" if native else "PS"
            f = pfs2.create(
                "t", org, n_records=n, record_size=64, records_per_block=rpb,
                n_processes=p,
            )
            data = np.zeros((n, 64), dtype=np.uint8)

            def pre():
                yield from f.global_view().write(data)

            env2.run(env2.process(pre()))
            start = env2.now

            def reader(q):
                if native:
                    h = f.internal_view(q)
                else:
                    h = alternate_view(f, "IS", q)
                yield from h.read_next(h.n_local_records)

            for q in range(p):
                env2.process(reader(q))
            env2.run()
            return env2.now - start

        assert run(native=True) < run(native=False)

    def test_dynamic_desired_org_rejected(self, env, pfs):
        f, _ = make_ps_file(pfs, env)
        with pytest.raises(OrganizationError):
            alternate_view(f, "SS", 0)

    def test_dynamic_source_org_rejected(self, env, pfs):
        """Regression: a dynamically-organized source file was silently
        accepted, producing a handle whose "alternate view" reinterprets a
        record sequence that does not exist. The static-only contract must
        be enforced on the source, the way CollectiveIO enforces it."""
        f = pfs.create("src_ss", "SS", n_records=16, record_size=8,
                       dtype="float64", records_per_block=2, n_processes=2)
        with pytest.raises(OrganizationError):
            alternate_view(f, "PS", 0)


class TestConvertFile:
    def test_ps_to_is_preserves_contents(self, env, pfs):
        f, data = make_ps_file(pfs, env)

        def proc():
            dst = yield from convert_file(pfs, f, "dst_is", "IS")
            out = yield from dst.global_view().read()
            return dst, out

        dst, out = env.run(env.process(proc()))
        assert np.array_equal(out, data)
        assert isinstance(dst.layout, InterleavedLayout)
        assert pfs.exists("dst_is")

    def test_conversion_cost_scales_with_file_size(self, env, pfs):
        from .conftest import build_pfs
        from repro.sim import Environment

        def cost(n):
            env2 = Environment()
            pfs2 = build_pfs(env2, n_devices=4, cylinders=512)
            f = pfs2.create(
                "big", "PS", n_records=n, record_size=64,
                records_per_block=8, n_processes=4,
            )

            def pre():
                yield from f.global_view().write(np.zeros((n, 64), dtype=np.uint8))

            env2.run(env2.process(pre()))
            start = env2.now

            def conv():
                yield from convert_file(pfs2, f, "big2", "IS")

            env2.run(env2.process(conv()))
            return env2.now - start

        small, large = cost(256), cost(1024)
        assert large > small * 2.5

    def test_chunk_records_validation(self, env, pfs):
        f, _ = make_ps_file(pfs, env)
        with pytest.raises(ValueError):
            next(convert_file(pfs, f, "x", "IS", chunk_records=0))

    def test_convert_to_same_org_new_layout(self, env, pfs):
        f, data = make_ps_file(pfs, env)

        def proc():
            dst = yield from convert_file(pfs, f, "restriped", "PS", layout="striped")
            out = yield from dst.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)
