"""Unit tests for backups, rollback consistency, and protection schemes."""

import numpy as np
import pytest

from repro.devices import ShadowPair, WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.fs import BackupManager, ParallelFileSystem, protection_overview, verify_file
from repro.sim import Environment
from repro.storage import Volume

from .conftest import build_pfs


def records(n, seed=4):
    rng = np.random.default_rng(seed)
    return rng.random((n, 2))


def striped_file_with_data(pfs, env, name="f", n=64):
    # stripe finely so the file genuinely spans all devices ("each drive
    # contains a slice of every file") — the premise of the §5 argument
    f = pfs.create(
        name, "S", n_records=n, record_size=16, dtype="float64",
        records_per_block=4, stripe_unit=64,
    )
    data = records(n)

    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))
    return f, data


class TestBackupManager:
    def test_take_and_full_rollback(self, env, pfs):
        f, data = striped_file_with_data(pfs, env)
        mgr = BackupManager(env, pfs.volume)

        def proc():
            bset = yield from mgr.take()
            # post-backup writes
            yield from f.global_view().write(records(64, seed=99))
            # a device dies; roll everything back
            pfs.volume.devices[1].fail()
            yield from mgr.restore_all(bset)
            return bset

        env.run(env.process(proc()))
        assert verify_file(f, data)  # consistent at the backup point

    def test_single_device_restore_is_insufficient(self, env, pfs):
        """The §5 claim: restoring only the failed disk corrupts striped files."""
        f, data = striped_file_with_data(pfs, env)
        mgr = BackupManager(env, pfs.volume)
        newer = records(64, seed=99)

        def proc():
            bset = yield from mgr.take()
            v = f.global_view()
            v.seek(0)
            yield from v.write(newer)      # post-backup write on ALL devices
            pfs.volume.devices[1].fail()
            yield from mgr.restore_device(bset, 1)
            return bset

        env.run(env.process(proc()))
        # Device 1 has backup-time slices; others have newer data: neither
        # the old nor the new file contents are intact.
        assert not verify_file(f, data)
        assert not verify_file(f, newer)

    def test_backup_takes_simulated_time(self, env, pfs):
        mgr = BackupManager(env, pfs.volume)

        def proc():
            yield from mgr.take()

        env.run(env.process(proc()))
        assert env.now > 0

    def test_backup_registry(self, env, pfs):
        mgr = BackupManager(env, pfs.volume)

        def proc():
            a = yield from mgr.take()
            b = yield from mgr.take()
            return a, b

        a, b = env.run(env.process(proc()))
        assert a.backup_id != b.backup_id
        assert mgr.backups[a.backup_id] is a
        assert a.n_devices == pfs.volume.n_devices

    def test_restore_device_bounds(self, env, pfs):
        mgr = BackupManager(env, pfs.volume)

        def proc():
            bset = yield from mgr.take()
            return bset

        bset = env.run(env.process(proc()))
        with pytest.raises(ValueError):
            next(mgr.restore_device(bset, 99))

    def test_shadowed_volume_rejected(self):
        env = Environment()
        geo = DiskGeometry(cylinders=8)
        p = DeviceController(env, DiskModel(geo, WREN_1989), name="p")
        s = DeviceController(env, DiskModel(geo, WREN_1989), name="s")
        vol = Volume(env, [ShadowPair(env, p, s)])
        with pytest.raises(TypeError):
            BackupManager(env, vol)


class TestShadowedFileSystem:
    def test_file_survives_single_member_failure(self):
        env = Environment()
        geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)

        def dev(name):
            return DeviceController(env, DiskModel(geo, WREN_1989), name=name)

        pairs = [ShadowPair(env, dev(f"p{i}"), dev(f"s{i}")) for i in range(2)]
        vol = Volume(env, pairs)
        pfs = ParallelFileSystem(env, vol)
        f = pfs.create(
            "mirrored", "S", n_records=32, record_size=16, dtype="float64",
            records_per_block=4,
        )
        data = records(32)

        def proc():
            yield from f.global_view().write(data)
            pairs[0].primary.fail()   # lose one drive
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)


class TestProtectionOverview:
    def test_section5_coverage_matrix(self):
        schemes = {s.name: s for s in protection_overview(10)}
        assert schemes["parity"].covers_striped
        assert not schemes["parity"].covers_independent
        assert schemes["shadow"].covers_independent
        assert schemes["shadow"].extra_devices == 10
        assert schemes["none+backup"].loses_recent_writes
        assert not schemes["shadow"].loses_recent_writes

    def test_parity_group_count(self):
        schemes = {s.name: s for s in protection_overview(10, parity_group_size=5)}
        assert schemes["parity"].extra_devices == 2

    def test_device_overhead(self):
        shadow = next(s for s in protection_overview(8) if s.name == "shadow")
        assert shadow.device_overhead(8) == 1.0
        with pytest.raises(ValueError):
            shadow.device_overhead(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            protection_overview(0)
        with pytest.raises(ValueError):
            protection_overview(4, parity_group_size=1)


class TestVerifyFile:
    def test_detects_match_and_mismatch(self, env, pfs):
        f, data = striped_file_with_data(pfs, env)
        assert verify_file(f, data)
        tampered = data.copy()
        tampered[10, 0] += 1
        assert not verify_file(f, tampered)

    def test_shape_mismatch_is_false(self, env, pfs):
        f, data = striped_file_with_data(pfs, env)
        assert not verify_file(f, data[:-1])
