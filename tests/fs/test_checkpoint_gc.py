"""Crash recovery for checkpoint files: uncommitted versions are GC'd.

A save that crashes between the partition copies and the commit mark
used to leak its data file into the catalog forever — nothing ever
deleted it, and a later manager could not tell it from a good version.
The durable ``.ok`` marker plus :meth:`CheckpointManager.recover` fix
both: only marker-backed versions are adopted, debris is deleted.
"""

import numpy as np
import pytest

from repro.fs.checkpoint import CheckpointManager

from .conftest import build_pfs  # noqa: F401 (fixture dependency)


def payload(n, seed):
    return np.random.default_rng(seed).random((n, 2))


def make_source(env, pfs, n=48, p=4):
    f = pfs.create(
        "state", "PS", n_records=n, record_size=16, dtype="float64",
        records_per_block=4, n_processes=p,
    )

    def fill(data):
        def proc():
            v = f.global_view()
            v.seek(0)
            yield from v.write(data)

        env.run(env.process(proc()))

    return f, fill


def run_save(env, mgr):
    def proc():
        version = yield from mgr.save()
        return version

    return env.run(env.process(proc()))


def crash_before_commit(env, mgr, monkeypatch):
    """Run a save whose commit mark never lands (crash simulation)."""

    def boom(version):
        raise RuntimeError("crash before commit mark")

    monkeypatch.setattr(mgr, "_mark_committed", boom)

    def proc():
        yield from mgr.save()

    with pytest.raises(RuntimeError, match="crash before commit"):
        env.run(env.process(proc()))
    monkeypatch.undo()


class TestCommitMarker:
    def test_committed_save_leaves_marker(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)
        assert pfs.exists("state.ckpt.000000")
        assert pfs.exists("state.ckpt.000000.ok")

    def test_crashed_save_leaves_no_marker_and_is_not_restorable(
        self, env, pfs, monkeypatch
    ):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        crash_before_commit(env, mgr, monkeypatch)
        # the data file leaked, but the version was never committed
        assert pfs.exists("state.ckpt.000000")
        assert not pfs.exists("state.ckpt.000000.ok")
        assert mgr.versions == []
        with pytest.raises(ValueError):
            next(mgr.restore())


class TestRecoveryGC:
    def test_reopen_collects_uncommitted_version(self, env, pfs, monkeypatch):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)                       # version 0: committed
        crash_before_commit(env, mgr, monkeypatch)  # version 1: debris
        assert pfs.exists("state.ckpt.000001")

        # a fresh manager (the post-crash reopen) adopts 0, deletes 1
        mgr2 = CheckpointManager(pfs, f)
        assert mgr2.versions == [0]
        assert mgr2.recovered_garbage == ["state.ckpt.000001"]
        assert not pfs.exists("state.ckpt.000001")
        assert pfs.exists("state.ckpt.000000")

    def test_recovered_version_is_restorable(self, env, pfs, monkeypatch):
        f, fill = make_source(env, pfs)
        good = payload(48, 1)
        fill(good)
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)
        fill(payload(48, 2))
        crash_before_commit(env, mgr, monkeypatch)

        mgr2 = CheckpointManager(pfs, f)

        def proc():
            yield from mgr2.restore()

        env.run(env.process(proc()))
        from repro.fs import verify_file

        assert verify_file(f, good)

    def test_next_version_skips_past_debris(self, env, pfs, monkeypatch):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)
        crash_before_commit(env, mgr, monkeypatch)
        mgr2 = CheckpointManager(pfs, f)
        # the crashed version's number is burned, not reused
        assert run_save(env, mgr2) == 2
        assert mgr2.versions == [0, 2]

    def test_bare_marker_is_collected(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)
        # simulate a crash mid-delete: data gone, marker left behind
        pfs.delete("state.ckpt.000000")
        mgr2 = CheckpointManager(pfs, f)
        assert mgr2.versions == []
        assert mgr2.recovered_garbage == ["state.ckpt.000000.ok"]
        assert not pfs.exists("state.ckpt.000000.ok")

    def test_recover_is_idempotent(self, env, pfs, monkeypatch):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        run_save(env, mgr)
        crash_before_commit(env, mgr, monkeypatch)
        mgr2 = CheckpointManager(pfs, f)
        assert mgr2.recover() == []              # second pass finds nothing
        assert mgr2.versions == [0]

    def test_clean_namespace_recovers_nothing(self, env, pfs):
        f, fill = make_source(env, pfs)
        fill(payload(48, 0))
        mgr = CheckpointManager(pfs, f)
        assert mgr.recovered_garbage == []
        run_save(env, mgr)
        assert CheckpointManager(pfs, f).recovered_garbage == []
