"""Unit tests for per-file damage assessment after a device failure."""

import pytest

from repro.fs import assess_damage

from .conftest import build_pfs


def test_striped_file_every_device_holds_a_slice(env):
    """§5: 'each drive contains a slice of every file' — for striping."""
    pfs = build_pfs(env, n_devices=4)
    pfs.create("s", "S", n_records=256, record_size=512,
               records_per_block=8, stripe_unit=4096)
    for dev in range(4):
        (report,) = assess_damage(pfs, dev)
        assert not report.intact
        assert report.fraction == pytest.approx(0.25)


def test_clustered_ps_loses_only_resident_partitions(env):
    pfs = build_pfs(env, n_devices=4)
    f = pfs.create("p", "PS", n_records=64, record_size=512,
                   records_per_block=4, n_processes=4)
    (report,) = assess_damage(pfs, 1)
    # exactly one partition (1/4 of the file) lives on device 1
    assert report.fraction == pytest.approx(0.25)
    # and the lost records are exactly process 1's contiguous partition
    recs = f.map.records_of(1)
    assert report.affected_records == [(int(recs[0]), int(recs[-1]) + 1)]


def test_interleaved_loses_every_nth_block(env):
    pfs = build_pfs(env, n_devices=4)
    pfs.create("i", "IS", n_records=64, record_size=512,
               records_per_block=4, n_processes=4)
    (report,) = assess_damage(pfs, 2)
    assert report.fraction == pytest.approx(0.25)
    # blocks 2, 6, 10, 14 -> record runs [8,12), [24,28), ...
    assert report.affected_records == [
        (8, 12), (24, 28), (40, 44), (56, 60),
    ]


def test_file_on_other_devices_is_intact(env):
    pfs = build_pfs(env, n_devices=4)
    pfs.create("narrow", "S", n_records=16, record_size=512,
               records_per_block=4, n_devices=1)  # lives on device 0 only
    (report,) = assess_damage(pfs, 3)
    assert report.intact
    assert report.affected_records == []
    assert report.fraction == 0.0


def test_multiple_files_reported_together(env):
    pfs = build_pfs(env, n_devices=4)
    pfs.create("a", "S", n_records=64, record_size=512,
               records_per_block=4, stripe_unit=512)
    pfs.create("b", "PS", n_records=64, record_size=512,
               records_per_block=4, n_processes=4)
    reports = {r.file: r for r in assess_damage(pfs, 0)}
    assert set(reports) == {"a", "b"}
    assert not reports["a"].intact and not reports["b"].intact


def test_device_bounds(env):
    pfs = build_pfs(env, n_devices=4)
    with pytest.raises(ValueError):
        assess_damage(pfs, 4)


def test_empty_file_intact(env):
    pfs = build_pfs(env, n_devices=4)
    pfs.create("empty", "S", n_records=0, record_size=512)
    (report,) = assess_damage(pfs, 0)
    assert report.intact and report.total_bytes == 0
