"""Unit tests for the WFQ/EDF scheduler and its queue adapters."""

import pytest

from repro.qos import QoSClass, Tenant, WeightedFairQueue
from repro.qos.scheduler import TenantStore
from repro.sim import Environment


def make_tenant(env, name, weight=1.0, deadline=None):
    return Tenant(env, QoSClass(name, weight=weight, deadline=deadline))


def drain_order(sched, tags):
    """Serve every tag in scheduler order; return the service sequence."""
    order = []
    waiting = list(tags)
    while waiting:
        best = min(waiting, key=sched.key)
        sched.dispatch(best)
        waiting.remove(best)
        order.append(best)
    return order


def test_mode_validation():
    with pytest.raises(ValueError):
        WeightedFairQueue(mode="lifo")


def test_wfq_interleaves_by_weight():
    env = Environment()
    sched = WeightedFairQueue()
    gold = make_tenant(env, "gold", weight=3.0)
    bronze = make_tenant(env, "bronze", weight=1.0)
    # both tenants arrive with a deep backlog of unit-cost requests
    tags = [sched.tag(gold, 100) for _ in range(9)]
    tags += [sched.tag(bronze, 100) for _ in range(3)]
    order = drain_order(sched, tags)
    # over the contended run, every bronze service is preceded by ~3 gold ones
    first_six = [t.tenant.name for t in order[:8]]
    assert first_six.count("gold") >= 6  # 3:1 share, not alternation


def test_wfq_fifo_within_one_tenant():
    env = Environment()
    sched = WeightedFairQueue()
    t = make_tenant(env, "only")
    tags = [sched.tag(t, 100) for _ in range(8)]
    order = drain_order(sched, tags)
    assert [tag.seq for tag in order] == sorted(tag.seq for tag in tags)


def test_equal_tags_break_ties_by_arrival():
    env = Environment()
    sched = WeightedFairQueue()
    a = make_tenant(env, "a")
    b = make_tenant(env, "b")
    # same weight, same cost, both starting at virtual time zero: the
    # start tags are equal, so seq (arrival order) must decide
    t1 = sched.tag(a, 100)
    t2 = sched.tag(b, 100)
    assert sched.key(t1) < sched.key(t2)


def test_idle_tenant_does_not_bank_credit():
    env = Environment()
    sched = WeightedFairQueue()
    busy = make_tenant(env, "busy")
    idle = make_tenant(env, "idle")
    for _ in range(50):
        sched.dispatch(sched.tag(busy, 100))
    late = sched.tag(idle, 100)
    # the newcomer starts at the current virtual time, not at zero: it
    # gets its fair share from now on but no retroactive claim
    assert late.start == pytest.approx(sched.virtual_time)


def test_edf_orders_by_deadline_then_arrival():
    env = Environment()
    sched = WeightedFairQueue(mode="edf")
    a = make_tenant(env, "a")
    t1 = sched.tag(a, 100, deadline=5.0)
    t2 = sched.tag(a, 100, deadline=1.0)
    t3 = sched.tag(a, 100, deadline=1.0)
    t4 = sched.tag(a, 100)  # no deadline: served last
    order = drain_order(sched, [t1, t2, t3, t4])
    assert order == [t2, t3, t1, t4]


def test_fifo_mode_is_arrival_order():
    env = Environment()
    sched = WeightedFairQueue(mode="fifo")
    gold = make_tenant(env, "gold", weight=100.0)
    bronze = make_tenant(env, "bronze", weight=1.0)
    t1 = sched.tag(bronze, 100)
    t2 = sched.tag(gold, 100)
    order = drain_order(sched, [t1, t2])
    assert order == [t1, t2]  # weight ignored


def test_starvation_detection_fires_once_per_request():
    env = Environment()
    flagged = []
    sched = WeightedFairQueue(
        starvation_threshold=3, on_starvation=flagged.append
    )
    a = make_tenant(env, "a")
    victim = sched.tag(a, 100)
    # adversarially dispatch later arrivals past the waiting victim
    for _ in range(6):
        sched.dispatch(sched.tag(a, 100))
    assert len(flagged) == 1
    assert flagged[0] is victim
    assert victim.bypassed == 6
    assert sched.starvations == 1


def test_cancel_stops_bypass_accounting():
    env = Environment()
    flagged = []
    sched = WeightedFairQueue(
        starvation_threshold=2, on_starvation=flagged.append
    )
    a = make_tenant(env, "a")
    victim = sched.tag(a, 100)
    sched.cancel(victim)
    for _ in range(5):
        sched.dispatch(sched.tag(a, 100))
    assert not flagged
    assert sched.backlog == 0


class _Item:
    """A minimal NodeRequest stand-in for TenantStore tests."""

    def __init__(self, tenant, payload):
        self.tenant = tenant
        self.payload_bytes = payload
        self.submit_time = 0.0


def test_tenant_store_hands_out_scheduler_choice():
    env = Environment()
    gold = make_tenant(env, "gold", weight=3.0)
    bronze = make_tenant(env, "bronze", weight=1.0)
    sched = WeightedFairQueue()
    store = TenantStore(env, 16, sched, lambda t: t)
    taken = []

    def producer():
        # bronze arrives first, then a burst of gold
        yield store.put(_Item(bronze, 100))
        for _ in range(3):
            yield store.put(_Item(gold, 100))

    def consumer():
        yield env.timeout(0.001)
        for _ in range(4):
            item = yield store.get()
            taken.append(item.tenant.name)

    env.run(env.process(producer()))
    env.run(env.process(consumer()))
    # bronze's start tag equals gold's first (both zero) and it arrived
    # first, so it is served once; the gold burst is not starved behind it
    assert taken[0] == "bronze"
    assert taken[1:] == ["gold", "gold", "gold"]
    assert sched.dispatches == 4


def test_tenant_store_forget_unschedules():
    env = Environment()
    t = make_tenant(env, "t")
    sched = WeightedFairQueue()
    store = TenantStore(env, 16, sched, lambda _: t)

    def producer():
        yield store.put(_Item(t, 100))

    env.run(env.process(producer()))
    item = store.items[0]
    assert sched.backlog == 1
    store.forget(item)
    assert sched.backlog == 0
