"""Acceptance: WFQ enforces weighted shares on a contended device.

The ISSUE's headline scenario — two tenants with weights 3:1 hammering a
single device must see byte shares within 10% of 3:1 under WFQ, and must
NOT see them under plain FIFO (the control).
"""

import pytest

from repro import QoSConfig, build_parallel_fs
from repro.sim import Environment

NBYTES = 2048
WORKERS = 4  # per tenant: keeps the device backlogged so WFQ can choose
HORIZON = 3.0


def run_contended(scheduler: str) -> tuple[float, float]:
    """Gold (weight 3) and bronze (weight 1) hammer one device."""
    env = Environment()
    pfs = build_parallel_fs(env, 1, qos=QoSConfig(scheduler=scheduler))
    mgr = pfs.qos
    gold = mgr.tenant("gold", weight=3.0)
    bronze = mgr.tenant("bronze", weight=1.0)
    dev = pfs.volume.devices[0]

    def worker(offset):
        while True:
            yield dev.read(offset, NBYTES)

    for i in range(WORKERS):
        mgr.spawn(gold, worker(i * NBYTES), name=f"gold-{i}")
        mgr.spawn(bronze, worker((WORKERS + i) * NBYTES), name=f"bronze-{i}")
    env.run(until=HORIZON)
    return gold.serviced_bytes, bronze.serviced_bytes


def test_wfq_delivers_three_to_one():
    gold, bronze = run_contended("wfq")
    assert bronze > 0, "bronze must not be starved outright"
    ratio = gold / bronze
    # within 10% of the 3:1 weight ratio
    assert ratio == pytest.approx(3.0, rel=0.10)


def test_fifo_control_does_not():
    gold, bronze = run_contended("fifo")
    assert bronze > 0
    ratio = gold / bronze
    # FIFO ignores weights: equal offered load -> roughly equal shares
    assert ratio < 2.0


def test_wfq_keeps_both_tenants_flowing():
    gold, bronze = run_contended("wfq")
    # weighted fairness is not starvation: the light tenant still gets
    # a meaningful slice (its 1/4 share, well above a token trickle)
    total = gold + bronze
    assert bronze / total == pytest.approx(0.25, rel=0.15)
