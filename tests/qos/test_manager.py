"""Unit tests for the QoS manager: registry, context propagation, gates."""

import pytest

from repro.qos import QoSConfig, QoSManager, Tenant
from repro.sanitize import EngineSanitizer
from repro.sim import Environment


def seeded_sanitizer(env):
    """A sanitizer owned by this test, not the --sanitize harness.

    These tests seed violations on purpose; routing them into the
    suite-wide collector would fail the run at teardown.
    """
    san = EngineSanitizer(env)
    env._sanitizer = san
    return san


def test_config_validation():
    with pytest.raises(ValueError):
        QoSConfig(scheduler="lifo")
    with pytest.raises(ValueError):
        QoSConfig(default_weight=0)
    with pytest.raises(ValueError):
        QoSConfig(starvation_threshold=0)


def test_tenant_registry_get_or_create():
    env = Environment()
    mgr = QoSManager(env)
    gold = mgr.tenant("gold", weight=3.0)
    assert mgr.tenant("gold") is gold  # first definition wins
    assert gold.weight == 3.0
    assert isinstance(mgr.default_tenant, Tenant)
    assert mgr.resolve(None) is mgr.default_tenant
    assert mgr.resolve(gold) is gold
    assert mgr.resolve("gold") is gold
    assert mgr.resolve("nobody") is mgr.default_tenant


def test_spawn_sets_ambient_tenant_and_children_inherit():
    env = Environment()
    mgr = QoSManager(env)
    gold = mgr.tenant("gold", weight=3.0)
    seen = []

    def child():
        seen.append(("child", env.active_process.qos_tenant))
        yield env.timeout(0)

    def parent():
        seen.append(("parent", env.active_process.qos_tenant))
        yield env.process(child())

    env.run(mgr.spawn(gold, parent()))
    assert seen == [("parent", gold), ("child", gold)]


def test_unspawned_processes_are_untagged():
    env = Environment()
    mgr = QoSManager(env)

    def plain():
        yield env.timeout(0)
        return mgr.active_tenant()

    assert env.run(env.process(plain())) is mgr.default_tenant


def test_admit_bills_blocked_time():
    env = Environment()
    mgr = QoSManager(env)
    slow = mgr.tenant("slow", rate=100.0, burst=50.0)

    def run():
        yield from mgr.admit(slow, 150)  # 100 over burst -> 1.0s wait

    env.run(mgr.spawn(slow, run()))
    assert env.now == pytest.approx(1.0)
    assert slow.blocked.count == 1
    assert slow.blocked.total == pytest.approx(1.0)


def test_admit_is_free_for_unthrottled_tenants():
    env = Environment()
    mgr = QoSManager(env)
    t = mgr.tenant("free")

    def run():
        yield from mgr.admit(t, 10**9)

    env.run(mgr.spawn(t, run()))
    assert env.now == 0.0
    assert t.blocked.count == 0


def test_check_buckets_clean_and_dirty():
    env = Environment()
    san = seeded_sanitizer(env)
    mgr = QoSManager(env)
    limited = mgr.tenant("limited", rate=100.0, burst=50.0)

    def run():
        yield from mgr.admit(limited, 120)

    env.run(mgr.spawn(limited, run()))
    mgr.check_buckets()
    assert san.clean  # lawful traffic: no violation
    # force an overdraw (as a buggy bucket would) and re-check
    limited.bucket.granted_total += 10**9
    mgr.check_buckets()
    assert not san.clean
    assert san.violations[0].kind == "qos-bucket-overrate"


def test_starvation_forwards_to_sanitizer():
    env = Environment()
    san = seeded_sanitizer(env)
    mgr = QoSManager(env, QoSConfig(starvation_threshold=2))
    sched = mgr.make_scheduler("dev0")
    t = mgr.tenant("t")
    sched.tag(t, 100)  # the victim, never dispatched
    for _ in range(4):
        sched.dispatch(sched.tag(t, 100))
    assert mgr.starvations == 1
    assert not san.clean
    assert san.violations[0].kind == "qos-starvation"


def test_deadline_miss_strictness():
    env = Environment()
    san = seeded_sanitizer(env)
    lax = QoSManager(env, QoSConfig(strict_deadlines=False))
    t = lax.tenant("t", deadline=0.001)
    t.note_deadline_miss()
    assert lax.deadline_misses == 1
    assert san.clean  # counted, not a violation
    strict = QoSManager(env, QoSConfig(strict_deadlines=True))
    t2 = strict.tenant("t2", deadline=0.001)
    t2.note_deadline_miss()
    assert not san.clean
    assert san.violations[0].kind == "qos-deadline-miss"
