"""Flood tests: many clients against a bounded I/O-node inbox.

Satellite of the QoS PR — proves the admission bound holds under
saturation: every client completes, blocked-at-admission time is
accounted separately from queued time, tenants are billed for the
backpressure they absorb, and a crash mid-flood salvages every pending
request (QoS-scheduled inboxes included).
"""

import numpy as np
import pytest

from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.ionode import IONode
from repro.qos import QoSConfig, QoSManager
from repro.sim import Environment

N_CLIENTS = 12


def make_node(env, **kwargs):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    devices = {0: DeviceController(env, DiskModel(geo, WREN_1989), name="d0")}
    return IONode(env, "ion0", devices, **kwargs)


def flood(env, node, n_clients, done):
    def one(i):
        req = node.submit("read", [(0, (i % 8) * 512, 512)])
        yield req.admitted
        yield req.event
        done.append(i)

    for i in range(n_clients):
        env.process(one(i))


def test_flood_against_depth_one_inbox_all_complete():
    env = Environment()
    node = make_node(env, queue_depth=1, batch_limit=1)
    done = []
    flood(env, node, N_CLIENTS, done)
    env.run()
    assert sorted(done) == list(range(N_CLIENTS))
    assert node.accepted == node.completed == N_CLIENTS
    node.assert_drained()


def test_admission_blocking_is_accounted():
    env = Environment()
    node = make_node(env, queue_depth=1, batch_limit=1)
    done = []
    flood(env, node, N_CLIENTS, done)
    env.run()
    # every admission is observed; all but the first few had to wait
    assert node.admission_stat.count == N_CLIENTS
    assert node.admission_stat.max > 0.0
    assert node.admission_stat.percentile(95) > 0.0
    # blocked-at-admission and queued-in-inbox are separate clocks
    assert node.wait_stat.count == N_CLIENTS


def test_flooding_tenant_is_billed_for_backpressure():
    env = Environment()
    node = make_node(env, queue_depth=1, batch_limit=1)
    mgr = QoSManager(env, QoSConfig())
    node.enable_qos(mgr)
    greedy = mgr.tenant("greedy")
    done = []

    def one(i):
        req = node.submit("read", [(0, (i % 8) * 512, 512)])
        yield req.admitted
        yield req.event
        done.append(i)

    for i in range(N_CLIENTS):
        mgr.spawn(greedy, one(i), name=f"client-{i}")
    env.run()
    assert len(done) == N_CLIENTS
    assert greedy.blocked.count == N_CLIENTS
    assert greedy.blocked.total > 0.0  # admission stalls were billed
    assert greedy.queued.count == N_CLIENTS
    assert greedy.service.count > 0
    node.assert_drained()


@pytest.mark.parametrize("with_qos", [False, True])
def test_crash_during_flood_salvages_every_pending_request(with_qos):
    env = Environment()
    node = make_node(env, queue_depth=2, batch_limit=1)
    if with_qos:
        mgr = QoSManager(env, QoSConfig())
        node.enable_qos(mgr)
    statuses = []

    def one(i):
        req = node.submit("read", [(0, (i % 8) * 512, 512)])
        yield req.admitted
        statuses.append(req)

    for i in range(N_CLIENTS):
        env.process(one(i))

    salvaged = []

    def crasher():
        yield env.timeout(0.004)  # mid-flood: some served, some queued
        salvaged.extend(node.crash())

    env.process(crasher())
    env.run()
    # everything the node accepted is either completed or salvaged
    assert node.accepted == node.completed + node.migrated
    assert len(salvaged) == node.migrated
    assert node.migrated > 0, "crash must land while requests are pending"
    # salvaged requests carry everything a failover replay needs
    for req in salvaged:
        assert req.items and req.kind == "read"
    node.assert_drained()
