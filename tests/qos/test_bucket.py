"""Unit tests for token-bucket admission throttling."""

import pytest

from repro.qos import TokenBucket
from repro.sim import Environment


def drain(env, gen):
    return env.run(env.process(gen))


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        TokenBucket(env, rate=0, burst=10)
    with pytest.raises(ValueError):
        TokenBucket(env, rate=10, burst=0)
    bucket = TokenBucket(env, rate=10, burst=10)
    with pytest.raises(ValueError):
        drain(env, bucket.acquire(-1))


def test_acquire_within_burst_is_instant():
    env = Environment()
    bucket = TokenBucket(env, rate=100.0, burst=50.0)
    drain(env, bucket.acquire(50))
    assert env.now == 0.0
    assert bucket.tokens == 0.0
    assert bucket.grants == 1
    assert bucket.throttled_grants == 0


def test_acquire_waits_exactly_for_the_deficit():
    env = Environment()
    bucket = TokenBucket(env, rate=100.0, burst=50.0)
    drain(env, bucket.acquire(50))  # empty the bucket
    drain(env, bucket.acquire(30))  # must wait 30/100 s
    assert env.now == pytest.approx(0.3)
    assert bucket.throttled_grants == 1


def test_refill_caps_at_burst():
    env = Environment()
    bucket = TokenBucket(env, rate=100.0, burst=50.0)
    drain(env, bucket.acquire(50))

    def wait_then_check():
        yield env.timeout(100.0)  # far more than burst/rate
        return bucket.tokens

    assert drain(env, wait_then_check()) == pytest.approx(50.0)


def test_oversized_request_is_chunked_at_the_rate():
    env = Environment()
    bucket = TokenBucket(env, rate=100.0, burst=50.0)
    # 250 tokens from a 50-burst bucket: 50 free + 200 at 100/s = 2.0s
    drain(env, bucket.acquire(250))
    assert env.now == pytest.approx(2.0)
    assert bucket.granted_total == pytest.approx(250.0)
    assert bucket.conformant()


def test_conformance_under_hammering():
    env = Environment()
    bucket = TokenBucket(env, rate=1000.0, burst=100.0)

    def hammer():
        for _ in range(40):
            yield from bucket.acquire(75)

    env.run(env.process(hammer()))
    assert bucket.conformant()
    # grants can never beat burst + rate * elapsed
    assert bucket.granted_total <= 100.0 + 1000.0 * env.now + 1e-6


def test_concurrent_acquirers_share_the_rate():
    env = Environment()
    bucket = TokenBucket(env, rate=100.0, burst=10.0)

    def worker():
        for _ in range(5):
            yield from bucket.acquire(10)

    procs = [env.process(worker()) for _ in range(3)]
    env.run(env.all_of(procs))
    # 150 tokens total, 10 free at t=0: at least 1.4s must elapse
    assert env.now >= 1.4 - 1e-9
    assert bucket.conformant()
