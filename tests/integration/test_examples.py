"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()  # every example narrates its run


def test_examples_exist():
    assert len(EXAMPLES) >= 3
    assert any(p.name == "quickstart.py" for p in EXAMPLES)
