"""Integration: the file system keeps serving through device and node death.

For every organization, a device is killed mid-workload under parity or
shadow protection; the workload completes byte-identical to a failure-free
run, the hot spare is rebuilt and swapped in, and the sanitizers stay
clean throughout.
"""

import numpy as np
import pytest

from repro import build_parallel_fs
from repro.devices import DeviceFailedError, DiskGeometry, TransientFaultInjector
from repro.fs import verify_file
from repro.resilience import NodeFaultInjector, ResilienceConfig
from repro.sanitize import attach
from repro.sim import Environment, RngStreams
from repro.storage.parity import StaleParityError
from repro.trace import resilience_report

ORGS = ["S", "PS", "IS", "SS", "GDA", "PDA"]

N_RECORDS = 240
RECORD_SIZE = 32
RECORDS_PER_BLOCK = 6
N_PROCESSES = 4
GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=32)


def pattern():
    return (
        np.arange(N_RECORDS * RECORD_SIZE, dtype=np.uint64) % 251
    ).astype(np.uint8).reshape(N_RECORDS, RECORD_SIZE)


def build(env, protection, io_nodes=None, **over):
    kw = {"spares": 1, "auto_rebuild": True, **over}
    cfg = ResilienceConfig(protection=protection, **kw)
    return build_parallel_fs(
        env, 4, geometry=GEO, io_nodes=io_nodes, resilience=cfg
    )


def kill_device(pfs, protection, index=1):
    """Hard-fail one data device (one shadow member under mirroring)."""
    dev = pfs.volume.devices[index]
    if protection == "shadow":
        dev.primary.fail()
    else:
        dev.fail()


def make_file(pfs, org):
    return pfs.create(
        f"file_{org}",
        org,
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )


@pytest.mark.parametrize("org", ORGS)
@pytest.mark.parametrize("protection", ["parity", "shadow"])
def test_kill_one_device_mid_workload(org, protection):
    env = Environment()
    san = attach(env)
    pfs = build(env, protection)
    f = make_file(pfs, org)

    def run():
        yield f.write_records(0, pattern())
        kill_device(pfs, protection)  # dies with the read phase pending
        data = yield f.read_records(0, N_RECORDS)
        return data

    data = env.run(env.process(run()))
    env.run()  # drain the background hot-spare rebuild
    assert np.array_equal(data, pattern())  # served while degraded
    rv = pfs.resilience
    assert rv.stats.rebuilds_completed == 1  # the spare took over
    assert verify_file(f, pattern())  # post-rebuild media is byte-identical
    if protection == "parity":
        assert rv.stats.degraded_reads > 0
        assert rv.stats.reconstructed_bytes > 0
    else:
        assert pfs.volume.devices[1].dirty_ranges() == []
    san.assert_clean()


@pytest.mark.parametrize("org", ["S", "IS", "PDA"])
@pytest.mark.parametrize("protection", ["parity", "shadow"])
def test_kill_mid_write_under_concurrent_processes(org, protection):
    """The device dies while writes are in flight: journaled (parity) or
    survivor-logged (shadow) writes make the rebuilt media exact anyway."""
    env = Environment()
    san = attach(env)
    pfs = build(env, protection)
    f = make_file(pfs, org)

    def killer():
        yield env.timeout(0.002)  # strictly inside the write phase
        kill_device(pfs, protection)

    def run():
        env.process(killer())
        yield f.write_records(0, pattern())
        data = yield f.read_records(0, N_RECORDS)
        return data

    data = env.run(env.process(run()))
    env.run()
    assert np.array_equal(data, pattern())
    assert pfs.resilience.stats.rebuilds_completed == 1
    assert verify_file(f, pattern())
    san.assert_clean()


@pytest.mark.parametrize("org", ["S", "IS", "PDA"])
def test_device_kill_through_io_nodes(org):
    """Same scenario with the server-mediated plane: degraded reads and the
    rebuild run through the owning I/O node, and the node queues stay lawful."""
    env = Environment()
    san = attach(env)
    pfs = build(env, "parity", io_nodes=2)
    f = make_file(pfs, org)

    def run():
        yield f.write_records(0, pattern())
        kill_device(pfs, "parity")
        data = yield f.read_records(0, N_RECORDS)
        return data

    data = env.run(env.process(run()))
    env.run()
    assert np.array_equal(data, pattern())
    assert pfs.resilience.stats.rebuilds_completed == 1
    assert verify_file(f, pattern())
    san.check_nodes_drained()
    san.assert_clean()


def test_node_crash_and_transient_errors_with_device_kill():
    """The full storm: a node crash mid-workload, transient glitches on a
    survivor, and a hard device failure — every byte still arrives."""
    env = Environment()
    san = attach(env)
    pfs = build(env, "parity", io_nodes=2)
    rv = pfs.resilience
    assert rv.failover is not None  # wired by attach_resilience
    injector = NodeFaultInjector(env, rv.failover)
    faults = TransientFaultInjector(env, RngStreams(11))
    f = make_file(pfs, "IS")

    def run():
        yield f.write_records(0, pattern())
        faults.inject_errors(pfs.volume.devices[2], count=2)
        injector.crash_at(0, env.now + 0.001)
        kill_device(pfs, "parity")
        data = yield f.read_records(0, N_RECORDS)
        return data

    data = env.run(env.process(run()))
    env.run()
    assert np.array_equal(data, pattern())
    assert injector.crashes and rv.stats.failovers == 1
    assert rv.stats.retried_ops >= 1  # the glitches were retried, not fatal
    assert rv.stats.rebuilds_completed == 1
    assert verify_file(f, pattern())
    rv.failover.assert_settled()
    san.check_nodes_drained()
    san.assert_clean()


def test_synchronized_parity_surfaces_stale_reconstruction():
    """§5 made executable end to end: independent writes without parity
    maintenance leave stale units, and a degraded read over them refuses
    to fabricate bytes — it raises StaleParityError."""
    env = Environment()
    pfs = build(env, "parity", parity_mode="synchronized", auto_rebuild=False)
    f = make_file(pfs, "PS")
    outcome = []

    def run():
        yield f.write_records(0, pattern())
        # independent (non-full-stripe) update: parity goes stale
        yield f.write_records(3, pattern()[3:5])
        assert pfs.resilience.group.stale_units > 0
        pfs.volume.devices[0].fail()
        try:
            yield f.read_records(0, N_RECORDS)
        except StaleParityError:
            outcome.append("stale")

    env.run(env.process(run()))
    assert outcome == ["stale"]


def test_unprotected_config_still_retries_but_cannot_reconstruct():
    env = Environment()
    pfs = build(env, None, spares=0)
    faults = TransientFaultInjector(env, RngStreams(5))
    f = make_file(pfs, "S")
    outcome = []

    def run():
        yield f.write_records(0, pattern())
        faults.inject_errors(pfs.volume.devices[0], count=1)
        data = yield f.read_records(0, N_RECORDS)  # glitch retried
        pfs.volume.devices[0].fail()
        try:
            yield f.read_records(0, N_RECORDS)
        except DeviceFailedError:
            outcome.append("dead")
        return data

    data = env.run(env.process(run()))
    assert np.array_equal(data, pattern())
    assert pfs.resilience.stats.retried_ops >= 1
    assert outcome == ["dead"]


def test_resilience_report_renders_nonzero_counters():
    env = Environment()
    pfs = build(env, "parity")
    f = make_file(pfs, "S")

    def run():
        yield f.write_records(0, pattern())
        pfs.volume.devices[1].fail()
        yield f.read_records(0, N_RECORDS)
        yield f.write_records(0, pattern())  # degraded writes -> journal

    env.run(env.process(run()))
    env.run()
    rows = resilience_report(pfs.resilience)
    table = "\n".join(rows)
    assert "degraded reads" in table
    assert "rebuilds" in table
    stats = pfs.resilience.stats
    assert stats.degraded_reads > 0
    assert stats.rebuilds_completed == 1
    assert stats.degraded_read_latency.count > 0
    assert np.isfinite(stats.mttr_seconds)


def test_detach_resilience_restores_the_plain_plane():
    env = Environment()
    pfs = build(env, "parity")
    assert pfs.resilience is not None
    assert pfs.data_plane is pfs.resilience
    pfs.detach_resilience()
    assert pfs.resilience is None
    assert pfs.data_plane is pfs.volume
