"""Scale smoke tests: the stack holds up at larger shapes.

Not performance claims — these guard against accidental O(n^2) blowups
in the engine, the maps, or the layouts when process, device, and block
counts grow well past the unit-test sizes.
"""

import numpy as np
import pytest

from repro import Environment, SSSession, build_parallel_fs
from repro.devices import DiskGeometry


@pytest.mark.parametrize("p,d", [(64, 16)])
def test_many_processes_many_devices_ps_scan(p, d):
    env = Environment()
    pfs = build_parallel_fs(
        env, d,
        geometry=DiskGeometry(block_size=4096, blocks_per_cylinder=32,
                              cylinders=256),
    )
    n = 16 * p
    f = pfs.create(
        "big", "PS", n_records=n, record_size=1024,
        records_per_block=4, n_processes=p,
    )

    def setup():
        yield from f.global_view().write(np.zeros((n, 1024), dtype=np.uint8))

    env.run(env.process(setup()))
    done = []

    def worker(q):
        h = f.internal_view(q)
        total = 0
        while not h.eof:
            chunk = yield from h.read_next(8)
            total += len(chunk)
        done.append(total)

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(p)])

    env.run(env.process(driver()))
    assert sum(done) == n


def test_wide_self_scheduled_run():
    env = Environment()
    pfs = build_parallel_fs(env, 8)
    n = 512
    f = pfs.create(
        "wide_ss", "SS", n_records=n, record_size=512,
        records_per_block=2, n_processes=32,
    )

    def setup():
        yield from f.global_view().write(np.zeros((n, 512), dtype=np.uint8))

    env.run(env.process(setup()))
    session = SSSession(f)
    counts = [0] * 32

    def worker(q):
        h = session.handle(q)
        while True:
            item = yield from h.read_next()
            if item is None:
                return
            counts[q] += 1

    for q in range(32):
        env.process(worker(q))
    env.run()
    session.validate()
    assert sum(counts) == n // 2


def test_thousand_block_global_scan_stays_linear():
    """Doubling the file roughly doubles (not quadruples) the event work;
    use simulated I/O time as the proxy (wall time is too noisy)."""

    def run(n_blocks):
        env = Environment()
        pfs = build_parallel_fs(env, 4)
        f = pfs.create(
            "lin", "S", n_records=n_blocks * 4, record_size=512,
            records_per_block=4,
        )

        def setup():
            yield from f.global_view().write(
                np.zeros((n_blocks * 4, 512), dtype=np.uint8)
            )

        env.run(env.process(setup()))
        start = env.now

        def reader():
            v = f.global_view()
            v.seek(0)
            while not v.eof:
                yield from v.read(16)

        env.run(env.process(reader()))
        return env.now - start

    t1, t2 = run(512), run(1024)
    assert t2 == pytest.approx(2 * t1, rel=0.1)
