"""Integration: the QoS layer composed with every organization and layer.

The acceptance bar from the ISSUE — for each of the six organizations,
tenants run a full write/read workload through qos + io_nodes +
resilience together; every byte arrives, the starvation and token-bucket
invariants hold (sanitizer-checked), failover replay preserves tenant
tags, and the reports render.
"""

import numpy as np
import pytest

from repro import QoSConfig, build_parallel_fs
from repro.devices import DiskGeometry
from repro.fs import verify_file
from repro.resilience import NodeFaultInjector, ResilienceConfig
from repro.sanitize import attach
from repro.sim import Environment
from repro.trace import device_table, ionode_report, qos_report

ORGS = ["S", "PS", "IS", "SS", "GDA", "PDA"]

N_RECORDS = 240
RECORD_SIZE = 32
RECORDS_PER_BLOCK = 6
N_PROCESSES = 4
GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=32)


def pattern(seed=0):
    return (
        (np.arange(N_RECORDS * RECORD_SIZE, dtype=np.uint64) + seed) % 251
    ).astype(np.uint8).reshape(N_RECORDS, RECORD_SIZE)


def build(env, io_nodes=2, resilience=True, **qos_over):
    cfg = (
        ResilienceConfig(protection="parity", spares=1, auto_rebuild=True)
        if resilience else None
    )
    return build_parallel_fs(
        env, 4, geometry=GEO, io_nodes=io_nodes,
        resilience=cfg, qos=QoSConfig(**qos_over),
    )


def make_file(pfs, org, name):
    return pfs.create(
        name,
        org,
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )


def tenant_workload(f, seed):
    def run():
        yield f.write_records(0, pattern(seed))
        data = yield f.read_records(0, N_RECORDS)
        assert np.array_equal(data, pattern(seed))

    return run()


@pytest.mark.parametrize("org", ORGS)
def test_full_stack_two_tenants_every_org(org):
    """qos + io_nodes + resilience, two tenants, all six organizations."""
    env = Environment()
    san = attach(env)
    pfs = build(env)
    mgr = pfs.qos
    gold = mgr.tenant("gold", weight=3.0)
    bronze = mgr.tenant("bronze", weight=1.0)
    fg = make_file(pfs, org, f"gold_{org}")
    fb = make_file(pfs, org, f"bronze_{org}")

    mgr.spawn(gold, tenant_workload(fg, 1), name="gold-wl")
    mgr.spawn(bronze, tenant_workload(fb, 2), name="bronze-wl")
    env.run()

    assert verify_file(fg, pattern(1))
    assert verify_file(fb, pattern(2))
    # both tenants were actually billed through the node layer
    assert gold.ops > 0 and gold.serviced_bytes > 0
    assert bronze.ops > 0 and bronze.serviced_bytes > 0
    mgr.check_buckets()
    san.check_nodes_drained()
    san.assert_clean()  # includes: nobody starved, no bucket overrate


@pytest.mark.parametrize("org", ["S", "IS", "PDA"])
def test_rate_limited_tenant_respects_its_bucket(org):
    """A throttled tenant finishes later but never outruns its bucket."""
    env = Environment()
    san = attach(env)
    pfs = build(env)
    mgr = pfs.qos
    total = N_RECORDS * RECORD_SIZE  # 7680 bytes per pass
    slow = mgr.tenant("slow", rate=4 * total, burst=total // 4)
    f = make_file(pfs, org, f"slow_{org}")

    mgr.spawn(slow, tenant_workload(f, 3), name="slow-wl")
    env.run()

    assert verify_file(f, pattern(3))
    assert slow.bucket is not None and slow.bucket.conformant()
    assert slow.blocked.total > 0.0  # admission actually throttled it
    mgr.check_buckets()
    san.assert_clean()


def test_failover_replay_preserves_tenant_tags():
    """A node crash mid-workload: the replayed requests stay billed to the
    original tenant, not to the default tenant."""
    env = Environment()
    san = attach(env)
    pfs = build(env)
    mgr = pfs.qos
    rv = pfs.resilience
    assert rv.failover is not None
    injector = NodeFaultInjector(env, rv.failover)
    gold = mgr.tenant("gold", weight=3.0)
    f = make_file(pfs, "IS", "gold_failover")

    def run():
        yield f.write_records(0, pattern(4))
        injector.crash_at(0, env.now + 0.001)  # inside the read phase
        data = yield f.read_records(0, N_RECORDS)
        assert np.array_equal(data, pattern(4))

    mgr.spawn(gold, run(), name="gold-wl")
    env.run()

    assert injector.crashes and rv.stats.failovers == 1
    assert verify_file(f, pattern(4))
    assert gold.serviced_bytes > 0
    # nothing leaked to the default tenant: replay carried the tag
    assert mgr.default_tenant.serviced_bytes == 0
    rv.failover.assert_settled()
    san.check_nodes_drained()
    san.assert_clean()


def test_device_kill_under_qos_still_serves_degraded():
    """Parity reconstruction composes with QoS scheduling on the survivors."""
    env = Environment()
    san = attach(env)
    pfs = build(env)
    mgr = pfs.qos
    gold = mgr.tenant("gold")
    f = make_file(pfs, "PS", "gold_degraded")

    def run():
        yield f.write_records(0, pattern(5))
        pfs.volume.devices[1].fail()
        data = yield f.read_records(0, N_RECORDS)
        assert np.array_equal(data, pattern(5))

    mgr.spawn(gold, run(), name="gold-wl")
    env.run()  # drain the hot-spare rebuild too

    assert pfs.resilience.stats.degraded_reads > 0
    assert pfs.resilience.stats.rebuilds_completed == 1
    assert verify_file(f, pattern(5))
    san.assert_clean()


def test_direct_plane_without_nodes_or_resilience():
    """QoS alone (no io_nodes, no resilience) on the direct data plane."""
    env = Environment()
    san = attach(env)
    pfs = build(env, io_nodes=None, resilience=False)
    mgr = pfs.qos
    gold = mgr.tenant("gold", weight=2.0)
    f = make_file(pfs, "GDA", "gold_direct")

    mgr.spawn(gold, tenant_workload(f, 6), name="gold-wl")
    env.run()

    assert verify_file(f, pattern(6))
    assert gold.ops > 0  # billed at the device layer
    san.assert_clean()


def test_detach_qos_restores_the_plain_policies():
    env = Environment()
    pfs = build(env)
    assert pfs.qos is not None
    wrapped = pfs.volume.devices[0].policy
    assert wrapped.name == "qos"
    pfs.detach_qos()
    assert pfs.qos is None
    assert pfs.volume.devices[0].policy is not wrapped


def test_reports_render_with_qos_columns():
    env = Environment()
    pfs = build(env)
    mgr = pfs.qos
    gold = mgr.tenant("gold", weight=3.0)
    bronze = mgr.tenant("bronze", rate=10**6, burst=10**5)
    f = make_file(pfs, "S", "report_file")

    mgr.spawn(gold, tenant_workload(f, 7), name="gold-wl")
    env.run()

    devs = "\n".join(device_table(env, pfs.volume.devices))
    assert "w_p50" in devs and "w_p95" in devs and "w_max" in devs
    nodes = "\n".join(ionode_report(env, pfs.io_cluster))
    assert "w_p50" in nodes
    qos = "\n".join(qos_report(mgr))
    assert "gold" in qos and "bronze" in qos
    assert "starvations" in qos
    # the busy tenant shows a nonzero share; the idle one shows zero ops
    assert gold.ops > 0 and bronze.ops == 0
