"""Integration tests: end-to-end scenarios crossing every layer.

Each test is a miniature of one of the paper's usage stories, run through
the full stack (organization map -> file system -> layout -> volume ->
device controllers -> disk models) and checked for both correctness and
the expected performance *shape*.
"""

import numpy as np
import pytest

from repro import (
    Environment,
    FileOrganization,
    SSSession,
    TraceRecorder,
    alternate_view,
    build_parallel_fs,
    convert_file,
    single_device_fs,
    verify_file,
)
from repro.buffering import BufferPool
from repro.devices import DiskGeometry
from repro.workloads import WrappedMatrix, parallel_matvec, run_task_queue


def payload(n, items=2, seed=0):
    return np.random.default_rng(seed).random((n, items))


class TestProducerConsumerPipeline:
    """An S-type producer partitions data on the fly to PS consumers
    through a second file — the §3.1 Type S usage."""

    def test_distribute_and_gather(self):
        env = Environment()
        pfs = build_parallel_fs(env, 4)
        n, p = 64, 4
        src = pfs.create("input", "S", n_records=n, record_size=16,
                         dtype="float64", records_per_block=4)
        dst = pfs.create("staged", "PS", n_records=n, record_size=16,
                         dtype="float64", records_per_block=4, n_processes=p)
        data = payload(n)

        def producer():
            yield from src.global_view().write(data)
            # read sequentially, assign to consumers' partitions
            reader = src.internal_view(0)
            writer = dst.global_view()
            while not reader.eof:
                chunk = yield from reader.read_next(8)
                yield from writer.write(chunk)

        def consumer(q, out):
            h = dst.internal_view(q)
            rows = yield from h.read_next(h.n_local_records)
            out[q] = rows

        out = {}
        prod = env.process(producer())

        def driver():
            yield prod
            children = [env.process(consumer(q, out)) for q in range(p)]
            yield env.all_of(children)

        env.run(env.process(driver()))
        got = np.concatenate([out[q] for q in range(p)])
        assert np.array_equal(got, data)


class TestMatrixSolverPipeline:
    """Wrapped matrix + self-scheduled task queue, the two §3.1 app shapes."""

    def test_matvec_then_queue(self):
        env = Environment()
        pfs = build_parallel_fs(env, 4)
        rng = np.random.default_rng(1)
        A = rng.random((12, 6))
        x = rng.random(6)
        m = WrappedMatrix(pfs, "A", 12, 6, n_processes=4)

        def driver():
            yield from m.store(A)
            children = [env.process(parallel_matvec(m, q, x)) for q in range(4)]
            results = yield env.all_of(children)
            y = np.zeros(12)
            for idx, part in results.values():
                y[idx] = part
            return y

        y = env.run(env.process(driver()))
        assert np.allclose(y, A @ x)

        # feed y into a self-scheduled normalization queue
        tasks = pfs.create("tasks", "SS", n_records=12, record_size=8,
                           dtype="float64", records_per_block=1, n_processes=4)

        def store_tasks():
            yield from tasks.global_view().write(y.reshape(12, 1))

        env.run(env.process(store_tasks()))
        sessions, stats, procs = run_task_queue(
            tasks, n_workers=4, service_time=lambda b, d: float(abs(d[0, 0])) * 0.01
        )
        env.run()
        sessions[0].validate()
        assert sum(s.tasks for s in stats) == 12


class TestCheckpointRestart:
    """Specialized parallel file for checkpointing (§2 category 2)."""

    def test_checkpoint_write_crash_restore(self):
        env = Environment()
        pfs = build_parallel_fs(env, 4)
        n, p = 48, 4
        state = pfs.create(
            "ckpt", "PS", n_records=n, record_size=16, dtype="float64",
            records_per_block=4, n_processes=p,
        )
        version1 = payload(n, seed=10)

        def checkpoint(q):
            h = state.internal_view(q)
            recs = state.map.records_of(q)
            yield from h.write_next(version1[recs])

        def driver():
            children = [env.process(checkpoint(q)) for q in range(p)]
            yield env.all_of(children)

        env.run(env.process(driver()))
        assert verify_file(state, version1)

        # "crash": new environment pretends a restart; file survives in
        # catalog + devices, reopen and read back
        reopened = pfs.open("ckpt")

        def restore(q, out):
            h = reopened.internal_view(q)
            out[q] = yield from h.read_next(h.n_local_records)

        out = {}

        def driver2():
            children = [env.process(restore(q, out)) for q in range(p)]
            yield env.all_of(children)

        env.run(env.process(driver2()))
        got = np.concatenate([out[q] for q in range(p)])
        assert np.array_equal(got, version1)


class TestMismatchWorkflow:
    """Full §5 scenario: PS writer, IS consumer, all three remedies."""

    def test_all_three_remedies_agree(self):
        env = Environment()
        pfs = build_parallel_fs(env, 4)
        n, p = 96, 4
        f = pfs.create("mismatch", "PS", n_records=n, record_size=16,
                       dtype="float64", records_per_block=4, n_processes=p)
        data = payload(n, seed=3)

        def setup():
            yield from f.global_view().write(data)

        env.run(env.process(setup()))

        from repro.core import BlockSpec, InterleavedMap, RecordSpec

        is_map = InterleavedMap(
            BlockSpec(RecordSpec(16, "float64"), 4), n, p
        )
        want = data[is_map.records_of(2)]

        # remedy 1: degraded alternate-view interface
        def via_alternate():
            h = alternate_view(f, "IS", 2)
            out = yield from h.read_next(h.n_local_records)
            return out

        assert np.array_equal(env.run(env.process(via_alternate())), want)

        # remedy 2: global-view fallback (consumer reads everything)
        def via_global():
            out = yield from f.global_view().read()
            return out

        got_all = env.run(env.process(via_global()))
        assert np.array_equal(got_all[is_map.records_of(2)], want)

        # remedy 3: conversion utility
        def via_convert():
            g = yield from convert_file(pfs, f, "converted", "IS")
            h = g.internal_view(2)
            out = yield from h.read_next(h.n_local_records)
            return out

        assert np.array_equal(env.run(env.process(via_convert())), want)


class TestStripingSpeedupShape:
    """E1 in miniature: more devices -> proportionally faster S scans."""

    def test_speedup_monotone(self):
        times = {}
        for d in (1, 2, 4, 8):
            env = Environment()
            pfs = build_parallel_fs(
                env, d, geometry=DiskGeometry(block_size=512,
                                              blocks_per_cylinder=8,
                                              cylinders=256),
            )
            f = pfs.create("scan", "S", n_records=512, record_size=512,
                           records_per_block=8, stripe_unit=4096)

            def run():
                yield from f.global_view().write(
                    np.zeros((512, 512), dtype=np.uint8)
                )
                start = env.now
                v = f.global_view()
                v.seek(0)
                yield from v.read()
                return env.now - start

            times[d] = env.run(env.process(run()))
        assert times[2] < times[1]
        assert times[4] < times[2]
        assert times[8] < times[4]
        assert times[1] / times[8] > 3  # strong scaling, sublinear is fine


class TestTracedFigure1:
    """The Figure 1 access patterns fall out of real traces."""

    def test_is_trace_matches_figure(self):
        env = Environment()
        rec = TraceRecorder()
        pfs = build_parallel_fs(env, 3, recorder=rec)
        f = pfs.create("fig", "IS", n_records=12, record_size=8,
                       records_per_block=2, n_processes=3)

        def setup():
            yield from f.global_view().write(np.zeros((12, 8), dtype=np.uint8))

        env.run(env.process(setup()))
        rec.clear()

        def reader(q):
            h = f.internal_view(q)
            while h.blocks_remaining:
                yield from h.read_next_block()

        def driver():
            yield env.all_of([env.process(reader(q)) for q in range(3)])

        env.run(env.process(driver()))
        assert rec.blocks_by_process(f.name) == {
            0: [0, 3], 1: [1, 4], 2: [2, 5],
        }


class TestSingleVsParallelDeviceBaseline:
    def test_conventional_fs_works_but_slower(self):
        def run(pfs_builder):
            env = Environment()
            pfs = pfs_builder(env)
            f = pfs.create("x", "S", n_records=256, record_size=512,
                           records_per_block=8)

            def go():
                yield from f.global_view().write(
                    np.zeros((256, 512), dtype=np.uint8)
                )

            env.run(env.process(go()))
            return env.now

        t1 = run(lambda env: single_device_fs(env))
        t4 = run(lambda env: build_parallel_fs(env, 4))
        assert t4 < t1
