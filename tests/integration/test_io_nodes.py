"""Integration: server-mediated I/O matches direct-attached, organization by
organization, and the sanitizers stay clean through the I/O-node path."""

import numpy as np
import pytest

from repro.fs import ParallelFileSystem, alternate_view
from repro.sanitize import AccessConflictDetector, attach
from repro.sim import Environment
from repro.trace import device_table, ionode_report

from ..fs.conftest import build_pfs

ORGS = ["S", "PS", "IS", "SS", "GDA", "PDA"]

N_RECORDS = 240
RECORD_SIZE = 32
RECORDS_PER_BLOCK = 6
N_PROCESSES = 4


def pattern():
    return (
        np.arange(N_RECORDS * RECORD_SIZE, dtype=np.uint64) % 251
    ).astype(np.uint8).reshape(N_RECORDS, RECORD_SIZE)


def run_workload(pfs: ParallelFileSystem, org: str) -> np.ndarray:
    """Write the pattern, read it back, return the bytes the reader saw."""
    env = pfs.env
    f = pfs.create(
        f"file_{org}",
        org,
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )

    def run():
        yield f.write_records(0, pattern())
        data = yield f.read_records(0, N_RECORDS)
        return data

    return env.run(env.process(run()))


@pytest.mark.parametrize("org", ORGS)
def test_mediated_bytes_match_direct(org):
    direct_env = Environment()
    direct = run_workload(build_pfs(direct_env), org)

    mediated_env = Environment()
    pfs = build_pfs(mediated_env)
    pfs.attach_io_nodes(2, cache_blocks=32, cache_block_bytes=512)
    mediated = run_workload(pfs, org)

    assert np.array_equal(direct, mediated)
    assert np.array_equal(mediated, pattern())
    pfs.io_cluster.assert_drained()
    assert pfs.io_cluster.total_device_requests > 0


@pytest.mark.parametrize("org", ["PS", "IS"])
@pytest.mark.parametrize("policy", ["contiguous", "round-robin"])
def test_concurrent_internal_views_through_nodes(org, policy):
    """Every process reads its own partition back through the node path."""
    env = Environment()
    sanitizer = attach(env)
    pfs = build_pfs(env)
    pfs.attach_io_nodes(2, policy=policy, queue_depth=4)
    f = pfs.create(
        f"file_{org}",
        org,
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )

    def run_seed():
        yield f.write_records(0, pattern())

    env.run(env.process(run_seed()))
    seen: dict[int, np.ndarray] = {}

    def reader(p):
        handle = f.internal_view(p)
        n = handle.n_local_records
        if n:
            seen[p] = (yield from handle.read_next(n))

    for p in range(N_PROCESSES):
        env.process(reader(p))
    env.run()

    total = sum(len(a) for a in seen.values())
    assert total == N_RECORDS  # every record delivered to exactly one process
    sanitizer.check_nodes_drained()
    sanitizer.assert_clean()
    pfs.io_cluster.assert_drained()


@pytest.mark.parametrize("org", ["GDA", "PDA"])
def test_concurrent_direct_access_through_nodes(org):
    """Direct-access organizations: disjoint records, many clients at once."""
    env = Environment()
    sanitizer = attach(env)
    pfs = build_pfs(env)
    pfs.attach_io_nodes(2, queue_depth=4, cache_blocks=16, cache_block_bytes=512)
    f = pfs.create(
        f"file_{org}",
        org,
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )
    data = pattern()

    def run_seed():
        yield f.write_records(0, data)

    env.run(env.process(run_seed()))
    mine = (
        {p: [int(r) for r in f.map.records_of(p)] for p in range(N_PROCESSES)}
        if org == "PDA"  # PDA records are owned; stay inside the partition
        else {p: list(range(p, N_RECORDS, N_PROCESSES)) for p in range(N_PROCESSES)}
    )
    seen: dict[int, list] = {p: [] for p in range(N_PROCESSES)}

    def reader(p):
        handle = f.internal_view(p)
        for rec in mine[p]:
            got = yield from handle.read_record(rec)
            seen[p].append((rec, got))

    for p in range(N_PROCESSES):
        env.process(reader(p))
    env.run()

    for p in range(N_PROCESSES):
        for rec, got in seen[p]:
            assert np.array_equal(np.asarray(got).reshape(-1), data[rec])
    sanitizer.check_nodes_drained()
    sanitizer.assert_clean()
    pfs.io_cluster.assert_drained()


def test_per_file_route_through_override():
    env = Environment()
    pfs = build_pfs(env)  # direct by default
    f = pfs.create(
        "f",
        "IS",
        n_records=N_RECORDS,
        record_size=RECORD_SIZE,
        records_per_block=RECORDS_PER_BLOCK,
        n_processes=N_PROCESSES,
    )
    cluster = f.route_through(2)
    assert f.data_plane is not pfs.data_plane

    def run():
        yield f.write_records(0, pattern())
        data = yield f.read_records(0, N_RECORDS)
        return data

    assert np.array_equal(env.run(env.process(run())), pattern())
    cluster.assert_drained()
    assert cluster.total_device_requests > 0
    f.route_direct()
    assert f.data_plane is pfs.volume


def test_detach_restores_direct_plane():
    env = Environment()
    pfs = build_pfs(env)
    pfs.attach_io_nodes(1)
    assert pfs.io_cluster is not None
    pfs.detach_io_nodes()
    assert pfs.io_cluster is None
    assert pfs.data_plane is pfs.volume


def test_ps_written_is_read_mismatch_through_node():
    """The §5 organization-mismatch scenario survives server mediation:
    the access sanitizer still sees the stray accesses when every byte is
    routed through an I/O node."""
    env = Environment()
    engine_san = attach(env)
    detector = AccessConflictDetector()
    pfs = build_pfs(env)
    pfs.sanitizer = detector
    pfs.attach_io_nodes(2)
    f = pfs.create(
        "ps",
        "PS",
        n_records=64,
        record_size=16,
        records_per_block=8,
        n_processes=4,
    )
    handle = alternate_view(f, "IS", process=1)
    assert detector.findings_of("view-mismatch")

    def reader():
        yield from handle.read_next(handle.n_local_records)

    env.run(env.process(reader()))
    assert detector.findings_of("partition-boundary")
    engine_san.check_nodes_drained()
    engine_san.assert_clean()  # the node queues themselves stayed lawful
    pfs.io_cluster.assert_drained()


def test_reports_render_for_mediated_run():
    env = Environment()
    pfs = build_pfs(env)
    cluster = pfs.attach_io_nodes(2, cache_blocks=16, cache_block_bytes=512)
    run_workload(pfs, "IS")
    dev_rows = device_table(env, pfs.volume.devices)
    node_rows = ionode_report(env, cluster)
    assert len(dev_rows) == 1 + pfs.volume.n_devices
    assert len(node_rows) == 1 + len(cluster.nodes)
    assert "coalesce" in node_rows[0]
    assert all("ion" in row for row in node_rows[1:])
