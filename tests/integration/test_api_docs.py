"""API hygiene: every public item in ``repro`` carries a docstring.

Deliverable-level guard: documentation coverage must not regress as the
library grows.
"""

import importlib
import inspect
import pkgutil

import repro


def iter_public_items():
    for modinfo in pkgutil.walk_packages(repro.__path__, "repro."):
        mod = importlib.import_module(modinfo.name)
        yield modinfo.name, mod
        for name, obj in vars(mod).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != modinfo.name:
                continue
            if inspect.isclass(obj) or inspect.isfunction(obj):
                yield f"{modinfo.name}.{name}", obj
                if inspect.isclass(obj):
                    for mname, meth in vars(obj).items():
                        if mname.startswith("_") or not inspect.isfunction(meth):
                            continue
                        yield f"{modinfo.name}.{name}.{mname}", meth


def test_every_public_item_documented():
    missing = [
        qualname
        for qualname, obj in iter_public_items()
        if not (obj.__doc__ if inspect.ismodule(obj) else inspect.getdoc(obj))
    ]
    assert missing == [], f"undocumented public items: {missing}"


def test_top_level_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_subpackage_exports_resolve():
    for modinfo in pkgutil.walk_packages(repro.__path__, "repro."):
        mod = importlib.import_module(modinfo.name)
        for name in getattr(mod, "__all__", []):
            assert hasattr(mod, name), f"{modinfo.name}.__all__ lists missing {name}"
