"""Unit tests for ResilienceConfig validation."""

import pytest

from repro.resilience import ResilienceConfig, RetryPolicy


def test_defaults_are_valid():
    cfg = ResilienceConfig()
    assert cfg.protection == "parity"
    assert isinstance(cfg.retry, RetryPolicy)
    assert cfg.spares == 1


def test_protection_none_disables_reconstruction():
    cfg = ResilienceConfig(protection=None, spares=0)
    assert cfg.protection is None


@pytest.mark.parametrize(
    "kwargs",
    [
        {"protection": "raid6"},
        {"parity_mode": "mirrored"},
        {"parity_unit": 0},
        {"spares": -1},
        {"rebuild_chunk": 0},
        {"rebuild_throttle": -0.5},
        {"breaker_threshold": 0},
        {"breaker_cooldown": -1.0},
    ],
)
def test_invalid_values_rejected(kwargs):
    with pytest.raises(ValueError):
        ResilienceConfig(**kwargs)
