"""Unit tests for the hot-spare rebuilder (parity and shadow sources)."""

import numpy as np
import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
    ShadowPair,
)
from repro.resilience import (
    HotSpareRebuilder,
    ResilienceConfig,
    ResilientVolume,
)
from repro.sanitize import attach
from repro.sim import Environment
from repro.storage import Volume
from repro.storage.parity import ParityGroup, StaleParityError

GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=8)  # 32 KiB
CAP = 512 * 8 * 8


def make_disk(env, name):
    return DeviceController(env, DiskModel(GEO, WREN_1989), name=name)


def fill(dev, seed):
    data = (np.arange(dev.capacity_bytes, dtype=np.uint64) * seed % 251).astype(
        np.uint8
    )
    dev.poke(0, data)
    return data


def make_parity_rv(env, n=3, mode="rmw", **rv_kw):
    """Volume + consistent parity group + resilient wrapper."""
    devices = [make_disk(env, f"d{i}") for i in range(n)]
    parity = make_disk(env, "par")
    contents = [fill(d, i + 2) for i, d in enumerate(devices)]
    xor = np.zeros(CAP, dtype=np.uint8)
    for c in contents:
        np.bitwise_xor(xor, c, out=xor)
    parity.poke(0, xor)
    volume = Volume(env, devices)
    group = ParityGroup(env, devices, parity, mode=mode, parity_unit=4096)
    cfg = ResilienceConfig(parity_mode=mode, spares=0)
    rv = ResilientVolume(volume, group=group, config=cfg, **rv_kw)
    return rv, devices, contents


def test_can_rebuild_gating():
    env = Environment()
    rv, devices, _ = make_parity_rv(env)
    rb = HotSpareRebuilder(rv, [])
    assert not rb.can_rebuild(0)  # no spare
    rb = HotSpareRebuilder(rv, [make_disk(env, "sp")])
    assert not rb.can_rebuild(0)  # device is healthy
    devices[0].fail()
    assert rb.can_rebuild(0)
    with pytest.raises(RuntimeError):
        HotSpareRebuilder(rv, []).start(0)  # failed device but no spare


def test_rebuilder_validation():
    env = Environment()
    rv, _, _ = make_parity_rv(env)
    with pytest.raises(ValueError):
        HotSpareRebuilder(rv, [], chunk_bytes=0)
    with pytest.raises(ValueError):
        HotSpareRebuilder(rv, [], throttle=-1)


def test_parity_rebuild_restores_the_dead_device():
    env = Environment()
    san = attach(env)
    rv, devices, contents = make_parity_rv(env)
    spare = make_disk(env, "spare")
    rb = HotSpareRebuilder(rv, [spare], chunk_bytes=8192)
    rv.rebuilder = rb
    dead = devices[1]
    dead.fail()
    rv.failed_at[1] = env.now
    rb.start(1)
    assert rb.active == [1]
    env.run()
    assert rv.volume.devices[1] is spare
    assert rv.group.data_devices[1] is spare
    assert np.array_equal(spare.peek(0, CAP), contents[1])
    assert rb.active == []
    assert rv.stats.rebuilds_started == 1
    assert rv.stats.rebuilds_completed == 1
    assert rv.stats.rebuild_bytes >= CAP
    assert len(rv.stats.rebuild_times) == 1
    assert rv.stats.mttr_seconds == pytest.approx(rv.stats.rebuild_times[0])
    assert 1 not in rv.failed_at
    san.assert_clean()  # the rebuild verify reported ok


def test_parity_rebuild_replays_the_degraded_write_journal():
    env = Environment()
    rv, devices, contents = make_parity_rv(env)
    spare = make_disk(env, "spare")
    rb = HotSpareRebuilder(rv, [spare], chunk_bytes=8192)
    devices[2].fail()
    # degraded writes that arrived while the device was down
    patch = np.full(100, 77, dtype=np.uint8)
    rv.journal.record(2, 500, patch, env.now)
    rv.journal.record(2, 20000, patch, env.now)
    rb.start(2)
    env.run()
    expected = contents[2].copy()
    expected[500:600] = 77
    expected[20000:20100] = 77
    assert np.array_equal(spare.peek(0, CAP), expected)
    assert rv.stats.replayed_writes == 2
    assert rv.journal.pending(2) == 0  # cleared after the swap
    assert rv.journal.replayed == 2


def test_stale_parity_aborts_the_rebuild_and_returns_the_spare():
    env = Environment()
    rv, devices, _ = make_parity_rv(env, mode="synchronized")
    spare = make_disk(env, "spare")
    rb = HotSpareRebuilder(rv, [spare], chunk_bytes=8192)
    devices[0].fail()
    # an independent write on another member poisoned a shared unit
    rv.group.mark_stale(2, 8192, 4096)
    rb.start(0)
    env.run()
    assert rv.stats.rebuilds_started == 1
    assert rv.stats.rebuilds_completed == 0
    assert len(rb.failures) == 1
    index, exc = rb.failures[0]
    assert index == 0 and isinstance(exc, StaleParityError)
    assert rb.spares == [spare]  # the spare went back to the pool
    assert rv.volume.devices[0] is devices[0]  # no swap happened


def test_throttle_trades_repair_time_for_foreground_bandwidth():
    def mttr(throttle):
        env = Environment()
        rv, devices, _ = make_parity_rv(env)
        rb = HotSpareRebuilder(
            rv, [make_disk(env, "spare")], chunk_bytes=8192, throttle=throttle
        )
        devices[0].fail()
        rv.failed_at[0] = env.now
        rb.start(0)
        env.run()
        assert rv.stats.rebuilds_completed == 1
        return rv.stats.rebuild_times[0]

    flat_out = mttr(0.0)
    throttled = mttr(3.0)
    assert throttled > flat_out * 2  # ~4x, modulo non-chunk time


def test_shadow_rebuild_swaps_the_spare_into_the_pair():
    env = Environment()
    san = attach(env)
    primary = make_disk(env, "p")
    shadow = make_disk(env, "s")
    gold = fill(primary, 3)
    shadow.poke(0, gold)
    pair = ShadowPair(env, primary, shadow)
    volume = Volume(env, [pair])
    cfg = ResilienceConfig(protection="shadow", spares=0)
    rv = ResilientVolume(volume, config=cfg)
    spare = make_disk(env, "spare")
    rb = HotSpareRebuilder(rv, [spare], chunk_bytes=8192)

    def scenario():
        primary.fail()
        rv.failed_at[0] = env.now
        assert rb.can_rebuild(0)
        rb.start(0)
        # a write lands while the rebuild is copying: the catch-up loop
        # must replay it from the pair's dirty log
        yield env.timeout(0.001)
        yield pair.write(1000, np.full(50, 200, dtype=np.uint8))

    env.run(env.process(scenario()))
    env.run()
    assert pair.primary is spare and pair.shadow is shadow
    assert not pair.degraded
    expected = gold.copy()
    expected[1000:1050] = 200
    assert np.array_equal(spare.peek(0, CAP), expected)
    assert np.array_equal(shadow.peek(0, CAP), expected)
    assert pair.dirty_ranges() == []
    assert rv.stats.rebuilds_completed == 1
    san.assert_clean()


def test_start_without_a_reason_raises():
    env = Environment()
    rv, devices, _ = make_parity_rv(env)
    rb = HotSpareRebuilder(rv, [make_disk(env, "spare")])
    with pytest.raises(RuntimeError):
        rb.start(0)  # device 0 is healthy
