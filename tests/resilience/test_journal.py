"""Unit tests for the degraded-write journal."""

import numpy as np
import pytest

from repro.resilience import WriteJournal


def test_record_copies_the_payload():
    j = WriteJournal()
    src = np.full(4, 7, dtype=np.uint8)
    j.record(0, 10, src, time=1.0)
    src[:] = 0  # caller reuses its buffer
    out = np.zeros(4, dtype=np.uint8)
    j.overlay(0, 10, 4, out)
    assert list(out) == [7, 7, 7, 7]


def test_pending_and_clear_are_per_device():
    j = WriteJournal()
    j.record(0, 0, np.zeros(2, dtype=np.uint8), 0.0)
    j.record(0, 8, np.zeros(2, dtype=np.uint8), 0.0)
    j.record(3, 0, np.zeros(2, dtype=np.uint8), 0.0)
    assert (j.pending(0), j.pending(3), j.pending(9)) == (2, 1, 0)
    assert j.total_pending == 3
    assert j.clear(0) == 2
    assert j.total_pending == 1
    assert j.recorded == 3


def test_overlay_applies_oldest_first_so_newest_wins():
    j = WriteJournal()
    j.record(0, 0, np.full(4, 1, dtype=np.uint8), 0.0)
    j.record(0, 2, np.full(4, 2, dtype=np.uint8), 1.0)
    out = np.zeros(8, dtype=np.uint8)
    applied = j.overlay(0, 0, 8, out)
    assert applied == 2
    assert list(out) == [1, 1, 2, 2, 2, 2, 0, 0]


def test_overlay_clips_partial_overlaps():
    j = WriteJournal()
    j.record(0, 0, np.full(8, 9, dtype=np.uint8), 0.0)
    out = np.zeros(4, dtype=np.uint8)
    # window [6, 10) overlaps only entry bytes [6, 8)
    assert j.overlay(0, 6, 4, out) == 1
    assert list(out) == [9, 9, 0, 0]
    # disjoint window: untouched
    out2 = np.full(2, 5, dtype=np.uint8)
    assert j.overlay(0, 100, 2, out2) == 0
    assert list(out2) == [5, 5]


def test_entries_for_is_a_snapshot_in_record_order():
    j = WriteJournal()
    a = j.record(1, 0, np.zeros(1, dtype=np.uint8), 0.0)
    b = j.record(1, 5, np.zeros(1, dtype=np.uint8), 1.0)
    snap = j.entries_for(1)
    assert snap == [a, b]
    j.record(1, 9, np.zeros(1, dtype=np.uint8), 2.0)
    assert len(snap) == 2  # the snapshot did not grow
    assert (b.offset, b.end, b.time) == (5, 6, 1.0)


def test_note_replayed_accumulates():
    j = WriteJournal()
    j.note_replayed(2)
    j.note_replayed(3)
    assert j.replayed == 5
