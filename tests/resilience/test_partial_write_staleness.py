"""Regression: a one-sided data/parity write must poison parity, not lurk.

When one leg of a data/parity write pair exhausts its transient retries
(never touching media) while the counterpart lands, the check data no
longer XORs to on-media bytes — on *any* member, since reconstruction is
cross-device. The resilient volume must mark the range stale for every
member so a later degraded read or rebuild raises ``StaleParityError``
instead of silently fabricating wrong bytes.
"""

import numpy as np
import pytest

from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.resilience import (
    ResilienceConfig,
    ResilientVolume,
    RetryError,
    RetryPolicy,
)
from repro.sim import Environment
from repro.storage import StripedLayout, Volume
from repro.storage.parity import ParityGroup, StaleParityError

GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=8)  # 32 KiB
CAP = 512 * 8 * 8
UNIT = 4096


def make_disk(env, name):
    return DeviceController(env, DiskModel(GEO, WREN_1989), name=name)


def fill(dev, seed):
    data = (np.arange(dev.capacity_bytes, dtype=np.uint64) * seed % 251).astype(
        np.uint8
    )
    dev.poke(0, data)
    return data


def make_rv(env, mode="rmw"):
    """3 data devices + parity, consistent contents, 2-attempt retries."""
    devices = [make_disk(env, f"d{i}") for i in range(3)]
    parity = make_disk(env, "par")
    contents = [fill(d, i + 2) for i, d in enumerate(devices)]
    xor = np.zeros(CAP, dtype=np.uint8)
    for c in contents:
        np.bitwise_xor(xor, c, out=xor)
    parity.poke(0, xor)
    volume = Volume(env, devices)
    group = ParityGroup(env, devices, parity, mode=mode, parity_unit=UNIT)
    cfg = ResilienceConfig(
        parity_mode=mode,
        spares=0,
        retry=RetryPolicy(max_attempts=2, base_delay=1e-4, jitter=0.0),
    )
    rv = ResilientVolume(volume, group=group, config=cfg)
    layout = StripedLayout(3, UNIT)
    extent = rv.allocate(layout, 3 * UNIT)
    return rv, devices, parity, group, layout, extent, contents


def sabotage_writes(dev, n):
    """Make ``dev``'s next write — and its retries — glitch ``n`` times.

    The transient budget is granted on the first write *call*, so earlier
    reads on the same device (the RMW read phase) are unaffected: exactly
    the one-sided failure window where the counterpart write lands.
    """
    orig = dev.write
    armed = [True]

    def patched(offset, data):
        if armed[0]:
            armed[0] = False
            dev.transient_error_budget += n
        return orig(offset, data)

    dev.write = patched


def test_row_parity_retry_exhaustion_poisons_the_stripe():
    """Full-stripe write: data lands, parity write gives up -> stale."""
    env = Environment()
    rv, devices, parity, group, layout, extent, _ = make_rv(env)
    sabotage_writes(parity, 2)
    with pytest.raises(RetryError):
        env.run(rv.write(extent, layout, 0, np.full(3 * UNIT, 7, np.uint8)))
    assert not group.reconstruct_safe(extent.base(0), UNIT)
    devices[1].fail()
    with pytest.raises(StaleParityError):
        env.run(rv.read(extent, layout, UNIT, UNIT))  # file unit 1 -> d1


def test_row_data_retry_exhaustion_poisons_other_members_too():
    """Full-stripe write: parity (XOR of *new* chunks) lands, one data
    write gives up -> reconstruction of ANY member over the row is unsafe."""
    env = Environment()
    rv, devices, parity, group, layout, extent, _ = make_rv(env)
    sabotage_writes(devices[0], 2)
    with pytest.raises(RetryError):
        env.run(rv.write(extent, layout, 0, np.full(3 * UNIT, 9, np.uint8)))
    assert not group.reconstruct_safe(extent.base(0), UNIT)
    devices[1].fail()  # a member whose own write DID land
    with pytest.raises(StaleParityError):
        env.run(rv.read(extent, layout, UNIT, UNIT))


def test_rmw_parity_retry_exhaustion_poisons_the_range():
    """Independent RMW write: new data lands, parity update gives up."""
    env = Environment()
    rv, devices, parity, group, layout, extent, _ = make_rv(env, mode="rmw")
    sabotage_writes(parity, 2)
    with pytest.raises(RetryError):
        env.run(rv.write(extent, layout, 0, np.full(UNIT, 5, np.uint8)))
    assert not group.reconstruct_safe(extent.base(0), UNIT)
    devices[0].fail()
    with pytest.raises(StaleParityError):
        env.run(rv.read(extent, layout, 0, UNIT))


def test_rmw_data_retry_exhaustion_poisons_the_range():
    """Independent RMW write: new parity lands, data write gives up."""
    env = Environment()
    rv, devices, parity, group, layout, extent, _ = make_rv(env, mode="rmw")
    sabotage_writes(devices[0], 2)
    with pytest.raises(RetryError):
        env.run(rv.write(extent, layout, 0, np.full(UNIT, 5, np.uint8)))
    assert not group.reconstruct_safe(extent.base(0), UNIT)
    devices[1].fail()  # cross-device: the poisoned unit covers d1 too
    with pytest.raises(StaleParityError):
        env.run(rv.read(extent, layout, UNIT, UNIT))


def test_both_legs_transient_leaves_media_consistent():
    """Precision check: when NEITHER leg touched media the pair still
    XORs — the range must stay reconstructable with the old contents."""
    env = Environment()
    rv, devices, parity, group, layout, extent, contents = make_rv(env, mode="rmw")
    sabotage_writes(parity, 2)
    sabotage_writes(devices[0], 2)
    with pytest.raises(RetryError):
        env.run(rv.write(extent, layout, 0, np.full(UNIT, 5, np.uint8)))
    base = extent.base(0)
    assert group.reconstruct_safe(base, UNIT)  # nothing reached media
    devices[0].fail()
    data = env.run(rv.read(extent, layout, 0, UNIT))
    assert np.array_equal(data, contents[0][base : base + UNIT])
