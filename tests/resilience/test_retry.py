"""Unit tests for bounded retry with backoff, jitter, and deadlines."""

import pytest

from repro.devices import DeviceFailedError, TransientIOError
from repro.resilience import RetriedOp, RetryError, RetryPolicy, retrying
from repro.sanitize import EngineSanitizer, attach
from repro.sim import Environment, RngStreams


def flaky(env, fails, delay=0.01, value="ok"):
    """An event factory whose first ``fails[0]`` attempts glitch."""

    def op():
        yield env.timeout(delay)
        if fails[0] > 0:
            fails[0] -= 1
            raise TransientIOError("glitch")
        return value

    return lambda: env.process(op())


def run_retry(env, make_event, policy, **kw):
    reports = []

    def proc():
        value = yield from retrying(
            env, make_event, policy, on_report=reports.append, **kw
        )
        return value

    return env.run(env.process(proc())), reports


# -- policy -----------------------------------------------------------------


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)
    with pytest.raises(ValueError):
        RetryPolicy(deadline=0.0)


def test_backoff_grows_exponentially_without_jitter():
    p = RetryPolicy(base_delay=0.001, backoff=2.0, jitter=0.0)
    assert p.delay(0) == pytest.approx(0.001)
    assert p.delay(1) == pytest.approx(0.002)
    assert p.delay(3) == pytest.approx(0.008)


def test_jitter_stays_within_band_and_is_deterministic():
    p = RetryPolicy(base_delay=0.001, backoff=2.0, jitter=0.25)
    rng = RngStreams(3)
    delays = [p.delay(0, rng, "retry") for _ in range(50)]
    assert all(0.00075 <= d <= 0.00125 for d in delays)
    rng2 = RngStreams(3)
    assert delays == [p.delay(0, rng2, "retry") for _ in range(50)]


# -- the retry loop ---------------------------------------------------------


def test_first_try_success_reports_single_attempt():
    env = Environment()
    (value), reports = run_retry(env, flaky(env, [0]), RetryPolicy())
    assert value == "ok"
    (op,) = reports
    assert (op.attempts, op.failures, op.successes) == (1, 0, 1)
    assert op.acked and not op.gave_up


def test_transient_errors_retried_with_backoff():
    env = Environment()
    policy = RetryPolicy(max_attempts=4, base_delay=0.5, backoff=2.0, jitter=0.0)
    value, reports = run_retry(env, flaky(env, [2], delay=0.01), policy)
    assert value == "ok"
    (op,) = reports
    assert (op.attempts, op.failures, op.successes) == (3, 2, 1)
    assert op.errors == ["TransientIOError", "TransientIOError"]
    # 3 attempts of 0.01s each + backoffs of 0.5 and 1.0
    assert env.now == pytest.approx(0.03 + 0.5 + 1.0)


def test_exhaustion_raises_retry_error_with_accounting():
    env = Environment()
    policy = RetryPolicy(max_attempts=3, base_delay=0.001, jitter=0.0)
    outcome = []

    def proc():
        try:
            yield from retrying(env, flaky(env, [99]), policy)
        except RetryError as exc:
            outcome.append(exc.op)

    env.run(env.process(proc()))
    (op,) = outcome
    assert op.gave_up and not op.acked
    assert (op.attempts, op.failures, op.successes) == (3, 3, 0)


def test_deadline_stops_before_the_backoff_overruns():
    env = Environment()
    policy = RetryPolicy(
        max_attempts=10, base_delay=1.0, backoff=2.0, jitter=0.0, deadline=2.0
    )
    outcome = []

    def proc():
        try:
            yield from retrying(env, flaky(env, [99], delay=0.1), policy)
        except RetryError as exc:
            outcome.append(exc.op)

    env.run(env.process(proc()))
    (op,) = outcome
    assert op.gave_up
    # attempt 1 (0.1s) + backoff 1.0 + attempt 2 (0.1s); the next backoff
    # of 2.0s would overrun the 2.0s deadline, so no third attempt
    assert op.attempts == 2
    assert env.now < 2.0


def test_non_retryable_error_propagates_immediately():
    env = Environment()

    def op():
        yield env.timeout(0.01)
        raise DeviceFailedError("d0")

    outcome = []

    def proc():
        try:
            yield from retrying(env, lambda: env.process(op()), RetryPolicy())
        except DeviceFailedError:
            outcome.append("dead")

    env.run(env.process(proc()))
    assert outcome == ["dead"]
    assert env.now == pytest.approx(0.01)  # one attempt, no backoff


def test_each_attempt_issues_a_fresh_event():
    env = Environment()
    issued = []

    def op(n):
        yield env.timeout(0.001)
        if n < 2:
            raise TransientIOError("glitch")
        return n

    def make():
        ev = env.process(op(len(issued)))
        issued.append(ev)
        return ev

    def proc():
        value = yield from retrying(
            env, make, RetryPolicy(max_attempts=5, base_delay=0.0, jitter=0.0)
        )
        return value

    assert env.run(env.process(proc())) == 2
    assert len(issued) == 3
    assert len(set(map(id, issued))) == 3


# -- sanitizer hooks --------------------------------------------------------


def test_sanitizer_clean_for_lawful_ops():
    env = Environment()
    san = attach(env)
    run_retry(env, flaky(env, [2]), RetryPolicy(max_attempts=4))
    san.assert_clean()


@pytest.mark.parametrize(
    "op, kind",
    [
        (RetriedOp("w", "d", attempts=2, failures=0, successes=1), "retry-accounting"),
        (RetriedOp("w", "d", attempts=2, failures=0, successes=2), "retry-multi-apply"),
        (
            RetriedOp("w", "d", attempts=1, failures=1, successes=0, acked=True),
            "retry-acked-unapplied",
        ),
        (
            RetriedOp("w", "d", attempts=2, failures=1, successes=1, gave_up=True),
            "retry-gave-up-applied",
        ),
    ],
)
def test_sanitizer_flags_unlawful_ops(op, kind):
    # standalone sanitizer (not attach): the seeded violation must stay
    # invisible to the suite-wide --sanitize harness
    env = Environment()
    san = EngineSanitizer(env)
    san.on_retried_op(op)
    assert kind in [v.kind for v in san.violations]
