"""Regression tests for ShadowPair degraded-mode semantics.

The two §5 scenarios the resilience layer depends on: a read whose member
dies *mid-request* fails over inside the request, and a write completes
even when one member dies between the two mirrored writes.
"""

import numpy as np
import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DeviceFailedError,
    DiskGeometry,
    DiskModel,
    ShadowPair,
)
from repro.sim import Environment


def make_pair(env):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    p = DeviceController(env, DiskModel(geo, WREN_1989), name="p")
    s = DeviceController(env, DiskModel(geo, WREN_1989), name="s")
    return ShadowPair(env, p, s), p, s


def test_read_fails_over_mid_request_when_its_member_dies():
    env = Environment()
    pair, p, s = make_pair(env)
    p.poke(0, b"\xab" * 512)
    s.poke(0, b"\xab" * 512)
    got = []

    def reader():
        data = yield pair.read(0, 512)  # both idle: primary serves first
        got.append(bytes(data))

    def killer():
        yield env.timeout(0.0005)  # while the read is in flight
        p.fail()

    env.process(reader())
    env.process(killer())
    env.run()
    assert got == [b"\xab" * 512]  # the client saw a completed read
    assert pair.failover_reads == 1
    assert pair.degraded and not pair.failed


def test_write_completes_when_a_member_dies_between_the_two_writes():
    env = Environment()
    pair, p, s = make_pair(env)
    fired = []
    pair.on_degraded = lambda: fired.append(env.now)
    done = []

    def writer():
        n = yield pair.write(0, b"\xcd" * 512)
        done.append(n)

    def killer():
        yield env.timeout(0.0005)  # between issue and completion
        s.fail()

    env.process(writer())
    env.process(killer())
    env.run()
    assert done == [512]  # the client's write completed
    assert pair.degraded_writes == 1
    assert pair.dirty_ranges() == [(0, 512)]  # survivor-only bytes logged
    assert bytes(p.peek(0, 512)) == b"\xcd" * 512
    assert len(fired) == 1  # on_degraded fired exactly once


def test_degraded_at_issue_write_is_logged_and_fires_hook_once():
    env = Environment()
    pair, p, s = make_pair(env)
    fired = []
    pair.on_degraded = lambda: fired.append(True)
    s.fail()

    def writer():
        yield pair.write(100, b"\x11" * 64)
        yield pair.write(300, b"\x22" * 32)

    env.run(env.process(writer()))
    assert pair.degraded_writes == 2
    assert pair.dirty_ranges() == [(100, 64), (300, 32)]
    assert len(fired) == 1


def test_write_with_both_members_dead_fails():
    env = Environment()
    pair, p, s = make_pair(env)
    p.fail()
    s.fail()
    outcome = []

    def writer():
        try:
            yield pair.write(0, b"x")
        except DeviceFailedError:
            outcome.append("failed")

    env.run(env.process(writer()))
    assert outcome == ["failed"]


def test_quiesce_event_waits_out_in_flight_writes():
    env = Environment()
    pair, p, s = make_pair(env)
    quiet_at = []

    def writer(off):
        yield pair.write(off, b"z" * 512)

    def watcher():
        yield env.timeout(0.0001)  # writes are now in flight
        assert pair.writes_in_progress == 2
        ev = pair.quiesce_event()
        assert ev is pair.quiesce_event()  # shared between waiters
        yield ev
        assert pair.writes_in_progress == 0
        quiet_at.append(env.now)

    env.process(writer(0))
    env.process(writer(4096))
    env.process(watcher())
    env.run()
    assert quiet_at and quiet_at[0] > 0
    # quiet now: a fresh quiesce event is already triggered
    assert pair.quiesce_event().triggered


def test_replace_failed_validations():
    env = Environment()
    pair, p, s = make_pair(env)
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    spare = DeviceController(env, DiskModel(geo, WREN_1989), name="spare")
    with pytest.raises(RuntimeError):
        pair.replace_failed(spare)  # nothing failed
    p.fail()
    small = DeviceController(
        env,
        DiskModel(DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=8), WREN_1989),
        name="small",
    )
    with pytest.raises(ValueError):
        pair.replace_failed(small)
    dead_spare = DeviceController(env, DiskModel(geo, WREN_1989), name="ds")
    dead_spare.fail()
    with pytest.raises(ValueError):
        pair.replace_failed(dead_spare)
    dead = pair.replace_failed(spare)
    assert dead is p
    assert pair.primary is spare
    assert not pair.degraded
