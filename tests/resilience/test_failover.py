"""Unit tests for node failover: breaker, crash/re-route/replay, injector."""

import numpy as np
import pytest

from repro.resilience import CircuitBreaker, FailoverManager, NodeFaultInjector
from repro.resilience.stats import ResilienceStats
from repro.sim import Environment

from ..fs.conftest import build_pfs


def advance(env, dt):
    def wait():
        yield env.timeout(dt)

    env.run(env.process(wait()))


def make_cluster(env, n_nodes=2, **kw):
    pfs = build_pfs(env)
    cluster = pfs.attach_io_nodes(n_nodes, **kw)
    return pfs, cluster


# -- circuit breaker --------------------------------------------------------


def test_breaker_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CircuitBreaker(env, threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(env, cooldown=-1)


def test_breaker_trips_at_threshold():
    env = Environment()
    br = CircuitBreaker(env, threshold=3, cooldown=1.0)
    assert br.state == "closed" and br.allow()
    assert br.record_failure() is False
    assert br.record_failure() is False
    assert br.state == "closed"
    assert br.record_failure() is True  # the trip
    assert br.state == "open" and not br.allow()
    assert br.trips == 1
    assert br.record_failure() is False  # already open: no second trip


def test_breaker_half_open_probe_outcomes():
    env = Environment()
    br = CircuitBreaker(env, threshold=1, cooldown=0.5)
    br.record_failure()
    assert br.state == "open"
    advance(env, 0.5)
    assert br.state == "half-open" and br.allow()
    assert br.record_failure() is True  # failed probe re-opens (a new trip)
    assert br.state == "open" and br.trips == 2
    advance(env, 0.5)
    assert br.state == "half-open"
    br.record_success()
    assert br.state == "closed" and br.allow()


# -- failover manager -------------------------------------------------------


def test_fail_node_reroutes_devices_to_survivors():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats)
    moved = cluster.router.devices_of(0)
    assert moved  # contiguous policy: node 0 owns some devices
    salvaged = mgr.fail_node(0)
    assert salvaged == []  # nothing was in flight
    for dev in moved:
        assert cluster.router.node_of(dev) == 1
        assert dev in cluster.nodes[1].devices
    assert cluster.nodes[0].crashed
    assert stats.failovers == 1
    assert mgr.fail_node(0) == []  # idempotent on an already-dead node


def test_fail_node_with_no_survivor_raises():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=1)
    mgr = FailoverManager(env, cluster)
    with pytest.raises(RuntimeError):
        mgr.fail_node(0)


def test_in_flight_requests_replay_on_survivors():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2, queue_depth=1)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats)
    node0 = cluster.nodes[0]
    dev0 = pfs.volume.devices[0]
    dev0.poke(0, bytes(range(64)))
    outcomes = {}

    def client(tag, kind, items, data=None):
        req = node0.submit(kind, items, data=data)
        yield req.admitted
        value = yield req.event
        outcomes[tag] = value

    def scenario():
        # r1 is picked up by the service loop; r2 sits queued; r3 blocks
        # at admission (queue_depth=1) — the crash must salvage all three
        env.process(client("r1", "read", [(0, 0, 64)]))
        yield env.timeout(1e-4)
        env.process(client("r2", "read", [(1, 0, 32)]))
        env.process(
            client("w3", "write", [(1, 64, 16)], data=[np.full(16, 9, np.uint8)])
        )
        yield env.timeout(1e-5)
        mgr.fail_node(0)

    env.run(env.process(scenario()))
    env.run()
    assert bytes(outcomes["r1"][0]) == bytes(range(64))
    assert len(outcomes["r2"][0]) == 32
    assert outcomes["w3"] == 16
    assert bytes(pfs.volume.devices[1].peek(64, 16)) == bytes([9] * 16)
    assert node0.migrated == 3
    assert stats.migrated_requests == 3
    mgr.assert_settled()
    for node in cluster.nodes:
        node.assert_drained()


def test_crash_in_submit_handoff_window_salvages_the_request():
    """A request handed to the loop's pending get (but not yet resumed)
    must not be lost by a crash in the same zero-time instant."""
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    mgr = FailoverManager(env, cluster)
    node0 = cluster.nodes[0]
    pfs.volume.devices[0].poke(0, b"\x5a" * 32)
    got = []

    def scenario():
        req = node0.submit("read", [(0, 0, 32)])
        mgr.fail_node(0)  # same instant: the loop never resumed its get
        yield req.admitted
        arrays = yield req.event
        got.append(bytes(arrays[0]))

    env.run(env.process(scenario()))
    env.run()
    assert got == [b"\x5a" * 32]
    assert node0.migrated == 1
    mgr.assert_settled()
    node0.assert_drained()


def test_breaker_trip_quarantines_the_node():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats, breaker_threshold=2)
    mgr.note_request_failure(1)
    assert not cluster.nodes[1].crashed
    mgr.note_request_failure(1)  # trip
    assert cluster.nodes[1].crashed
    assert stats.quarantined_nodes == 1
    for dev in cluster.nodes[1].devices:
        assert cluster.router.node_of(dev) == 0


def test_last_node_standing_is_never_quarantined():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=1)
    mgr = FailoverManager(env, cluster, breaker_threshold=1)
    mgr.note_request_failure(0)
    assert not cluster.nodes[0].crashed  # keep limping rather than go dark


def test_request_success_resets_the_breaker():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    mgr = FailoverManager(env, cluster, breaker_threshold=2)
    mgr.note_request_failure(0)
    mgr.note_request_success(0)
    mgr.note_request_failure(0)  # would have tripped without the reset
    assert not cluster.nodes[0].crashed


# -- breaker wiring through the client I/O paths ----------------------------


def test_glitches_interleaved_with_successes_never_quarantine():
    """The real client I/O path feeds the breaker in BOTH directions:
    transient request failures count toward the threshold, and a
    completed request resets the count — so failures accumulated over a
    whole run, interleaved with successes, never quarantine a healthy
    node."""
    from repro.resilience import ResilienceConfig, RetryError, RetryPolicy
    from repro.storage import StripedLayout

    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    rv = pfs.attach_resilience(
        ResilienceConfig(breaker_threshold=2, retry=RetryPolicy(max_attempts=1))
    )
    layout = StripedLayout(4, 512)
    extent = rv.allocate(layout, 2048)
    dev0 = pfs.volume.devices[0]
    br = rv.failover.breaker(cluster.router.node_of(0))

    dev0.transient_error_budget += 1
    with pytest.raises(RetryError):
        env.run(rv.read(extent, layout, 0, 512))
    assert br._failures == 1  # the client path fed the breaker
    env.run(rv.read(extent, layout, 0, 512))  # clean request
    assert br._failures == 0  # ...and the success reset it
    dev0.transient_error_budget += 1
    with pytest.raises(RetryError):
        env.run(rv.read(extent, layout, 0, 512))
    assert br._failures == 1  # no trip: the failures never accumulated
    assert not any(n.crashed for n in cluster.nodes)
    assert rv.stats.quarantined_nodes == 0


# -- owner resolution across the message flight ------------------------------


def test_client_request_crossing_a_failover_lands_at_the_new_owner():
    """A node crash during the request-message flight re-routes the
    request to the device's current owner instead of failing it — the
    caller never learns its server changed."""
    from repro.resilience import ResilienceConfig

    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    rv = pfs.attach_resilience(ResilienceConfig())
    mv = rv.inner
    pfs.volume.devices[0].poke(0, b"\x7e" * 64)
    got = []

    def scenario():
        proc = env.process(mv._client_read([(0, 0, 0, 64)]))
        yield env.timeout(cluster.interconnect.request_cost() / 2)
        rv.failover.fail_node(0)  # mid-flight: device 0 moves to node 1
        pairs = yield proc
        got.append(bytes(pairs[0][1]))

    env.run(env.process(scenario()))
    env.run()
    assert got == [b"\x7e" * 64]
    assert cluster.router.node_of(0) == 1
    rv.failover.assert_settled()


def test_node_op_crossing_a_failover_lands_at_the_new_owner():
    """Same window through the per-device resilient path (_node_op)."""
    from repro.resilience import ResilienceConfig

    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    rv = pfs.attach_resilience(ResilienceConfig())
    pfs.volume.devices[0].poke(0, b"\x5c" * 32)
    got = []

    def scenario():
        proc = env.process(rv._node_op("read", 0, 0, 32, None))
        yield env.timeout(cluster.interconnect.request_cost() / 2)
        rv.failover.fail_node(0)
        data = yield proc
        got.append(bytes(data))

    env.run(env.process(scenario()))
    env.run()
    assert got == [b"\x5c" * 32]


# -- fault injector ---------------------------------------------------------


def test_injector_validation():
    env = Environment()
    pfs, cluster = make_cluster(env)
    inj = NodeFaultInjector(env, FailoverManager(env, cluster))
    with pytest.raises(ValueError):
        inj.crash_at(9, 1.0)
    advance(env, 1.0)
    with pytest.raises(ValueError):
        inj.crash_at(0, 0.5)  # in the past


def test_injector_crashes_at_the_scheduled_time():
    env = Environment()
    pfs, cluster = make_cluster(env)
    mgr = FailoverManager(env, cluster)
    inj = NodeFaultInjector(env, mgr)
    inj.crash_at(0, 0.25)
    inj.crash_at(0, 0.5)  # second crash of a dead node: skipped
    env.run()
    assert inj.crashes == [(0, pytest.approx(0.25))]
    assert cluster.nodes[0].crashed
