"""Unit tests for node failover: breaker, crash/re-route/replay, injector."""

import numpy as np
import pytest

from repro.resilience import CircuitBreaker, FailoverManager, NodeFaultInjector
from repro.resilience.stats import ResilienceStats
from repro.sim import Environment

from ..fs.conftest import build_pfs


def advance(env, dt):
    def wait():
        yield env.timeout(dt)

    env.run(env.process(wait()))


def make_cluster(env, n_nodes=2, **kw):
    pfs = build_pfs(env)
    cluster = pfs.attach_io_nodes(n_nodes, **kw)
    return pfs, cluster


# -- circuit breaker --------------------------------------------------------


def test_breaker_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CircuitBreaker(env, threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(env, cooldown=-1)


def test_breaker_trips_at_threshold():
    env = Environment()
    br = CircuitBreaker(env, threshold=3, cooldown=1.0)
    assert br.state == "closed" and br.allow()
    assert br.record_failure() is False
    assert br.record_failure() is False
    assert br.state == "closed"
    assert br.record_failure() is True  # the trip
    assert br.state == "open" and not br.allow()
    assert br.trips == 1
    assert br.record_failure() is False  # already open: no second trip


def test_breaker_half_open_probe_outcomes():
    env = Environment()
    br = CircuitBreaker(env, threshold=1, cooldown=0.5)
    br.record_failure()
    assert br.state == "open"
    advance(env, 0.5)
    assert br.state == "half-open" and br.allow()
    assert br.record_failure() is True  # failed probe re-opens (a new trip)
    assert br.state == "open" and br.trips == 2
    advance(env, 0.5)
    assert br.state == "half-open"
    br.record_success()
    assert br.state == "closed" and br.allow()


# -- failover manager -------------------------------------------------------


def test_fail_node_reroutes_devices_to_survivors():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats)
    moved = cluster.router.devices_of(0)
    assert moved  # contiguous policy: node 0 owns some devices
    salvaged = mgr.fail_node(0)
    assert salvaged == []  # nothing was in flight
    for dev in moved:
        assert cluster.router.node_of(dev) == 1
        assert dev in cluster.nodes[1].devices
    assert cluster.nodes[0].crashed
    assert stats.failovers == 1
    assert mgr.fail_node(0) == []  # idempotent on an already-dead node


def test_fail_node_with_no_survivor_raises():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=1)
    mgr = FailoverManager(env, cluster)
    with pytest.raises(RuntimeError):
        mgr.fail_node(0)


def test_in_flight_requests_replay_on_survivors():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2, queue_depth=1)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats)
    node0 = cluster.nodes[0]
    dev0 = pfs.volume.devices[0]
    dev0.poke(0, bytes(range(64)))
    outcomes = {}

    def client(tag, kind, items, data=None):
        req = node0.submit(kind, items, data=data)
        yield req.admitted
        value = yield req.event
        outcomes[tag] = value

    def scenario():
        # r1 is picked up by the service loop; r2 sits queued; r3 blocks
        # at admission (queue_depth=1) — the crash must salvage all three
        env.process(client("r1", "read", [(0, 0, 64)]))
        yield env.timeout(1e-4)
        env.process(client("r2", "read", [(1, 0, 32)]))
        env.process(
            client("w3", "write", [(1, 64, 16)], data=[np.full(16, 9, np.uint8)])
        )
        yield env.timeout(1e-5)
        mgr.fail_node(0)

    env.run(env.process(scenario()))
    env.run()
    assert bytes(outcomes["r1"][0]) == bytes(range(64))
    assert len(outcomes["r2"][0]) == 32
    assert outcomes["w3"] == 16
    assert bytes(pfs.volume.devices[1].peek(64, 16)) == bytes([9] * 16)
    assert node0.migrated == 3
    assert stats.migrated_requests == 3
    mgr.assert_settled()
    for node in cluster.nodes:
        node.assert_drained()


def test_crash_in_submit_handoff_window_salvages_the_request():
    """A request handed to the loop's pending get (but not yet resumed)
    must not be lost by a crash in the same zero-time instant."""
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    mgr = FailoverManager(env, cluster)
    node0 = cluster.nodes[0]
    pfs.volume.devices[0].poke(0, b"\x5a" * 32)
    got = []

    def scenario():
        req = node0.submit("read", [(0, 0, 32)])
        mgr.fail_node(0)  # same instant: the loop never resumed its get
        yield req.admitted
        arrays = yield req.event
        got.append(bytes(arrays[0]))

    env.run(env.process(scenario()))
    env.run()
    assert got == [b"\x5a" * 32]
    assert node0.migrated == 1
    mgr.assert_settled()
    node0.assert_drained()


def test_breaker_trip_quarantines_the_node():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    stats = ResilienceStats()
    mgr = FailoverManager(env, cluster, stats, breaker_threshold=2)
    mgr.note_request_failure(1)
    assert not cluster.nodes[1].crashed
    mgr.note_request_failure(1)  # trip
    assert cluster.nodes[1].crashed
    assert stats.quarantined_nodes == 1
    for dev in cluster.nodes[1].devices:
        assert cluster.router.node_of(dev) == 0


def test_last_node_standing_is_never_quarantined():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=1)
    mgr = FailoverManager(env, cluster, breaker_threshold=1)
    mgr.note_request_failure(0)
    assert not cluster.nodes[0].crashed  # keep limping rather than go dark


def test_request_success_resets_the_breaker():
    env = Environment()
    pfs, cluster = make_cluster(env, n_nodes=2)
    mgr = FailoverManager(env, cluster, breaker_threshold=2)
    mgr.note_request_failure(0)
    mgr.note_request_success(0)
    mgr.note_request_failure(0)  # would have tripped without the reset
    assert not cluster.nodes[0].crashed


# -- fault injector ---------------------------------------------------------


def test_injector_validation():
    env = Environment()
    pfs, cluster = make_cluster(env)
    inj = NodeFaultInjector(env, FailoverManager(env, cluster))
    with pytest.raises(ValueError):
        inj.crash_at(9, 1.0)
    advance(env, 1.0)
    with pytest.raises(ValueError):
        inj.crash_at(0, 0.5)  # in the past


def test_injector_crashes_at_the_scheduled_time():
    env = Environment()
    pfs, cluster = make_cluster(env)
    mgr = FailoverManager(env, cluster)
    inj = NodeFaultInjector(env, mgr)
    inj.crash_at(0, 0.25)
    inj.crash_at(0, 0.5)  # second crash of a dead node: skipped
    env.run()
    assert inj.crashes == [(0, pytest.approx(0.25))]
    assert cluster.nodes[0].crashed
