"""Writer/reader behaviour over live simulated files."""

import numpy as np
import pytest

from repro.container import (
    ContainerReader,
    ContainerWriter,
    array_section,
    block_section,
    inline_section,
    migrate_container,
    scan_container,
)
from repro.core.organizations import FileCategory

from .conftest import ORGS, media_bytes, write_container

RNG = np.random.default_rng(42)
ARR = RNG.integers(0, 256, size=3000, dtype=np.uint8)
BLOB = RNG.integers(0, 256, size=777, dtype=np.uint8).tobytes()
SECTIONS = [
    inline_section("meta/tag"),
    array_section("data/arr", 750, 4),
    block_section("data/blob", 777),
]
PAYLOADS = {"meta/tag": b"tag=9", "data/arr": ARR, "data/blob": BLOB}


def read_all(env, pfs, name, readers=1, mode="collective"):
    def driver():
        r = yield from ContainerReader.open(pfs, name, readers=readers)
        arr = yield from r.read_array("data/arr", mode=mode)
        blob = yield from r.read_block("data/blob")
        tag = yield from r.read_inline("meta/tag")
        return r, arr, blob, tag

    return env.run(env.process(driver()))


@pytest.mark.parametrize("org", ORGS)
def test_round_trip_every_organization(env, pfs, org):
    f = write_container(env, pfs, "c", SECTIONS, PAYLOADS, org=org, writers=4)
    r, arr, blob, tag = read_all(env, pfs, "c", readers=3)
    assert arr == ARR.tobytes()
    assert blob == BLOB
    assert tag.rstrip() == b"tag=9"
    assert r.described_attrs["organization"] == f.attrs.organization.value
    assert r.section_ids == ["repro/attrs", "meta/tag", "data/arr", "data/blob"]


@pytest.mark.parametrize("mode", ["collective", "view", "serial"])
def test_array_modes_same_bytes_and_same_read(env, pfs, mode):
    f = write_container(
        env, pfs, f"c_{mode}", SECTIONS, PAYLOADS, org="IS", writers=4,
        mode=mode,
    )
    assert scan_container(f).clean
    _, arr, _, _ = read_all(env, pfs, f"c_{mode}", readers=4, mode=mode)
    assert arr == ARR.tobytes()


def test_container_is_a_standard_file(env, pfs):
    # even on the dynamic/specialized organizations, containers are
    # catalogued STANDARD: they are conventional files by construction
    f = write_container(env, pfs, "g", SECTIONS, PAYLOADS, org="GDA", writers=2)
    assert f.attrs.category is FileCategory.STANDARD


def test_self_description_matches_backing_file(env, pfs):
    f = write_container(env, pfs, "c", SECTIONS, PAYLOADS, org="PS",
                        writers=4, layout_processes=4)
    r, *_ = read_all(env, pfs, "c")
    assert r.described_attrs == f.attrs.to_dict()
    desc = r.describe()
    assert desc["attrs"]["organization"] == "PS"
    assert [s["id"] for s in desc["sections"]][0] == "repro/attrs"
    assert r.expected_total_bytes() == f.n_records


def test_writer_enforces_declaration_order_and_shapes(env, pfs):
    def driver():
        w = ContainerWriter.create(pfs, "c", SECTIONS, org="S", writers=1)
        with pytest.raises(RuntimeError):
            next(w.write_inline("meta/tag", b"early"))  # before begin()
        yield from w.begin()
        with pytest.raises(ValueError):
            next(w.write_array("data/arr", ARR))  # skips meta/tag
        yield from w.write_inline("meta/tag", b"t")
        with pytest.raises(ValueError):
            next(w.write_array("data/arr", ARR[:-4]))  # wrong length
        yield from w.write_array("data/arr", ARR)
        with pytest.raises(ValueError):
            next(w.write_block("data/blob", BLOB[:-1]))  # wrong length
        yield from w.write_block("data/blob", BLOB)
        assert w.done
        with pytest.raises(RuntimeError):
            next(w.write_block("data/blob", BLOB))  # already complete
        return w.file

    f = env.run(env.process(driver()))
    assert scan_container(f).clean


def test_reserved_attrs_id_rejected(env, pfs):
    with pytest.raises(ValueError):
        ContainerWriter.create(pfs, "c", [block_section("repro/attrs", 8)])


def test_reader_unknown_section_and_kind_mismatch(env, pfs):
    write_container(env, pfs, "c", SECTIONS, PAYLOADS)

    def driver():
        r = yield from ContainerReader.open(pfs, "c")
        with pytest.raises(KeyError):
            next(r.read_block("nope"))
        with pytest.raises(ValueError):
            next(r.read_array("data/blob"))  # block, not array
        return r

    env.run(env.process(driver()))


def test_migration_preserves_user_bytes_and_updates_description(env, pfs):
    src = write_container(env, pfs, "src", SECTIONS, PAYLOADS, org="PS",
                          writers=4, layout_processes=4)
    before = media_bytes(src)

    def driver():
        dst = yield from migrate_container(pfs, src, "dst", "IS",
                                           n_processes=4)
        r = yield from ContainerReader.open(pfs, "dst", readers=2)
        arr = yield from r.read_array("data/arr")
        return dst, r, arr

    dst, r, arr = env.run(env.process(driver()))
    assert arr == ARR.tobytes()
    assert r.described_attrs["organization"] == "IS"
    assert scan_container(dst).clean
    after = media_bytes(dst)
    # only the rewritten attrs section differs; every user byte is equal
    attrs_ext = r.toc["repro/attrs"]
    assert after[attrs_ext.end:] == before[attrs_ext.end:]
    assert after[:attrs_ext.header_off] == before[:attrs_ext.header_off]
