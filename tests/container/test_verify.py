"""The byte-level scanner and the host-file CLI."""

from pathlib import Path

import pytest

from repro.container import scan_bytes
from repro.container.codec import (
    FILE_HEADER_BYTES,
    SECTION_HEADER_BYTES,
)
from repro.container.verify import main as verify_main

from .make_fixtures import build_corrupt, build_good

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def good():
    return build_good()


def kinds(report):
    return [f.kind for f in report.findings]


# -- structural findings, one corruption class at a time ----------------------


def test_clean_scan(good):
    rep = scan_bytes(good, name="good")
    assert rep.clean
    assert rep.verified == ["notes", "table"]
    assert len(rep.sections) == 2


def test_not_a_container(good):
    rep = scan_bytes(b"definitely not one" + good[18:])
    assert kinds(rep) == ["bad-magic"]
    assert not rep.sections  # walk never starts


def test_unsupported_version(good):
    buf = bytearray(good)
    buf[16:24] = b"99.00   "
    rep = scan_bytes(bytes(buf))
    # version finding plus the header checksum the edit invalidated
    assert "bad-version" in kinds(rep)
    assert "header-checksum" in kinds(rep)


def test_file_header_checksum(good):
    buf = bytearray(good)
    buf[30] ^= 0x01  # user-string byte
    assert kinds(scan_bytes(bytes(buf))) == ["header-checksum"]


def test_section_payload_checksum_attribution(good):
    corrupt = build_corrupt(good)
    rep = scan_bytes(corrupt)
    assert kinds(rep) == ["section-checksum"]
    assert rep.findings[0].section == "table"
    assert rep.verified == ["notes"]


def test_damaged_section_header_stops_the_walk(good):
    buf = bytearray(good)
    buf[FILE_HEADER_BYTES] = ord("Q")  # first section's kind byte
    rep = scan_bytes(bytes(buf))
    assert kinds(rep) == ["bad-section-header"]
    assert not rep.sections


def test_bad_padding(good):
    rep0 = scan_bytes(good)
    pad_addr = rep0.sections[0].pad_off
    buf = bytearray(good)
    buf[pad_addr] = ord("X")
    rep = scan_bytes(bytes(buf))
    assert kinds(rep) == ["bad-padding"]
    assert rep.findings[0].section == "notes"


def test_truncated_file(good):
    rep = scan_bytes(good[:-100])
    assert "truncated" in kinds(rep)
    rep = scan_bytes(good[:FILE_HEADER_BYTES + 10])
    assert "truncated" in kinds(rep)
    rep = scan_bytes(good[:40])
    assert kinds(rep) == ["truncated"]


def test_trailing_bytes(good):
    rep = scan_bytes(good + b"junk")
    assert kinds(rep) == ["trailing-bytes"]


def test_corrupt_count_field_is_caught_by_section_crc(good):
    # the count field is folded into the section checksum, so a shifted
    # count cannot silently remap later sections
    off = FILE_HEADER_BYTES + 34 + 10  # inside section 0's count field
    buf = bytearray(good)
    buf[off] = ord("9")
    rep = scan_bytes(bytes(buf))
    assert "section-checksum" in kinds(rep)


def test_sanitize_interop(good):
    rep = scan_bytes(build_corrupt(good), name="c")
    findings = rep.to_sanitize_findings(time=2.0)
    assert len(findings) == 1
    assert findings[0].kind == "container-section-checksum"
    assert findings[0].file == "c"
    assert "table" in findings[0].detail
    assert findings[0].row()  # renders like any sanitizer finding


# -- the CLI ------------------------------------------------------------------


def test_cli_exit_codes(tmp_path, good, capsys):
    good_path = tmp_path / "good.cnt"
    bad_path = tmp_path / "bad.cnt"
    good_path.write_bytes(good)
    bad_path.write_bytes(build_corrupt(good))
    assert verify_main([str(good_path)]) == 0
    assert verify_main([str(bad_path)]) == 1
    assert verify_main([str(good_path), str(bad_path)]) == 1
    assert verify_main([]) == 2
    assert verify_main([str(tmp_path / "missing.cnt")]) == 2
    out = capsys.readouterr().out
    assert "CLEAN" in out
    assert "section-checksum" in out


def test_cli_quiet(tmp_path, good, capsys):
    p = tmp_path / "g.cnt"
    p.write_bytes(good)
    assert verify_main(["-q", str(p)]) == 0
    assert capsys.readouterr().out == ""


def test_committed_fixtures_match_the_builder(good):
    """The committed CI fixtures are exactly what the builder makes."""
    assert (FIXTURES / "good.cnt").read_bytes() == good
    assert (FIXTURES / "corrupt.cnt").read_bytes() == build_corrupt(good)
