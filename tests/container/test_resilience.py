"""Containers under the resilience layer: degraded reads and injected
media corruption."""

import numpy as np
import pytest

from repro import build_parallel_fs
from repro.container import (
    ContainerReader,
    ChecksumError,
    array_section,
    fsck,
    scan_container,
)
from repro.resilience import ResilienceConfig
from repro.sim import Environment

from .conftest import write_container

RNG = np.random.default_rng(77)
ARR = RNG.integers(0, 256, size=8192, dtype=np.uint8)
SECTIONS = [array_section("payload", 2048, 4)]
PAYLOADS = {"payload": ARR}


def build(protection="parity", **over):
    env = Environment()
    cfg = ResilienceConfig(
        protection=protection, spares=0, auto_rebuild=False, **over
    )
    pfs = build_parallel_fs(env, 4, resilience=cfg)
    f = write_container(env, pfs, "c", SECTIONS, PAYLOADS, org="IS",
                        writers=4, layout_processes=4)
    return env, pfs, f


def test_fsck_through_failed_device_is_clean_and_counts_degraded_reads():
    env, pfs, f = build()
    pfs.volume.devices[1].fail()

    def scan():
        return (yield from fsck(f))

    rep = env.run(env.process(scan()))
    assert rep.clean  # parity reconstruction recovered every byte
    assert rep.resilience.get("degraded_reads", 0) > 0
    assert rep.resilience.get("reconstructed_bytes", 0) > 0


def test_degraded_read_path_returns_verified_payload():
    env, pfs, f = build()
    pfs.volume.devices[2].fail()

    def reading():
        r = yield from ContainerReader.open(pfs, "c", readers=4)
        return (yield from r.read_array("payload"))

    # the checksum check inside read_array passes on reconstructed data
    assert env.run(env.process(reading())) == ARR.tobytes()
    assert pfs.resilience.stats.degraded_reads > 0


def test_injected_media_corruption_surfaces_as_checksum_finding():
    """Corruption below the resilience layer (poke = silent bit rot the
    parity never saw) is exactly what the container checksums catch."""
    env, pfs, f = build()
    rep0 = scan_container(f)
    ext = next(e for e in rep0.sections if e.decl.section_id == "payload")
    target = ext.payload_off + 4000
    row = f.volume.peek(f.entry.extent, f.layout, target, 1)
    f.volume.poke(
        f.entry.extent, f.layout, target,
        np.array([[row.ravel()[0] ^ 0x80]], dtype=np.uint8),
    )
    # media scan and data-plane fsck agree on the attribution
    for rep in (scan_container(f), env.run(env.process(fsck(f)))):
        assert [x.kind for x in rep.findings] == ["section-checksum"]
        assert rep.findings[0].section == "payload"

    def reading():
        r = yield from ContainerReader.open(pfs, "c", readers=2)
        with pytest.raises(ChecksumError):
            yield from r.read_array("payload")

    env.run(env.process(reading()))


def test_fsck_without_resilience_reports_no_deltas():
    env = Environment()
    pfs = build_parallel_fs(env, 4)
    f = write_container(env, pfs, "c", SECTIONS, PAYLOADS)
    rep = env.run(env.process(fsck(f)))
    assert rep.clean
    assert rep.resilience == {}
