"""Regenerate the committed container fixtures (pure codec, no engine).

Run from the repo root::

    PYTHONPATH=src python tests/container/make_fixtures.py

Produces ``tests/container/fixtures/good.cnt`` (a valid two-section
container) and ``corrupt.cnt`` (the same bytes with one payload byte
flipped). CI feeds both to ``python -m repro.container.verify`` and
asserts exit 0 / nonzero respectively. The builder is deterministic, so
regenerating never churns the committed binaries.
"""

from pathlib import Path

from repro.container.codec import (
    array_section,
    block_section,
    encode_file_header,
    encode_section_header,
    pad_bytes,
    plan_layout,
    section_crc,
)

FIXTURES = Path(__file__).parent / "fixtures"


def build_good() -> bytes:
    decls = [
        block_section("notes", 45),
        array_section("table", 100, 8),
    ]
    payloads = {
        "notes": b"fixture container for the verify CLI\n".ljust(45),
        "table": bytes((i * 7 + 3) % 256 for i in range(800)),
    }
    layout = plan_layout(decls)
    out = bytearray(encode_file_header("verify-cli fixture", len(decls)))
    for ext in layout.sections:
        payload = payloads[ext.decl.section_id]
        assert len(payload) == ext.payload_len
        crc = section_crc(payload, ext.decl.count, ext.decl.elem_size)
        out += encode_section_header(ext.decl, crc)
        out += payload
        out += pad_bytes(ext.payload_len)
    assert len(out) == layout.total_bytes
    return bytes(out)


def build_corrupt(good: bytes) -> bytes:
    # flip one byte inside the "table" payload
    buf = bytearray(good)
    buf[-200] ^= 0xFF
    return bytes(buf)


def main() -> None:
    FIXTURES.mkdir(exist_ok=True)
    good = build_good()
    (FIXTURES / "good.cnt").write_bytes(good)
    (FIXTURES / "corrupt.cnt").write_bytes(build_corrupt(good))
    print(f"wrote {FIXTURES}/good.cnt ({len(good)} bytes) and corrupt.cnt")


if __name__ == "__main__":
    main()
