"""Unit tests for the pure container codecs — no engine, just bytes."""

import pytest

from repro.container import (
    ChecksumError,
    ContainerFormatError,
    SectionDecl,
    array_section,
    block_section,
    inline_section,
    plan_layout,
)
from repro.container.codec import (
    ATTRS_PAYLOAD_BYTES,
    FILE_HEADER_BYTES,
    INLINE_BYTES,
    PAYLOAD_ALIGN,
    SECTION_HEADER_BYTES,
    decode_attrs_payload,
    decode_file_header,
    decode_section_header,
    encode_attrs_payload,
    encode_file_header,
    encode_section_header,
    pad_bytes,
    pad_len,
    padded_payload_len,
    section_crc,
)

# -- padding ------------------------------------------------------------------


def test_pad_is_always_at_least_two_and_aligns_to_32():
    for length in range(0, 200):
        k = pad_len(length)
        assert 2 <= k <= PAYLOAD_ALIGN + 1
        assert (length + k) % PAYLOAD_ALIGN == 0
        assert padded_payload_len(length) == length + k


def test_pad_bytes_are_spaces_then_newline():
    for length in (0, 1, 30, 31, 32, 33, 100):
        pad = pad_bytes(length)
        assert len(pad) == pad_len(length)
        assert pad == b" " * (len(pad) - 1) + b"\n"


def test_exact_alignment_still_pads():
    # a 32-aligned payload takes a full extra pad block (k < 2 rule)
    assert pad_len(32) == 32
    assert pad_len(31) == 33  # k=1 bumps to 33


# -- file header --------------------------------------------------------------


def test_file_header_round_trip():
    buf = encode_file_header("hello container", 42)
    assert len(buf) == FILE_HEADER_BYTES
    hdr = decode_file_header(buf)
    assert hdr.user_string == "hello container"
    assert hdr.section_count == 42
    assert hdr.version == "01.00"


def test_file_header_rejects_bad_magic_and_crc():
    buf = bytearray(encode_file_header("x", 1))
    with pytest.raises(ContainerFormatError):
        decode_file_header(b"not a container" + bytes(buf)[15:])
    buf[30] ^= 0xFF  # flip a user-string byte: crc must catch it
    with pytest.raises(ChecksumError):
        decode_file_header(bytes(buf))


def test_file_header_rejects_truncation_and_long_user_string():
    with pytest.raises(ContainerFormatError):
        decode_file_header(encode_file_header("x", 1)[:100])
    with pytest.raises(ValueError):
        encode_file_header("y" * 64, 1)


# -- section declarations and headers ----------------------------------------


def test_section_decl_validation():
    with pytest.raises(ValueError):
        SectionDecl("X", "id", 1, 1)
    with pytest.raises(ValueError):
        SectionDecl("B", "", 1, 1)
    with pytest.raises(ValueError):
        SectionDecl("B", "x" * 32, 1, 1)  # 31-byte id limit
    with pytest.raises(ValueError):
        SectionDecl("I", "id", 2, INLINE_BYTES)  # inline is exactly 1x32
    with pytest.raises(ValueError):
        SectionDecl("B", "id", 4, 8)  # blocks have 1-byte elements
    with pytest.raises(ValueError):
        SectionDecl("A", "id", -1, 4)


def test_section_header_round_trip():
    for decl in (
        inline_section("meta"),
        block_section("blob", 1234),
        array_section("grid/x", 1000, 8),
    ):
        payload = b"p" * decl.payload_len
        crc = section_crc(payload, decl.count, decl.elem_size)
        buf = encode_section_header(decl, crc)
        assert len(buf) == SECTION_HEADER_BYTES
        hdr = decode_section_header(buf)
        assert hdr.decl == decl
        assert hdr.crc == crc


def test_section_crc_covers_shape_fields():
    # same payload, different declared count -> different checksum
    payload = b"\x00" * 64
    assert section_crc(payload, 64, 1) != section_crc(payload, 8, 8)


def test_section_header_rejects_damage():
    buf = bytearray(encode_section_header(block_section("b", 8), 0))
    buf[0] = ord("Q")
    with pytest.raises(ContainerFormatError):
        decode_section_header(bytes(buf))
    buf2 = bytearray(encode_section_header(block_section("b", 8), 0))
    buf2[40] = ord("z")  # non-digit in the count field
    with pytest.raises(ContainerFormatError):
        decode_section_header(bytes(buf2))


# -- layout planning ----------------------------------------------------------


def test_plan_layout_is_deterministic_and_contiguous():
    decls = [
        inline_section("a"),
        array_section("b", 100, 4),
        block_section("c", 7),
    ]
    layout = plan_layout(decls)
    off = FILE_HEADER_BYTES
    for ext, decl in zip(layout.sections, decls):
        assert ext.header_off == off
        assert ext.payload_off == off + SECTION_HEADER_BYTES
        assert ext.payload_len == decl.payload_len
        assert ext.end == ext.pad_off + ext.pad_len
        assert (ext.end - ext.payload_off) % PAYLOAD_ALIGN == 0
        off = ext.end
    assert layout.total_bytes == off
    assert layout.find("b").decl == decls[1]
    with pytest.raises(KeyError):
        layout.find("nope")


def test_plan_layout_rejects_duplicate_ids():
    with pytest.raises(ValueError):
        plan_layout([block_section("x", 1), block_section("x", 2)])


def test_empty_plan_is_just_the_file_header():
    assert plan_layout([]).total_bytes == FILE_HEADER_BYTES


# -- the self-description payload ---------------------------------------------


def test_attrs_payload_round_trip_and_canonical_form():
    d = {"organization": "PS", "n_records": 100, "layout_params": {"k": 2}}
    payload = encode_attrs_payload(d)
    assert len(payload) == ATTRS_PAYLOAD_BYTES
    assert decode_attrs_payload(payload) == d
    # canonical: key order in the input does not change the bytes
    d2 = {"layout_params": {"k": 2}, "n_records": 100, "organization": "PS"}
    assert encode_attrs_payload(d2) == payload


def test_attrs_payload_rejects_oversize_and_garbage():
    with pytest.raises(ValueError):
        encode_attrs_payload({"x": "y" * ATTRS_PAYLOAD_BYTES})
    with pytest.raises(ContainerFormatError):
        decode_attrs_payload(b"\xff" * 16)
