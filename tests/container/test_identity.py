"""The acceptance matrix: N-writer media identity, M-reader equality.

For every organization, the container written by N processes must be
sha256-identical *on media* to the serially written container, and
readable by any M — the paper's "standard file" property, checked at
the byte level. A corruption case closes the loop: flipping one payload
byte must surface as exactly one checksum finding attributing the right
section.
"""

import numpy as np
import pytest

from repro.container import ContainerReader, array_section, inline_section
from repro.container import scan_container

from .conftest import ORGS, build_pfs, media_sha, write_container
from repro.sim import Environment

NM = [1, 2, 4, 8]
RNG = np.random.default_rng(1989)
ARR = RNG.integers(0, 256, size=8192, dtype=np.uint8)
SECTIONS = [
    inline_section("meta"),
    array_section("payload", 2048, 4),
]
PAYLOADS = {"meta": b"identity", "payload": ARR}


def build_container(org, writers, mode="collective"):
    env = Environment()
    pfs = build_pfs(env)
    f = write_container(
        env, pfs, "c", SECTIONS, PAYLOADS, org=org, writers=writers,
        layout_processes=4, mode=mode,
    )
    return env, pfs, f


@pytest.mark.parametrize("org", ORGS)
def test_n_writer_media_identity(org):
    """Any N in {1,2,4,8} leaves the serial writer's exact bytes."""
    shas = {media_sha(build_container(org, n)[2]) for n in NM}
    assert len(shas) == 1


@pytest.mark.parametrize("org", ORGS)
def test_m_reader_equality(org):
    """Any M reads back the full payload the N writers stored."""
    env, pfs, _ = build_container(org, 4)

    def read(m):
        def driver():
            r = yield from ContainerReader.open(pfs, "c", readers=m)
            return (yield from r.read_array("payload"))

        return env.run(env.process(driver()))

    assert {read(m) for m in NM} == {ARR.tobytes()}


def test_write_modes_are_media_identical():
    shas = {
        media_sha(build_container("IS", 4, mode=mode)[2])
        for mode in ("collective", "view", "serial")
    }
    assert len(shas) == 1


@pytest.mark.parametrize("org", ORGS)
def test_single_flipped_payload_byte_is_attributed(org):
    """One flipped media byte -> exactly one finding, right section."""
    env, pfs, f = build_container(org, 4)
    clean = scan_container(f)
    assert clean.clean
    ext = next(e for e in clean.sections if e.decl.section_id == "payload")
    target = ext.payload_off + 1234
    row = f.volume.peek(f.entry.extent, f.layout, target, 1)
    flipped = np.array([[row.ravel()[0] ^ 0x5A]], dtype=np.uint8)
    f.volume.poke(f.entry.extent, f.layout, target, flipped)
    rep = scan_container(f)
    assert [x.kind for x in rep.findings] == ["section-checksum"]
    assert rep.findings[0].section == "payload"
    assert "payload" not in rep.verified
    assert set(rep.verified) == {"repro/attrs", "meta"}
