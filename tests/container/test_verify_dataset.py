"""fsck coverage for the dataset self-description section: the four
``dataset-*`` finding kinds and their interaction with checksum checks."""

import numpy as np
import pytest

from repro.container.codec import (
    block_section,
    encode_file_header,
    encode_section_header,
    pad_bytes,
    plan_layout,
    section_crc,
)
from repro.container.verify import (
    KIND_DATASET_MISSING,
    KIND_DATASET_ORPHAN,
    KIND_DATASET_SCHEMA,
    KIND_DATASET_SHAPE,
    KIND_SECTION_CHECKSUM,
    scan_bytes,
)
from repro.dataset import DatasetSchema, LiveDataset
from repro.live import LiveParallelFileSystem


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


@pytest.fixture
def schema():
    return DatasetSchema.build({"x": 8}, {"v": ("<i4", ("x",))})


def dataset_bytes(lfs, schema, **kw):
    with LiveDataset.create(lfs, "ds", schema, **kw) as lds:
        path = lds.file.path
    return bytearray(path.read_bytes())


def raw_container(sections):
    """Assemble container bytes from (section_id, payload) pairs."""
    decls = [block_section(sid, len(p)) for sid, p in sections]
    layout = plan_layout(decls)
    buf = bytearray(layout.total_bytes)
    buf[:128] = encode_file_header("test", len(decls))
    for ext, (sid, payload) in zip(layout.sections, sections):
        crc = section_crc(payload, ext.decl.count, ext.decl.elem_size)
        buf[ext.header_off:ext.payload_off] = encode_section_header(
            ext.decl, crc
        )
        buf[ext.payload_off:ext.pad_off] = payload
        buf[ext.pad_off:ext.end] = pad_bytes(ext.payload_len)
    return bytes(buf)


def kinds(report):
    return sorted({f.kind for f in report.findings})


class TestCleanDataset:
    def test_live_dataset_scans_clean(self, lfs, schema):
        buf = dataset_bytes(
            lfs, schema, data={"v": np.arange(8, dtype="<i4")}
        )
        report = scan_bytes(bytes(buf))
        assert report.clean, [str(f) for f in report.findings]

    def test_non_dataset_container_unaffected(self):
        report = scan_bytes(raw_container([("blob", b"x" * 40)]))
        assert report.clean


class TestShapeMismatch:
    def test_tampered_var_count_is_flagged(self, lfs, schema):
        buf = dataset_bytes(lfs, schema)
        # find the var/v section header and corrupt its count field
        off = bytes(buf).find(b"var/v")
        assert off > 0
        hdr_off = off - 2  # 'A ' kind prefix precedes the id
        # count field: kind(1) + sp(1) + id(32) = 34 bytes into the header
        count_off = hdr_off + 34
        buf[count_off:count_off + 12] = b"%12d" % 7
        report = scan_bytes(bytes(buf))
        found = kinds(report)
        assert KIND_DATASET_SHAPE in found
        assert KIND_SECTION_CHECKSUM in found  # count feeds the crc too
        shape = [f for f in report.findings if f.kind == KIND_DATASET_SHAPE]
        assert "holds 7 x 4" in shape[0].detail
        assert shape[0].section == "var/v"


class TestMissingAndOrphan:
    def test_missing_variable_section(self, schema):
        report = scan_bytes(
            raw_container([("repro/dataset", schema.to_json().encode())])
        )
        missing = [f for f in report.findings
                   if f.kind == KIND_DATASET_MISSING]
        assert [f.section for f in missing] == ["var/v"]

    def test_orphan_with_schema(self, schema):
        report = scan_bytes(raw_container([
            ("repro/dataset", schema.to_json().encode()),
            ("var/v", b"\x00" * 32),   # declared: fine (block kind differs
                                       # from array, so shape flags it)
            ("var/ghost", b"\x00" * 8),
        ]))
        orphans = [f for f in report.findings
                   if f.kind == KIND_DATASET_ORPHAN]
        assert [f.section for f in orphans] == ["var/ghost"]

    def test_orphan_without_schema(self):
        report = scan_bytes(raw_container([("var/stray", b"\x00" * 8)]))
        orphans = [f for f in report.findings
                   if f.kind == KIND_DATASET_ORPHAN]
        assert [f.section for f in orphans] == ["var/stray"]
        assert "no 'repro/dataset'" in orphans[0].detail


class TestBadSchema:
    def test_valid_crc_invalid_json_is_bad_schema(self):
        report = scan_bytes(
            raw_container([("repro/dataset", b"{definitely not json")])
        )
        assert kinds(report) == [KIND_DATASET_SCHEMA]

    def test_corrupt_payload_is_checksum_not_schema(self, lfs, schema):
        buf = dataset_bytes(lfs, schema)
        off = bytes(buf).find(b'{"attrs"')  # schema payload start
        assert off > 0
        buf[off] = ord("!")
        report = scan_bytes(bytes(buf))
        found = kinds(report)
        assert KIND_SECTION_CHECKSUM in found
        assert KIND_DATASET_SCHEMA not in found

    def test_to_sanitize_findings_carries_dataset_kinds(self, schema):
        report = scan_bytes(
            raw_container([("repro/dataset", schema.to_json().encode())])
        )
        rows = report.to_sanitize_findings()
        assert any(KIND_DATASET_MISSING in str(r) for r in rows)
