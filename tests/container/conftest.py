"""Shared fixtures and helpers for container tests."""

import hashlib

import numpy as np
import pytest

from repro.container import ContainerWriter
from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.fs import ParallelFileSystem
from repro.sim import Environment
from repro.storage import Volume

ORGS = ["S", "PS", "IS", "SS", "GDA", "PDA"]
STATIC_ORGS = ["S", "PS", "IS", "PDA"]


def build_pfs(env, n_devices=4, cylinders=256, **fs_kwargs):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=cylinders)
    devices = [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"d{i}")
        for i in range(n_devices)
    ]
    volume = Volume(env, devices)
    return ParallelFileSystem(env, volume, **fs_kwargs)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


def media_bytes(f):
    """The container's raw on-media bytes (zero-time peek)."""
    rows = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
    return np.ascontiguousarray(rows, dtype=np.uint8).tobytes()


def media_sha(f):
    return hashlib.sha256(media_bytes(f)).hexdigest()


def write_container(env, pfs, name, sections, payloads, *, org="PS",
                    writers=1, layout_processes=4, mode="collective", **kw):
    """Drive one full container write; returns the ParallelFile.

    ``payloads`` maps section id to its bytes/array; kind is taken from
    the matching declaration.
    """

    def driver():
        w = ContainerWriter.create(
            pfs, name, sections, org=org, writers=writers,
            layout_processes=layout_processes, **kw,
        )
        yield from w.begin()
        for decl in sections:
            data = payloads[decl.section_id]
            if decl.kind == "I":
                yield from w.write_inline(decl.section_id, data)
            elif decl.kind == "B":
                yield from w.write_block(decl.section_id, data)
            else:
                yield from w.write_array(decl.section_id, data, mode=mode)
        assert w.done
        return w.file

    return env.run(env.process(driver()))
