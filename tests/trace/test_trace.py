"""Unit tests for tracing, reporting, and figure rendering."""

import pytest

from repro.trace import (
    RunReport,
    TraceRecorder,
    render_block_map,
    render_figure1_panel,
    render_timeline,
    throughput_mb_s,
)


class TestRecorder:
    def test_record_and_filter(self):
        rec = TraceRecorder()
        rec.record(0.0, 0, "read", "f", 0, 4, 64)
        rec.record(1.0, 1, "write", "g", 2, 4, 64)
        assert len(rec) == 2
        assert len(rec.for_file("f")) == 1
        assert rec.total_bytes() == 128
        assert rec.total_bytes("read") == 64

    def test_blocks_by_process(self):
        rec = TraceRecorder()
        rec.record(0.0, 0, "read", "f", 0, 1, 8)
        rec.record(0.1, 1, "read", "f", 1, 1, 8)
        rec.record(0.2, 0, "read", "f", 3, 1, 8)
        rec.record(0.3, 0, "read", "g", 9, 1, 8)
        assert rec.blocks_by_process("f") == {0: [0, 3], 1: [1]}
        assert rec.blocks_by_process() == {0: [0, 3, 9], 1: [1]}

    def test_clear(self):
        rec = TraceRecorder()
        rec.record(0.0, 0, "read", "f", 0, 1, 8)
        rec.clear()
        assert len(rec) == 0


class TestFigures:
    def test_block_map_labels(self):
        art = render_block_map([0, 1, 2, 0])
        assert "P1" in art and "P2" in art and "P3" in art
        assert art.count("|") > 0

    def test_block_map_unowned(self):
        art = render_block_map([None, 0])
        assert "--" in art

    def test_panel_from_trace_shape(self):
        # the IS panel of Figure 1: 6 blocks, 3 processes, round robin
        panel = render_figure1_panel(
            "c", "Interleaved.", {0: [0, 3], 1: [1, 4], 2: [2, 5]}, 6
        )
        lines = panel.splitlines()
        assert lines[0].startswith("(c)")
        assert "P1" in panel and "P3" in panel
        # row order: P1 P2 P3 P1 P2 P3
        row = [c.strip() for c in lines[2].strip("|").split("|")]
        assert row == ["P1", "P2", "P3", "P1", "P2", "P3"]

    def test_timeline(self):
        s = render_timeline([(0, 2), (1, 0)])
        assert "b0:P3" in s and "b1:P1" in s


class TestReport:
    def test_throughput(self):
        assert throughput_mb_s(2_000_000, 2.0) == pytest.approx(1.0)
        assert throughput_mb_s(0, 0) == 0.0
        assert throughput_mb_s(5, 0) == float("inf")

    def test_run_report_row(self):
        r = RunReport("test", elapsed=0.5, nbytes=1_000_000)
        assert r.throughput == pytest.approx(2.0)
        assert "test" in r.row() and "MB/s" in r.row()

    def test_device_report_smoke(self):
        from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
        from repro.sim import Environment
        from repro.trace import device_report

        env = Environment()
        dev = DeviceController(
            env, DiskModel(DiskGeometry(cylinders=8), WREN_1989), name="d0"
        )

        def proc():
            yield dev.read(0, 512)

        env.run(env.process(proc()))
        rows = device_report(env, [dev])
        assert len(rows) == 1 and "d0" in rows[0]
