"""Unit tests for device activity Gantt rendering."""

import numpy as np
import pytest

from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.sim import Environment
from repro.storage import StripedLayout, Volume
from repro.trace import render_device_gantt, render_gantt


class TestRenderGantt:
    def test_empty(self):
        assert render_gantt({}) == "(no activity)"
        assert render_gantt({"d0": []}) == "(no activity)"

    def test_single_lane_full_width(self):
        out = render_gantt({"d0": [(0.0, 1.0)]}, width=20)
        line = out.splitlines()[0]
        assert line.startswith("d0 |")
        assert line.count("#") == 20

    def test_half_busy(self):
        out = render_gantt({"d0": [(0.0, 0.5)]}, t0=0.0, t1=1.0, width=20)
        line = out.splitlines()[0]
        assert line.count("#") == 10
        assert line.count(".") == 10

    def test_two_lanes_aligned(self):
        out = render_gantt(
            {"a": [(0.0, 0.5)], "b": [(0.5, 1.0)]}, width=20
        )
        a, b = out.splitlines()[:2]
        # a busy first half, b busy second half
        assert a.index("#") < b.index("#")

    def test_axis_labels_present(self):
        out = render_gantt({"d": [(0.0, 2.0)]}, width=30)
        assert "ms" in out.splitlines()[-1]

    def test_zero_length_interval_still_visible(self):
        out = render_gantt({"d": [(1.0, 1.0)]}, t0=0.0, t1=2.0, width=20)
        assert "#" in out  # minimum one cell


class TestDeviceGantt:
    def test_requires_service_log(self):
        env = Environment()
        dev = DeviceController(
            env, DiskModel(DiskGeometry(cylinders=8), WREN_1989), name="d0"
        )
        with pytest.raises(ValueError, match="keep_service_log"):
            render_device_gantt([dev])

    def test_striped_write_lights_all_lanes(self):
        """The E1 visual: a striped transfer is busy on every device."""
        env = Environment()
        geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
        devices = [
            DeviceController(
                env, DiskModel(geo, WREN_1989), name=f"d{i}",
                keep_service_log=True,
            )
            for i in range(3)
        ]
        vol = Volume(env, devices)
        lay = StripedLayout(3, 512)
        ext = vol.allocate(lay, 3 * 512)

        def proc():
            yield vol.write(ext, lay, 0, np.zeros(3 * 512, dtype=np.uint8))

        env.run(env.process(proc()))
        out = render_device_gantt(devices, width=24)
        lanes = out.splitlines()[:3]
        assert all("#" in lane for lane in lanes)
        # parallel service: all three intervals overlap in time
        starts = [d.service_log[0].start for d in devices]
        ends = [d.service_log[0].end for d in devices]
        assert max(starts) < min(ends)
