"""Suite-wide pytest plumbing: the engine sanitizer harness.

Run the whole suite under the engine invariant sanitizer with::

    PYTHONPATH=src python -m pytest -q --sanitize

(or set ``REPRO_SANITIZE=1``). Every :class:`~repro.sim.Environment`
constructed during the run gets an attached collecting
:class:`~repro.sanitize.EngineSanitizer`; a test fails if any engine
invariant (resource grants, store/container wakeups, buffer-pool bounds,
event lifecycle) was violated while it ran.

Environments that already carry a sanitizer (``Environment(strict=True)``
or an explicit ``sanitize.attach``) are left to the owning test — they
may be seeding violations on purpose.
"""

import os

import pytest

_SANITIZERS: list = []
_ORIG_INIT = None


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="attach the engine invariant sanitizer to every Environment "
        "and fail tests on violations",
    )


def _enabled(config) -> bool:
    return bool(
        config.getoption("--sanitize", default=False)
        or os.environ.get("REPRO_SANITIZE") == "1"
    )


def pytest_sessionstart(session):
    if not _enabled(session.config):
        return
    global _ORIG_INIT
    from repro.sanitize import attach
    from repro.sim.engine import Environment

    _ORIG_INIT = Environment.__init__

    def patched_init(self, *args, **kwargs):
        _ORIG_INIT(self, *args, **kwargs)
        if self._sanitizer is None:
            _SANITIZERS.append(attach(self))

    Environment.__init__ = patched_init


def pytest_sessionfinish(session):
    global _ORIG_INIT
    if _ORIG_INIT is not None:
        from repro.sim.engine import Environment

        Environment.__init__ = _ORIG_INIT
        _ORIG_INIT = None


def pytest_runtest_teardown(item):
    if _ORIG_INIT is None:
        return
    violations = [v for s in _SANITIZERS for v in s.violations]
    _SANITIZERS.clear()
    if violations:
        rows = "\n".join(v.row() for v in violations)
        pytest.fail(
            f"{len(violations)} engine sanitizer violation(s):\n{rows}",
            pytrace=False,
        )
