"""Unit tests for extent-batched submission planning (list I/O).

``plan_batch`` is the core of batched submission: group per-unit
segments by device and merge device-contiguous runs, returning a
scatter map that reassembles payloads in original file order. These
tests pin its merging rules and the gather/scatter round trip, plus the
batched dirty-set write-back in :class:`~repro.buffering.cache.BufferCache`.
"""

import numpy as np
import pytest

from repro.buffering import BufferCache
from repro.sim import Environment
from repro.storage.layout import (
    Segment,
    StripedLayout,
    gather_payload,
    plan_batch,
    scatter_payload,
)


def test_plan_batch_merges_striped_runs():
    # 4 devices, 8-byte stripe unit: bytes [0, 64) make two full cycles.
    # Consecutive stripe units hit different devices (never list-adjacent),
    # but each device's two units ARE device-contiguous — the case plain
    # adjacent-merge coalescing can never catch.
    layout = StripedLayout(4, 8)
    segments = layout.map_range(0, 64)
    assert len(segments) == 8
    merged, scatter = plan_batch(segments)
    assert len(merged) == 4
    assert [m.device for m in merged] == [0, 1, 2, 3]
    assert all(m.length == 16 for m in merged)
    # scatter holds (file_pos, length) pieces per merged run
    assert scatter[0] == [(0, 8), (32, 8)]
    assert scatter[1] == [(8, 8), (40, 8)]


def test_plan_batch_keeps_discontiguous_runs_apart():
    segs = [
        Segment(0, 0, 8),
        Segment(0, 16, 8),  # gap on device 0: no merge
        Segment(1, 0, 8),
    ]
    merged, scatter = plan_batch(segs)
    assert merged == segs
    assert scatter == [[(0, 8)], [(8, 8)], [(16, 8)]]


def test_plan_batch_scatter_round_trip():
    layout = StripedLayout(3, 4)
    total = 60
    segments = layout.map_range(5, total)
    merged, scatter = plan_batch(segments)
    src = np.arange(total, dtype=np.uint8)
    out = np.empty(total, dtype=np.uint8)
    for m, pieces in zip(merged, scatter):
        # what the device would return for this merged run
        payload = gather_payload(src, pieces)
        assert payload.size == m.length
        scatter_payload(out, payload, pieces)
    np.testing.assert_array_equal(out, src)


def test_plan_batch_preserves_total_length():
    layout = StripedLayout(4, 8)
    segments = layout.map_range(3, 101)
    merged, scatter = plan_batch(segments)
    assert sum(m.length for m in merged) == 101
    assert sum(ln for pieces in scatter for _, ln in pieces) == 101


def test_cache_flush_uses_batched_writeback_once():
    env = Environment()
    fetched, written, batched = [], [], []

    def fetch(block):
        fetched.append(block)
        return env.timeout(0, np.zeros(4, dtype=np.uint8))

    def writeback(block, data):
        written.append(block)
        return env.timeout(0)

    cache = BufferCache(env, fetch, writeback, capacity_blocks=8)

    def writeback_many(blocks, datas):
        batched.append((list(blocks), [d.copy() for d in datas]))
        return env.timeout(0)

    cache.writeback_many = writeback_many

    def prog():
        for b in (3, 1, 2):
            yield from cache.write(b, np.full(4, b, dtype=np.uint8))
        yield from cache.flush()

    env.run(env.process(prog()))
    # one batched submission for the whole dirty set, sorted; the
    # per-block writeback path never ran
    assert len(batched) == 1
    blocks, datas = batched[0]
    assert blocks == [1, 2, 3]
    assert [int(d[0]) for d in datas] == [1, 2, 3]
    assert written == []
    assert cache.writebacks == 3
    # dirty set drained: a second flush is a no-op
    env.run(env.process(cache.flush()))
    assert len(batched) == 1


def test_cache_flush_falls_back_per_block_without_batch_hook():
    env = Environment()
    written = []
    cache = BufferCache(
        env,
        fetch=lambda b: env.timeout(0, np.zeros(2, dtype=np.uint8)),
        writeback=lambda b, d: (written.append(b), env.timeout(0))[1],
        capacity_blocks=4,
    )

    def prog():
        yield from cache.write(7, np.ones(2, dtype=np.uint8))
        yield from cache.flush()

    env.run(env.process(prog()))
    assert written == [7]


@pytest.mark.parametrize("org", ["IS", "PDA"])
def test_batched_submission_is_result_identical(org):
    """End to end: batch_io changes timing, never the stored bytes."""
    from repro import build_parallel_fs
    from repro.perf import WorkloadConfig, run_org

    cfg = WorkloadConfig(n_records=96)
    media = {}
    for batch in (False, True):
        env = Environment()
        pfs = build_parallel_fs(env, 4, batch_io=batch)
        f = run_org(env, pfs, org, cfg)
        env.run()
        raw = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
        media[batch] = np.ascontiguousarray(raw).tobytes()
    assert media[False] == media[True]
