"""Scaling guards for the dispatch-path O(n) fixes.

Two hot paths used to do linear scans per operation and went quadratic
under load: :meth:`WeightedFairQueue.dispatch` (a full-backlog walk to
maintain bypass counts) and :meth:`Resource.release` of a still-waiting
request (an O(n) remove from the wait list). Both are now amortized
O(log n) or O(1). These guards re-run each path at two backlog sizes and
fail if per-operation cost grows anywhere near linearly with backlog —
i.e. if total cost has gone quadratic again.

The bounds are deliberately loose (quadratic regressions blow through
them by an order of magnitude; host noise does not). Each measurement is
a min-of-3 to reject scheduler hiccups.
"""

import time

from repro.qos.scheduler import WeightedFairQueue
from repro.qos.tenant import QoSClass, Tenant
from repro.sim import Environment
from repro.sim.resources import Resource


def _min_of(runs, fn):
    best = None
    for _ in range(runs):
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = dt if best is None else min(best, dt)
    return best


def _wfq_dispatch_cost(backlog: int, dispatches: int) -> float:
    tenant = Tenant(Environment(), QoSClass("t"))

    def run():
        q = WeightedFairQueue()
        tags = [q.tag(tenant, cost=64.0) for _ in range(backlog + dispatches)]
        # serve the newest first so a large backlog stays resident while
        # every dispatch maintains the oldest waiter's bypass count
        for tag in reversed(tags[backlog:]):
            q.dispatch(tag)

    return _min_of(3, run) / dispatches


def test_wfq_dispatch_scales_with_backlog():
    small = _wfq_dispatch_cost(backlog=16, dispatches=2048)
    large = _wfq_dispatch_cost(backlog=4096, dispatches=2048)
    # O(backlog) per dispatch would make this ratio ~256
    assert large < small * 32, (
        f"WFQ dispatch went superlinear: {small * 1e6:.2f}us/op at backlog 16 "
        f"vs {large * 1e6:.2f}us/op at backlog 4096"
    )


def _cancel_cost(waiters: int) -> float:
    def run():
        env = Environment()
        res = Resource(env, capacity=1)
        held = res.request()
        env.run()
        reqs = [res.request() for _ in range(waiters)]
        for r in reqs:
            res.release(r)  # still waiting: a cancel
        res.release(held)
        env.run()
        assert res.queue_length == 0

    return _min_of(3, run) / waiters


def test_resource_cancel_scales_with_waiters():
    small = _cancel_cost(256)
    large = _cancel_cost(4096)
    # O(waiters) per cancel would make this ratio ~16
    assert large < small * 8, (
        f"Resource cancel went superlinear: {small * 1e6:.2f}us/op with 256 "
        f"waiters vs {large * 1e6:.2f}us/op with 4096"
    )
