"""Golden event-trace digests: the fast paths must not move the simulation.

For every organization, on both stacks (bare, full), under both
submission modes (per-block, extent-batched), the outcome digest —
final clock, event/step counters, device statistics, media bytes — must
be identical between the legacy hooked engine loop (``fast=False``) and
the fast loop, **and** equal to the golden value committed in
``tests/baselines/engine_digests.json``.

The golden file pins the simulation across refactors: any change to
event ordering, device timing, or stored bytes shows up as a digest
mismatch here before it can silently shift benchmark results. Batched
digests legitimately differ from per-block ones (batching changes
request sizes, hence timing) — each (stack, submission) cell has its own
golden value.

The same golden values also pin the future-event-set flavours: a forced
calendar queue (``Environment(queue="calendar")``) must produce the
identical digest as the default heap in every cell — the queue swap is
order-transparent by contract.

This test also runs under ``--sanitize``: the suite-wide sanitizer hook
forces every environment onto the hooked loop, and because the sanitizer
only observes, the digests must still match the golden values.

Regenerate after an intentional timing change::

    PYTHONPATH=src python tests/perf/test_determinism.py --regen
"""

import json
from pathlib import Path

import pytest

from repro import build_parallel_fs
from repro.perf import ORGS, WorkloadConfig, digest, run_org
from repro.qos import QoSConfig
from repro.resilience import ResilienceConfig
from repro.sim import Environment
from repro.trace import NullTraceRecorder, TraceRecorder

GOLDEN = Path(__file__).parent.parent / "baselines" / "engine_digests.json"

N_DEVICES = 4
IO_NODES = 2
STACKS = ("bare", "full")
SUBMISSIONS = ("per_block", "batched")


def _config() -> WorkloadConfig:
    return WorkloadConfig(n_records=480)


def _build(stack: str, batched: bool, fast: bool, queue: str = "auto"):
    env = Environment(fast=None if fast else False, queue=queue)
    recorder = NullTraceRecorder() if fast else TraceRecorder()
    kw = {}
    if stack == "full":
        kw = dict(
            io_nodes=IO_NODES,
            resilience=ResilienceConfig(protection="parity", spares=1),
            qos=QoSConfig(),
        )
    pfs = build_parallel_fs(
        env, N_DEVICES, recorder=recorder, batch_io=batched, **kw
    )
    return env, pfs


def _digest(
    stack: str, submission: str, org: str, fast: bool, queue: str = "auto"
) -> str:
    env, pfs = _build(stack, submission == "batched", fast, queue)
    f = run_org(env, pfs, org, _config())
    env.run()
    return digest(env, pfs, [f])


def _compute_all() -> dict:
    out = {}
    for stack in STACKS:
        for submission in SUBMISSIONS:
            cell = out.setdefault(f"{stack}/{submission}", {})
            for org in ORGS:
                cell[org] = _digest(stack, submission, org, fast=True)
    return out


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN.exists(), (
        f"missing golden digests {GOLDEN}; regenerate with "
        f"PYTHONPATH=src python {__file__} --regen"
    )
    return json.loads(GOLDEN.read_text())


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("submission", SUBMISSIONS)
@pytest.mark.parametrize("org", ORGS)
def test_digest_matches_golden_both_engines(golden, stack, submission, org):
    want = golden[f"{stack}/{submission}"][org]
    got_fast = _digest(stack, submission, org, fast=True)
    got_normal = _digest(stack, submission, org, fast=False)
    assert got_fast == got_normal, (
        f"fast and hooked loops diverged: {stack}/{submission} {org}"
    )
    assert got_fast == want, (
        f"simulation outcome changed vs golden: {stack}/{submission} {org} "
        f"(regenerate the baseline only for an intentional timing change)"
    )


@pytest.mark.parametrize("stack", STACKS)
@pytest.mark.parametrize("submission", SUBMISSIONS)
@pytest.mark.parametrize("org", ORGS)
def test_digest_matches_golden_calendar_queue(golden, stack, submission, org):
    """The forced calendar queue must not move the simulation either.

    ``queue="calendar"`` promotes the future-event set to the bucket
    ring as soon as the entry distribution allows; the golden digests
    pin that the swap is order-transparent — identical final clock,
    event counters, device statistics, and media bytes as the heap.
    """
    want = golden[f"{stack}/{submission}"][org]
    got = _digest(stack, submission, org, fast=True, queue="calendar")
    assert got == want, (
        f"calendar queue moved the simulation: {stack}/{submission} {org}"
    )


def test_golden_covers_every_cell(golden):
    assert set(golden) == {f"{s}/{m}" for s in STACKS for m in SUBMISSIONS}
    for cell in golden.values():
        assert set(cell) == set(ORGS)


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        raise SystemExit(f"usage: python {sys.argv[0]} --regen")
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(json.dumps(_compute_all(), indent=2) + "\n")
    print(f"wrote {GOLDEN}")
