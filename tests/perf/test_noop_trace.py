"""The benchmark/CI trace default: NullTraceRecorder costs nothing.

Fast-mode perf runs use :class:`~repro.trace.NullTraceRecorder`, and the
fs layer's ``_tracing`` flag must short-circuit the per-block trace work
before any :class:`~repro.trace.AccessEvent` is allocated or any
``record`` call is made. A collecting recorder (or a conflict sanitizer)
re-enables tracing.
"""

import pytest

from repro import build_parallel_fs
from repro.perf import ORGS, WorkloadConfig, run_org
from repro.sim import Environment
import repro.trace.events as trace_events
from repro.trace import NullTraceRecorder, TraceRecorder


def test_noop_recorder_disables_tracing_flag():
    env = Environment()
    pfs = build_parallel_fs(env, 2, recorder=NullTraceRecorder())
    assert not pfs._tracing
    pfs.recorder = TraceRecorder()
    assert pfs._tracing


def test_fast_mode_run_makes_zero_trace_allocations(monkeypatch):
    calls = []

    def counting_record(self, *args, **kwargs):
        calls.append(args)

    monkeypatch.setattr(TraceRecorder, "record", counting_record)
    monkeypatch.setattr(NullTraceRecorder, "record", counting_record)

    def counting_ctor(*args, **kwargs):
        calls.append(("alloc",))

    # the only construction site is TraceRecorder.record's module global
    monkeypatch.setattr(trace_events, "AccessEvent", counting_ctor)

    recorder = NullTraceRecorder()
    env = Environment()
    pfs = build_parallel_fs(env, 4, recorder=recorder)
    cfg = WorkloadConfig(n_records=96)
    for org in ORGS:
        run_org(env, pfs, org, cfg)
    env.run()
    # under --sanitize the env is hooked, but the trace short-circuit
    # must hold either way
    assert env.fast_mode or env.sanitizer is not None
    assert calls == []
    assert len(recorder) == 0


def test_collecting_recorder_still_records():
    recorder = TraceRecorder()
    env = Environment()
    pfs = build_parallel_fs(env, 4, recorder=recorder)
    run_org(env, pfs, "IS", WorkloadConfig(n_records=96))
    env.run()
    assert len(recorder) > 0
    assert recorder.total_bytes() > 0


@pytest.mark.parametrize("recorder_cls", [TraceRecorder, NullTraceRecorder])
def test_recorder_choice_does_not_change_simulation(recorder_cls):
    env = Environment()
    pfs = build_parallel_fs(env, 4, recorder=recorder_cls())
    run_org(env, pfs, "IS", WorkloadConfig(n_records=96))
    env.run()
    # same program, same clock/steps regardless of recorder
    assert (round(env.now, 9), env.steps) == _reference_outcome()


def _reference_outcome():
    env = Environment()
    pfs = build_parallel_fs(env, 4)
    run_org(env, pfs, "IS", WorkloadConfig(n_records=96))
    env.run()
    return (round(env.now, 9), env.steps)
