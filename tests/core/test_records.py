"""Unit tests for the fixed-size record model."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RecordRangeError, RecordSpec


class TestValidation:
    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            RecordSpec(0)

    def test_size_must_match_dtype(self):
        with pytest.raises(ValueError):
            RecordSpec(10, dtype="float64")  # 10 not multiple of 8

    def test_items_per_record(self):
        assert RecordSpec(32, dtype="float64").items_per_record == 4
        assert RecordSpec(7, dtype="uint8").items_per_record == 7


class TestCodec:
    def test_roundtrip_float64(self):
        spec = RecordSpec(24, dtype="float64")
        values = np.arange(12, dtype=np.float64).reshape(4, 3)
        raw = spec.encode(values)
        assert raw.dtype == np.uint8
        assert raw.size == 4 * 24
        assert np.array_equal(spec.decode(raw), values)

    def test_roundtrip_bytes_input(self):
        spec = RecordSpec(4)
        decoded = spec.decode(b"\x01\x02\x03\x04\x05\x06\x07\x08")
        assert decoded.shape == (2, 4)
        assert decoded[1, 0] == 5

    def test_single_record_1d_accepted(self):
        spec = RecordSpec(16, dtype="int32")
        raw = spec.encode(np.array([1, 2, 3, 4], dtype=np.int32))
        assert raw.size == 16

    def test_wrong_width_rejected(self):
        spec = RecordSpec(16, dtype="int32")
        with pytest.raises(ValueError):
            spec.encode(np.zeros((2, 5), dtype=np.int32))

    def test_partial_record_rejected_on_decode(self):
        spec = RecordSpec(4)
        with pytest.raises(ValueError):
            spec.decode(b"\x00" * 6)

    @given(
        st.integers(1, 16),
        st.integers(0, 50),
    )
    def test_roundtrip_property(self, items, n):
        spec = RecordSpec(items * 8, dtype="float64")
        rng = np.random.default_rng(0)
        values = rng.random((n, items))
        assert np.array_equal(spec.decode(spec.encode(values)), values)


class TestGeometry:
    def test_byte_range(self):
        spec = RecordSpec(100)
        assert spec.byte_range(0) == (0, 100)
        assert spec.byte_range(7) == (700, 100)

    def test_byte_range_bounds_checked(self):
        spec = RecordSpec(8)
        with pytest.raises(RecordRangeError):
            spec.byte_range(5, n_records=5)
        with pytest.raises(RecordRangeError):
            spec.byte_range(-1)

    def test_span(self):
        spec = RecordSpec(10)
        assert spec.span(3, 4) == (30, 40)
        assert spec.span(0, 0) == (0, 0)
        with pytest.raises(RecordRangeError):
            spec.span(-1, 2)
