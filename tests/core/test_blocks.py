"""Unit tests for the logical block model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import BlockSpec, RecordRangeError, RecordSpec


@pytest.fixture
def spec():
    return BlockSpec(RecordSpec(8), records_per_block=10)


class TestCounting:
    def test_exact_blocks(self, spec):
        assert spec.n_blocks(30) == 3

    def test_short_final_block(self, spec):
        assert spec.n_blocks(31) == 4
        assert spec.block_records(3, 31) == 1
        assert spec.is_short(3, 31)
        assert not spec.is_short(2, 31)

    def test_empty_file(self, spec):
        assert spec.n_blocks(0) == 0
        assert spec.block_records(0, 0) == 0

    def test_invalid(self, spec):
        with pytest.raises(ValueError):
            spec.n_blocks(-1)
        with pytest.raises(RecordRangeError):
            spec.block_records(3, 30)
        with pytest.raises(ValueError):
            BlockSpec(RecordSpec(8), 0)


class TestCoordinates:
    def test_block_and_slot(self, spec):
        assert spec.block_of(0) == 0
        assert spec.block_of(25) == 2
        assert spec.slot_of(25) == 5

    def test_record_at_inverse(self, spec):
        assert spec.record_at(2, 5) == 25
        assert spec.first_record(3) == 30

    def test_record_at_validates_slot(self, spec):
        with pytest.raises(RecordRangeError):
            spec.record_at(0, 10)
        with pytest.raises(RecordRangeError):
            spec.record_at(-1, 0)

    @given(st.integers(0, 10_000), st.integers(1, 64))
    def test_roundtrip_property(self, record, rpb):
        spec = BlockSpec(RecordSpec(4), rpb)
        assert spec.record_at(spec.block_of(record), spec.slot_of(record)) == record


class TestBytes:
    def test_block_bytes(self, spec):
        assert spec.block_bytes == 80

    def test_block_byte_range_full(self, spec):
        assert spec.block_byte_range(1, 30) == (80, 80)

    def test_block_byte_range_short(self, spec):
        assert spec.block_byte_range(3, 31) == (240, 8)

    @given(st.integers(1, 300), st.integers(1, 32))
    def test_block_records_sum_to_file(self, n_records, rpb):
        spec = BlockSpec(RecordSpec(4), rpb)
        total = sum(
            spec.block_records(b, n_records) for b in range(spec.n_blocks(n_records))
        )
        assert total == n_records
