"""Unit + property tests for boundary-overlap handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockSpec,
    HaloCache,
    InterleavedMap,
    OrganizationError,
    PartitionedMap,
    RecordSpec,
    ReplicatedPartitioning,
)


def ps_map(n_records, rpb, p):
    return PartitionedMap(BlockSpec(RecordSpec(8), rpb), n_records, p)


class TestReplicatedPartitioning:
    def test_requires_ps(self):
        m = InterleavedMap(BlockSpec(RecordSpec(8), 4), 40, 2)
        with pytest.raises(OrganizationError):
            ReplicatedPartitioning(m, 1)

    def test_negative_halo_rejected(self):
        with pytest.raises(OrganizationError):
            ReplicatedPartitioning(ps_map(40, 4, 2), -1)

    def test_zero_halo_is_plain_partitioning(self):
        rp = ReplicatedPartitioning(ps_map(40, 4, 4), 0)
        assert rp.inflation == 1.0
        assert rp.redundant_records == 0

    def test_interior_partitions_extend_both_ways(self):
        # 40 records, 10 blocks of 4, 4 processes: partitions of 12,12,8,8 recs
        rp = ReplicatedPartitioning(ps_map(40, 4, 4), halo=2)
        assert rp.owned_records(1) == (12, 24)
        assert rp.stored_records(1) == (10, 26)

    def test_edges_clipped_to_file(self):
        rp = ReplicatedPartitioning(ps_map(40, 4, 4), halo=2)
        assert rp.stored_records(0) == (0, 14)        # no left halo
        assert rp.stored_records(3)[1] == 40          # no right halo

    def test_redundancy_counts_interior_boundaries(self):
        # P partitions, each interior boundary replicated twice (halo each side)
        rp = ReplicatedPartitioning(ps_map(40, 4, 4), halo=2)
        assert rp.redundant_records == 2 * 2 * 3  # halo * 2 sides * 3 boundaries

    def test_build_and_dedup_roundtrip(self):
        rp = ReplicatedPartitioning(ps_map(40, 4, 4), halo=3)
        data = np.arange(40)
        parts = rp.build_partitions(data)
        assert np.array_equal(rp.dedup(parts), data)

    def test_dedup_prefers_owner_copy(self):
        rp = ReplicatedPartitioning(ps_map(8, 1, 2), halo=1)
        data = np.arange(8)
        parts = [p.copy() for p in rp.build_partitions(data)]
        # corrupt the halo copy of record 4 held by process 0
        s_lo, s_hi = rp.stored_records(0)
        parts[0][4 - s_lo] = 999
        result = rp.dedup(parts)
        assert result[4] == 4  # owner's copy (process 1) wins

    def test_build_rejects_wrong_length(self):
        rp = ReplicatedPartitioning(ps_map(8, 1, 2), halo=1)
        with pytest.raises(ValueError):
            rp.build_partitions(np.arange(7))

    def test_dedup_rejects_wrong_shapes(self):
        rp = ReplicatedPartitioning(ps_map(8, 1, 2), halo=1)
        parts = rp.build_partitions(np.arange(8))
        with pytest.raises(ValueError):
            rp.dedup(parts[:1])
        with pytest.raises(ValueError):
            rp.dedup([parts[0][:-1], parts[1]])

    @settings(max_examples=50)
    @given(
        st.integers(1, 200),
        st.integers(1, 8),
        st.integers(1, 8),
        st.integers(0, 5),
    )
    def test_dedup_roundtrip_property(self, n_records, rpb, p, halo):
        rp = ReplicatedPartitioning(ps_map(n_records, rpb, p), halo)
        data = np.arange(n_records) * 3 + 1
        assert np.array_equal(rp.dedup(rp.build_partitions(data)), data)

    @settings(max_examples=50)
    @given(st.integers(1, 200), st.integers(1, 8), st.integers(1, 8), st.integers(0, 5))
    def test_inflation_at_least_one(self, n_records, rpb, p, halo):
        rp = ReplicatedPartitioning(ps_map(n_records, rpb, p), halo)
        assert rp.inflation >= 1.0
        assert rp.total_stored >= n_records


class TestHaloCache:
    def test_miss_then_hit(self):
        cache = HaloCache(4)
        assert cache.lookup(7) is None
        cache.insert(7, np.array([1.0]))
        assert cache.lookup(7) is not None
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_fifo_eviction(self):
        cache = HaloCache(2)
        cache.insert(1, np.array([1]))
        cache.insert(2, np.array([2]))
        cache.insert(3, np.array([3]))  # evicts 1
        assert cache.lookup(1) is None
        assert cache.lookup(2) is not None
        assert cache.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = HaloCache(0)
        cache.insert(1, np.array([1]))
        assert cache.lookup(1) is None
        assert len(cache) == 0

    def test_update_existing_no_eviction(self):
        cache = HaloCache(2)
        cache.insert(1, np.array([1]))
        cache.insert(2, np.array([2]))
        cache.insert(1, np.array([10]))
        assert cache.evictions == 0
        assert cache.lookup(1)[0] == 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            HaloCache(-1)

    def test_empty_hit_rate(self):
        assert HaloCache(1).hit_rate == 0.0
