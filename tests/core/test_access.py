"""Unit tests for access methods and the sequential-within-block cursor."""

import pytest

from repro.core import (
    AccessMethod,
    BlockSpec,
    FileOrganization,
    OrganizationError,
    OwnershipError,
    PartitionedDirectMap,
    PartitionedMap,
    RecordSpec,
    SequentialWithinBlockCursor,
    check_access_method,
    supported_methods,
)


class TestSupportMatrix:
    def test_sequential_orgs_also_support_direct(self):
        for org in (FileOrganization.S, FileOrganization.PS, FileOrganization.IS):
            methods = supported_methods(org)
            assert AccessMethod.SEQUENTIAL in methods
            assert AccessMethod.DIRECT in methods
            assert AccessMethod.SELF_SCHEDULED not in methods

    def test_ss_is_only_self_scheduled(self):
        assert supported_methods(FileOrganization.SS) == {
            AccessMethod.SELF_SCHEDULED
        }

    def test_gda_supports_everything(self):
        assert supported_methods(FileOrganization.GDA) == set(AccessMethod)

    def test_check_raises_with_helpful_message(self):
        with pytest.raises(OrganizationError, match="self-scheduled"):
            check_access_method(FileOrganization.PS, AccessMethod.SELF_SCHEDULED)

    def test_check_passes_supported(self):
        check_access_method(FileOrganization.PDA, AccessMethod.DIRECT)


def pda_map(n=24, rpb=4, p=2):
    return PartitionedDirectMap(BlockSpec(RecordSpec(8), rpb), n, p)


class TestSequentialWithinBlockCursor:
    def test_requires_pda(self):
        ps = PartitionedMap(BlockSpec(RecordSpec(8), 4), 24, 2)
        with pytest.raises(OrganizationError):
            SequentialWithinBlockCursor(ps, 0)

    def test_in_order_accesses_admitted(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        block0 = m.blocks_of(0)[0]
        first = m.blocks.first_record(int(block0))
        for r in range(first, first + 4):
            cur.admit(r)
        assert cur.block_finished(int(block0))

    def test_blocks_in_any_order(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        blocks = [int(b) for b in m.blocks_of(0)]
        # visit the LAST owned block first — legal
        cur.admit(m.blocks.first_record(blocks[-1]))
        cur.admit(m.blocks.first_record(blocks[0]))

    def test_skip_within_block_rejected(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        first = m.blocks.first_record(int(m.blocks_of(0)[0]))
        cur.admit(first)
        with pytest.raises(OrganizationError, match="sequential-within-block"):
            cur.admit(first + 2)  # skipped slot 1

    def test_revisit_rejected(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        first = m.blocks.first_record(int(m.blocks_of(0)[0]))
        cur.admit(first)
        with pytest.raises(OrganizationError):
            cur.admit(first)

    def test_foreign_record_rejected(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        foreign = m.records_of(1)[0]
        with pytest.raises(OwnershipError):
            cur.admit(int(foreign))

    def test_reset_allows_second_pass(self):
        m = pda_map()
        cur = SequentialWithinBlockCursor(m, 0)
        b = int(m.blocks_of(0)[0])
        first = m.blocks.first_record(b)
        for r in range(first, first + 4):
            cur.admit(r)
        cur.reset_block(b)
        cur.admit(first)  # fresh pass, slot 0 again

    def test_short_final_block_finishes_early(self):
        m = pda_map(n=22)  # block 5 holds 2 records; owner is process 0
        owner = m.owner_of_block(5)
        cur = SequentialWithinBlockCursor(m, owner)
        cur.admit(20)
        assert not cur.block_finished(5)
        cur.admit(21)
        assert cur.block_finished(5)


class TestPdaHandleDiscipline:
    """The fs-level wiring of the §3.2 restricted PDA variant."""

    def make_file(self, env):
        from tests.fs.conftest import build_pfs

        pfs = build_pfs(env)
        import numpy as np

        f = pfs.create(
            "pda_sw", "PDA", n_records=24, record_size=8, dtype="float64",
            records_per_block=4, n_processes=2,
        )

        def setup():
            yield from f.global_view().write(np.arange(24).reshape(24, 1) * 1.0)

        env.run(env.process(setup()))
        return f

    def test_sequential_pass_allowed(self):
        from repro.sim import Environment

        env = Environment()
        f = self.make_file(env)
        h = f.internal_view(0, sequential_within_block=True)

        def proc():
            for b in h.owned_blocks:
                first = f.attrs.block_spec.first_record(int(b))
                for r in range(first, first + 4):
                    yield from h.read_record(r)
            return True

        assert env.run(env.process(proc()))

    def test_out_of_order_within_block_rejected(self):
        from repro.core import OrganizationError
        from repro.sim import Environment

        env = Environment()
        f = self.make_file(env)
        h = f.internal_view(0, sequential_within_block=True)
        b = int(h.owned_blocks[0])
        first = f.attrs.block_spec.first_record(b)
        with pytest.raises(OrganizationError):
            next(h.read_record(first + 1))  # slot 1 before slot 0

    def test_reset_block_enables_multipass(self):
        from repro.sim import Environment

        env = Environment()
        f = self.make_file(env)
        h = f.internal_view(0, sequential_within_block=True)
        b = int(h.owned_blocks[0])
        first = f.attrs.block_spec.first_record(b)

        def proc():
            yield from h.read_record(first, count=4)
            h.reset_block(b)
            yield from h.read_record(first, count=4)
            return True

        assert env.run(env.process(proc()))

    def test_default_pda_remains_random_access(self):
        from repro.sim import Environment

        env = Environment()
        f = self.make_file(env)
        h = f.internal_view(0)  # unrestricted

        def proc():
            b = int(h.owned_blocks[0])
            first = f.attrs.block_spec.first_record(b)
            yield from h.read_record(first + 3)
            yield from h.read_record(first + 1)
            return True

        assert env.run(env.process(proc()))
