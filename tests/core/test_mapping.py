"""Unit + property tests for organization maps.

The property tests enforce the invariants DESIGN.md §5 calls out: every
static organization's per-process record sequences form a *partition* of
the file (coverage, no overlap), and local<->global coordinates are a
bijection.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockSpec,
    FileOrganization,
    GlobalDirectMap,
    InterleavedMap,
    OrganizationError,
    OwnershipError,
    PartitionedDirectMap,
    PartitionedMap,
    RecordRangeError,
    RecordSpec,
    SelfScheduledMap,
    SequentialMap,
    make_map,
)


def bspec(rpb=4):
    return BlockSpec(RecordSpec(8), rpb)


# -- static-map shared properties -------------------------------------------

static_shapes = st.tuples(
    st.integers(0, 300),   # n_records
    st.integers(1, 16),    # records_per_block
    st.integers(1, 12),    # n_processes
)


def make_static_maps(n_records, rpb, p):
    spec = bspec(rpb)
    return [
        SequentialMap(spec, n_records, p),
        PartitionedMap(spec, n_records, p),
        InterleavedMap(spec, n_records, p),
        PartitionedDirectMap(spec, n_records, p, assignment="contiguous"),
        PartitionedDirectMap(spec, n_records, p, assignment="interleaved"),
    ]


@settings(max_examples=60)
@given(static_shapes)
def test_static_maps_partition_the_file(shape):
    n_records, rpb, p = shape
    for m in make_static_maps(n_records, rpb, p):
        all_records = np.concatenate(
            [m.records_of(q) for q in range(p)]
        ) if p else np.empty(0)
        assert sorted(all_records.tolist()) == list(range(n_records)), m


@settings(max_examples=60)
@given(static_shapes)
def test_static_maps_block_ownership_consistent(shape):
    n_records, rpb, p = shape
    for m in make_static_maps(n_records, rpb, p):
        for q in range(p):
            for b in m.blocks_of(q):
                assert m.owner_of_block(int(b)) == q, m


@settings(max_examples=40, deadline=None)
@given(static_shapes)
def test_local_global_bijection(shape):
    n_records, rpb, p = shape
    for m in make_static_maps(n_records, rpb, p):
        for r in range(n_records):
            q, local = m.global_to_local(r)
            assert m.local_to_global(q, local) == r, m


@settings(max_examples=40)
@given(static_shapes)
def test_per_process_sequences_sorted_within_blocks(shape):
    """Each process visits records of any single block in ascending order."""
    n_records, rpb, p = shape
    for m in make_static_maps(n_records, rpb, p):
        for q in range(p):
            recs = m.records_of(q)
            blocks = recs // rpb
            for b in np.unique(blocks):
                chunk = recs[blocks == b]
                assert np.all(np.diff(chunk) == 1), m


class TestSequentialMap:
    def test_reader_owns_everything(self):
        m = SequentialMap(bspec(), 40, n_processes=3, reader=1)
        assert m.n_local_records(1) == 40
        assert m.n_local_records(0) == 0
        assert m.n_local_records(2) == 0
        assert m.owner_of_block(5) == 1

    def test_records_in_global_order(self):
        m = SequentialMap(bspec(), 17)
        assert np.array_equal(m.records_of(0), np.arange(17))

    def test_invalid_reader(self):
        with pytest.raises(OrganizationError):
            SequentialMap(bspec(), 10, n_processes=2, reader=2)

    def test_org_tag(self):
        assert SequentialMap(bspec(), 10).org is FileOrganization.S


class TestPartitionedMap:
    def test_contiguous_balanced_split(self):
        # 10 blocks over 3 processes -> 4,3,3
        m = PartitionedMap(bspec(4), 40, 3)
        assert m.partition_range(0) == (0, 4)
        assert m.partition_range(1) == (4, 7)
        assert m.partition_range(2) == (7, 10)

    def test_each_partition_is_one_run(self):
        m = PartitionedMap(bspec(4), 40, 3)
        for p in range(3):
            recs = m.records_of(p)
            assert np.all(np.diff(recs) == 1)

    def test_more_processes_than_blocks(self):
        m = PartitionedMap(bspec(10), 25, 8)  # 3 blocks, 8 processes
        owners = [m.owner_of_block(b) for b in range(3)]
        assert owners == [0, 1, 2]
        assert m.n_local_records(7) == 0

    def test_owner_search(self):
        m = PartitionedMap(bspec(1), 100, 7)
        for b in range(100):
            assert m.blocks_of(m.owner_of_block(b)).tolist().count(b) == 1

    def test_block_out_of_range(self):
        m = PartitionedMap(bspec(4), 40, 3)
        with pytest.raises(RecordRangeError):
            m.owner_of_block(10)


class TestInterleavedMap:
    def test_round_robin_ownership(self):
        m = InterleavedMap(bspec(2), 20, 3)  # 10 blocks
        assert [m.owner_of_block(b) for b in range(10)] == [
            0, 1, 2, 0, 1, 2, 0, 1, 2, 0
        ]

    def test_stride_defaults_to_processes(self):
        assert InterleavedMap(bspec(), 40, 4).stride == 4

    def test_bad_strides_rejected(self):
        with pytest.raises(OrganizationError):
            InterleavedMap(bspec(), 40, 4, stride=3)
        with pytest.raises(OrganizationError):
            InterleavedMap(bspec(), 40, 4, stride=5)

    def test_single_record_blocks_wrap_matrix_rows(self):
        """§3.1: 'useful for wrapped storage of a matrix'."""
        m = InterleavedMap(BlockSpec(RecordSpec(8), 1), 9, 3)
        assert m.records_of(0).tolist() == [0, 3, 6]
        assert m.records_of(1).tolist() == [1, 4, 7]
        assert m.records_of(2).tolist() == [2, 5, 8]


class TestSelfScheduledMap:
    def test_not_static(self):
        m = SelfScheduledMap(bspec(), 40, 4)
        assert not m.is_static
        with pytest.raises(OrganizationError):
            m.owner_of_block(0)
        with pytest.raises(OrganizationError):
            m.blocks_of(0)

    def test_validate_schedule_accepts_exact_cover(self):
        m = SelfScheduledMap(bspec(4), 16, 2)  # 4 blocks
        m.validate_schedule({0: [0, 2], 1: [1, 3]})

    def test_validate_schedule_rejects_skip(self):
        m = SelfScheduledMap(bspec(4), 16, 2)
        with pytest.raises(OrganizationError):
            m.validate_schedule({0: [0, 2], 1: [1]})

    def test_validate_schedule_rejects_duplicate(self):
        m = SelfScheduledMap(bspec(4), 16, 2)
        with pytest.raises(OrganizationError):
            m.validate_schedule({0: [0, 1, 2], 1: [2, 3]})


class TestGlobalDirectMap:
    def test_everyone_may_access_everything(self):
        m = GlobalDirectMap(bspec(), 40, 4)
        assert not m.is_static
        assert all(m.may_access(p, r) for p in range(4) for r in (0, 39))

    def test_bounds_checked(self):
        m = GlobalDirectMap(bspec(), 40, 4)
        with pytest.raises(RecordRangeError):
            m.may_access(0, 40)
        with pytest.raises(OrganizationError):
            m.may_access(4, 0)


class TestPartitionedDirectMap:
    def test_contiguous_matches_ps(self):
        pda = PartitionedDirectMap(bspec(4), 40, 3, assignment="contiguous")
        ps = PartitionedMap(bspec(4), 40, 3)
        for b in range(10):
            assert pda.owner_of_block(b) == ps.owner_of_block(b)

    def test_interleaved_matches_is(self):
        pda = PartitionedDirectMap(bspec(4), 40, 3, assignment="interleaved")
        is_ = InterleavedMap(bspec(4), 40, 3)
        for b in range(10):
            assert pda.owner_of_block(b) == is_.owner_of_block(b)

    def test_access_control(self):
        pda = PartitionedDirectMap(bspec(4), 40, 2)
        owner = pda.owner_of_record(0)
        other = 1 - owner
        pda.check_access(owner, 0)
        with pytest.raises(OwnershipError):
            pda.check_access(other, 0)

    def test_unknown_assignment(self):
        with pytest.raises(OrganizationError):
            PartitionedDirectMap(bspec(), 40, 2, assignment="random")


class TestFactory:
    @pytest.mark.parametrize("org,cls", [
        ("S", SequentialMap),
        ("ps", PartitionedMap),
        ("IS", InterleavedMap),
        ("ss", SelfScheduledMap),
        ("GDA", GlobalDirectMap),
        ("pda", PartitionedDirectMap),
        (FileOrganization.PS, PartitionedMap),
    ])
    def test_make_map(self, org, cls):
        assert isinstance(make_map(org, bspec(), 40, 2), cls)

    def test_unknown_org(self):
        with pytest.raises(OrganizationError):
            make_map("XYZ", bspec(), 40, 2)

    def test_params_forwarded(self):
        m = make_map("pda", bspec(), 40, 2, assignment="interleaved")
        assert m.assignment == "interleaved"


class TestOrganizationEnum:
    def test_families(self):
        assert FileOrganization.S.is_sequential
        assert FileOrganization.SS.is_sequential
        assert FileOrganization.GDA.is_direct
        assert not FileOrganization.PS.is_direct

    def test_partitioned_flags(self):
        assert FileOrganization.PS.is_partitioned
        assert FileOrganization.IS.is_partitioned
        assert FileOrganization.PDA.is_partitioned
        assert not FileOrganization.S.is_partitioned

    def test_default_layouts_match_section4(self):
        assert FileOrganization.S.default_layout == "striped"
        assert FileOrganization.SS.default_layout == "striped"
        assert FileOrganization.PS.default_layout == "clustered"
        assert FileOrganization.IS.default_layout == "interleaved"
        assert FileOrganization.GDA.default_layout == "striped"
