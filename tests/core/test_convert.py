"""Unit + property tests for view-mismatch analysis and conversion plans."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BlockSpec,
    GlobalDirectMap,
    InterleavedMap,
    PartitionedMap,
    RecordSpec,
    Run,
    SequentialMap,
    alternate_view_runs,
    contiguous_runs,
    conversion_plan,
)


def bspec(rpb):
    return BlockSpec(RecordSpec(8), rpb)


class TestContiguousRuns:
    def test_empty(self):
        assert contiguous_runs(np.array([], dtype=np.int64)) == []

    def test_single_run(self):
        assert contiguous_runs(np.arange(5)) == [Run(0, 5)]

    def test_docstring_example(self):
        runs = contiguous_runs(np.array([4, 5, 6, 10, 11, 2]))
        assert runs == [Run(4, 3), Run(10, 2), Run(2, 1)]

    def test_descending_fragments_fully(self):
        runs = contiguous_runs(np.array([3, 2, 1]))
        assert len(runs) == 3

    @given(st.lists(st.integers(0, 1000), min_size=0, max_size=200))
    def test_runs_reconstruct_sequence(self, xs):
        seq = np.array(xs, dtype=np.int64)
        runs = contiguous_runs(seq)
        rebuilt = [r for run in runs for r in range(run.start, run.stop)]
        assert rebuilt == xs

    def test_run_stop(self):
        assert Run(3, 4).stop == 7


class TestAlternateViewRuns:
    def test_ps_view_is_single_run_per_process(self):
        ps = PartitionedMap(bspec(4), 64, 4)
        for p in range(4):
            assert len(alternate_view_runs(ps, p)) == 1

    def test_is_view_fragments_per_block(self):
        is_ = InterleavedMap(bspec(4), 64, 4)  # 16 blocks, 4 each
        for p in range(4):
            runs = alternate_view_runs(is_, p)
            assert len(runs) == 4          # one run per owned block
            assert all(r.count == 4 for r in runs)

    def test_is_view_always_more_fragmented_than_ps(self):
        """The degraded-interface cost of consuming a file IS-wise: every
        owned block is a separate run, versus one run for the PS view."""
        n = 240
        for p in (2, 4, 8):
            is_runs = alternate_view_runs(InterleavedMap(bspec(2), n, p), 0)
            ps_runs = alternate_view_runs(PartitionedMap(bspec(2), n, p), 0)
            assert len(ps_runs) == 1
            assert len(is_runs) == n // (2 * p)  # one run per owned block
            assert len(is_runs) > len(ps_runs)

    def test_total_fragmentation_constant_across_processes(self):
        """Summed over processes, the IS view always touches every block
        as its own run: total seeks scale with block count, not P."""
        n = 240
        for p in (2, 4, 8):
            m = InterleavedMap(bspec(2), n, p)
            total = sum(len(alternate_view_runs(m, q)) for q in range(p))
            assert total == m.n_blocks


class TestConversionPlan:
    def test_identity_conversion_single_step(self):
        ps = PartitionedMap(bspec(4), 64, 4)
        plan = conversion_plan(ps, ps)
        assert len(plan) == 1
        assert plan[0].count == 64

    def test_ps_to_is_covers_all_records(self):
        ps = PartitionedMap(bspec(4), 64, 4)
        is_ = InterleavedMap(bspec(4), 64, 4)
        plan = conversion_plan(ps, is_)
        assert sum(s.count for s in plan) == 64
        # destination slots covered exactly once, in order
        dst = sorted((s.dst_start, s.count) for s in plan)
        pos = 0
        for start, count in dst:
            assert start == pos
            pos += count

    def test_ps_to_is_step_granularity_is_block(self):
        ps = PartitionedMap(bspec(4), 64, 4)
        is_ = InterleavedMap(bspec(4), 64, 4)
        plan = conversion_plan(ps, is_)
        # PS physical order == global order; IS scatters blocks, so each
        # step is exactly one block of 4 records.
        assert all(s.count == 4 for s in plan)
        assert len(plan) == 16

    def test_s_to_ps_is_identity(self):
        """S physical order and PS physical order are both global order."""
        s = SequentialMap(bspec(4), 64, 1)
        ps = PartitionedMap(bspec(4), 64, 4)
        plan = conversion_plan(s, ps)
        assert len(plan) == 1

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            conversion_plan(
                PartitionedMap(bspec(4), 64, 4),
                PartitionedMap(bspec(4), 60, 4),
            )

    def test_dynamic_orgs_rejected(self):
        with pytest.raises(ValueError):
            conversion_plan(
                GlobalDirectMap(bspec(4), 64, 4),
                PartitionedMap(bspec(4), 64, 4),
            )

    def test_empty_file_empty_plan(self):
        plan = conversion_plan(
            PartitionedMap(bspec(4), 0, 2),
            InterleavedMap(bspec(4), 0, 2),
        )
        assert plan == []

    @settings(max_examples=40)
    @given(
        st.integers(1, 200),
        st.integers(1, 8),
        st.integers(1, 6),
        st.integers(1, 6),
    )
    def test_plan_is_complete_permutation(self, n, rpb, p_src, p_dst):
        src = PartitionedMap(bspec(rpb), n, p_src)
        dst = InterleavedMap(bspec(rpb), n, p_dst)
        plan = conversion_plan(src, dst)
        # Applying the plan to the source physical order yields the
        # destination physical order.
        src_order = np.concatenate(
            [src.records_of(q) for q in range(p_src)]
        )
        dst_order = np.concatenate(
            [dst.records_of(q) for q in range(p_dst)]
        )
        result = np.empty(n, dtype=np.int64)
        for step in plan:
            result[step.dst_start : step.dst_start + step.count] = src_order[
                step.src_start : step.src_start + step.count
            ]
        assert np.array_equal(result, dst_order)
