"""Schema/variable model tests (repro.dataset.model)."""

import numpy as np
import pytest

from repro.core import OrganizationError
from repro.dataset import DatasetSchema, Variable, media_dtype


class TestMediaDtype:
    def test_pins_little_endian(self):
        assert media_dtype(">f8").str == "<f8"
        assert media_dtype(np.float32).str == "<f4"

    def test_byteorder_free_types_pass_through(self):
        assert media_dtype("u1").itemsize == 1

    def test_rejects_object_and_zero_size(self):
        with pytest.raises(OrganizationError):
            media_dtype(object)
        with pytest.raises(OrganizationError):
            media_dtype("V0")


class TestVariable:
    def test_canonicalizes_dtype(self):
        v = Variable("temp", ">f4", ("y", "x"))
        assert v.dtype == "<f4"
        assert v.np_dtype == np.dtype("<f4")
        assert v.itemsize == 4

    @pytest.mark.parametrize("name", ["", "a/b", "x" * 28])
    def test_bad_names(self, name):
        with pytest.raises(OrganizationError):
            Variable(name, "<f4", ())

    def test_attrs_must_be_json_scalars(self):
        Variable("ok", "u1", (), {"units": "K", "n": 3, "f": 1.5, "b": True})
        with pytest.raises(OrganizationError):
            Variable("bad", "u1", (), {"arr": [1, 2]})


class TestSchema:
    def test_build_and_lookup(self, ):
        s = DatasetSchema.build(
            {"t": 3, "x": 5},
            {"v": ("<i4", ("t", "x"))},
        )
        assert s.shape("v") == (3, 5)
        assert s.size("v") == 15
        assert s.nbytes("v") == 60
        with pytest.raises(OrganizationError, match="no variable"):
            s.variable("missing")

    def test_undeclared_dim_rejected(self):
        with pytest.raises(OrganizationError):
            DatasetSchema.build({"t": 3}, {"v": ("<i4", ("t", "x"))})

    def test_negative_extent_rejected(self):
        with pytest.raises(OrganizationError):
            DatasetSchema.build({"t": -1}, {})

    def test_json_round_trip_is_canonical(self):
        s = DatasetSchema.build(
            {"t": 4, "x": 2},
            {"v": (">f8", ("t", "x"), {"units": "m"}), "w": ("u1", ())},
            {"title": "rt"},
        )
        doc = s.to_json()
        s2 = DatasetSchema.from_json(doc)
        assert s2 == s
        assert s2.to_json() == doc  # byte-stable round trip
        assert s2.variable("v").dtype == "<f8"

    def test_from_json_rejects_garbage(self):
        with pytest.raises(OrganizationError):
            DatasetSchema.from_json(b"not json")
        with pytest.raises(OrganizationError):
            DatasetSchema.from_json(b"[1, 2]")
        with pytest.raises(OrganizationError):
            DatasetSchema.from_json(b'{"variables": {"v": {"dims": []}}}')
