"""Sim-backend Dataset tests: round-trip, hyperslab I/O, collectives,
crc staleness/sync, and verify integration."""

import numpy as np
import pytest

from repro.container.verify import scan_container
from repro.core import OrganizationError
from repro.dataset import Dataset
from repro.sim import Environment

from tests.container.conftest import build_pfs
from tests.dataset.conftest import run


def make(env, pfs, schema, data, **kw):
    return run(env, Dataset.create(pfs, "ds", schema, data=data, **kw))


class TestRoundTrip:
    def test_create_open_describe(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data, org="PS", writers=2)
        ds2 = run(env, Dataset.open(pfs, "ds"))
        desc = ds2.describe()
        assert desc["dimensions"] == {"t": 4, "y": 6, "x": 8}
        assert tuple(desc["variables"]["temp"]["shape"]) == (4, 6, 8)
        assert desc["variables"]["temp"]["attrs"] == {"units": "K"}
        assert sorted(ds.variable_names) == ["mask", "temp"]

    def test_full_variable_round_trip(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data)
        for name in ("temp", "mask"):
            got = run(env, ds.read_variable(name))
            assert got.dtype == data[name].dtype
            assert np.array_equal(got, data[name])

    def test_zero_fill_without_data(self, env, pfs, schema):
        ds = make(env, pfs, schema, None)
        got = run(env, ds.read_variable("temp"))
        assert np.count_nonzero(got) == 0

    def test_open_non_dataset_rejected(self, env, pfs):
        from repro.container import ContainerWriter, block_section

        def driver():
            w = ContainerWriter.create(pfs, "plain", [block_section("blob", 64)])
            yield from w.begin()
            yield from w.write_block("blob", b"\x07" * 64)

        env.run(env.process(driver()))
        with pytest.raises(OrganizationError, match="not a dataset"):
            run(env, Dataset.open(pfs, "plain"))


class TestSlabs:
    CASES = [
        ((0, 0, 0), (4, 6, 8)),     # whole variable
        ((1, 2, 3), (2, 3, 4)),     # interior box
        ((3, 0, 0), (1, 6, 8)),     # one time step (contiguous)
        ((0, 5, 7), (4, 1, 1)),     # a strided pencil
        ((2, 2, 2), (0, 3, 3)),     # empty
    ]

    @pytest.mark.parametrize("start,count", CASES)
    @pytest.mark.parametrize("sieve", [False, True])
    def test_read_matches_numpy_oracle(self, env, pfs, schema, data,
                                       start, count, sieve):
        ds = make(env, pfs, schema, data, org="IS", writers=2)
        got = run(env, ds.read_slab("temp", start, count, sieve=sieve))
        sel = tuple(slice(s, s + c) for s, c in zip(start, count))
        assert np.array_equal(got, data["temp"][sel])

    @pytest.mark.parametrize("sieve", [False, True])
    def test_write_then_read_back(self, env, pfs, schema, data, sieve):
        ds = make(env, pfs, schema, data, org="SS", writers=2)
        patch = np.full((2, 3, 4), 7.5, dtype="<f4")
        n = run(env, ds.write_slab("temp", (1, 2, 3), (2, 3, 4), patch,
                                   sieve=sieve))
        assert n == 24
        want = data["temp"].copy()
        want[1:3, 2:5, 3:7] = patch
        got = run(env, ds.read_variable("temp"))
        assert np.array_equal(got, want)

    def test_bad_slab_reports_dimension(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data)
        with pytest.raises(OrganizationError, match="outside extent"):
            run(env, ds.read_slab("temp", (0, 0, 5), (4, 6, 4)))

    def test_wrong_value_count_rejected(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data)
        with pytest.raises(OrganizationError, match="slab selects"):
            run(env, ds.write_slab("temp", (0, 0, 0), (1, 1, 2),
                                   np.zeros(3, dtype="<f4")))


class TestCollective:
    @pytest.mark.parametrize("org", ["IS", "GDA"])
    def test_read_slab_all(self, env, pfs, schema, data, org):
        ds = make(env, pfs, schema, data, org=org, writers=4)
        slabs = [((q, 0, 0), (1, 6, 8)) for q in range(4)]
        out = run(env, ds.read_slab_all("temp", slabs))
        for q in range(4):
            assert np.array_equal(out[q], data["temp"][q:q + 1])

    @pytest.mark.parametrize("org", ["PS", "PDA"])
    def test_write_slab_all_then_verify(self, env, pfs, schema, data, org):
        ds = make(env, pfs, schema, data, org=org, writers=4)
        slabs = [((q, 0, 0), (1, 6, 8)) for q in range(4)]
        vals = [np.full((1, 6, 8), float(q), dtype="<f4") for q in range(4)]
        n = run(env, ds.write_slab_all("temp", slabs, vals))
        assert n == 4 * 6 * 8
        got = run(env, ds.read_variable("temp"))
        want = np.concatenate(vals)
        assert np.array_equal(got, want)

    def test_empty_slabs_are_fine(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data, org="IS", writers=2)
        slabs = [((0, 0, 0), (0, 6, 8)), ((1, 0, 0), (2, 6, 8))]
        out = run(env, ds.read_slab_all("temp", slabs))
        assert out[0].size == 0
        assert np.array_equal(out[1], data["temp"][1:3])

    def test_wrong_process_count_rejected(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data, org="IS", writers=2)
        with pytest.raises(OrganizationError):
            run(env, ds.read_slab_all("temp", [((0, 0, 0), (1, 6, 8))]))


class TestSync:
    def test_slab_write_dirties_and_sync_cleans(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data, org="S")
        assert scan_container(ds.file).clean

        run(env, ds.write_slab("mask", (0, 0), (2, 8),
                               np.ones((2, 8), dtype="u1")))
        assert ds.dirty == ["mask"]
        report = scan_container(ds.file)
        stale = [f for f in report.findings if f.kind == "section-checksum"]
        assert [f.section for f in stale] == ["var/mask"]

        assert run(env, ds.sync()) == ["mask"]
        assert ds.dirty == []
        assert scan_container(ds.file).clean

    def test_collective_write_dirties(self, env, pfs, schema, data):
        ds = make(env, pfs, schema, data, org="IS", writers=2)
        slabs = [((0, 0, 0), (2, 6, 8)), ((2, 0, 0), (2, 6, 8))]
        vals = [np.zeros((2, 6, 8), dtype="<f4")] * 2
        run(env, ds.write_slab_all("temp", slabs, vals))
        assert ds.dirty == ["temp"]
        run(env, ds.sync())
        assert scan_container(ds.file).clean
