"""Live-backend Dataset tests.

The load-bearing property: a live dataset on a host file and a sim
dataset on modelled devices hold *identical container bytes* (modulo
the attrs section, which records backend-specific layout) after the
same sequence of slab operations — on every organization, including
collective ``write_slab_all`` on the sim side.
"""

import threading

import numpy as np
import pytest

from repro.core import OrganizationError
from repro.dataset import Dataset, LiveDataset, content_fingerprint
from repro.sim import Environment

from tests.container.conftest import build_pfs, media_bytes
from tests.dataset.conftest import ORGS, run


def sim_fp(ds):
    return content_fingerprint(media_bytes(ds.file))


def live_fp(lds):
    return content_fingerprint(lds.file.path.read_bytes())


class TestRoundTrip:
    def test_create_open_read(self, lfs, schema, data):
        with LiveDataset.create(lfs, "ds", schema, org="PS",
                                n_processes=2, data=data):
            pass
        with LiveDataset.open(lfs, "ds") as lds:
            for name in ("temp", "mask"):
                assert np.array_equal(lds.read_variable(name), data[name])
            desc = lds.describe()
            assert desc["dimensions"] == {"t": 4, "y": 6, "x": 8}

    @pytest.mark.parametrize("sieve", [False, True])
    def test_slab_write_read(self, lfs, schema, data, sieve):
        with LiveDataset.create(lfs, "ds", schema, data=data) as lds:
            patch = np.full((2, 3, 4), -2.5, dtype="<f4")
            lds.write_slab("temp", (1, 2, 3), (2, 3, 4), patch, sieve=sieve)
            got = lds.read_slab("temp", (1, 2, 3), (2, 3, 4), sieve=sieve)
            assert np.array_equal(got, patch)
            want = data["temp"].copy()
            want[1:3, 2:5, 3:7] = patch
            assert np.array_equal(lds.read_variable("temp"), want)

    def test_sync_and_dirty(self, lfs, schema, data):
        with LiveDataset.create(lfs, "ds", schema, data=data) as lds:
            lds.write_slab("mask", (0, 0), (1, 8), np.ones((1, 8), dtype="u1"))
            assert lds.dirty == ["mask"]
            assert lds.sync() == ["mask"]
            assert lds.dirty == []

    def test_open_rejects_plain_file(self, lfs):
        lfs.create("plain", "S", n_records=1024, record_size=1,
                   dtype="uint8").close()
        with pytest.raises(Exception):
            LiveDataset.open(lfs, "plain")

    def test_close_is_idempotent(self, lfs, schema):
        lds = LiveDataset.create(lfs, "ds", schema)
        lds.close()
        lds.close()


class TestBackendIdentity:
    @pytest.mark.parametrize("org", ORGS)
    def test_create_identity_all_orgs(self, lfs, schema, data, org):
        env = Environment()
        pfs = build_pfs(env)
        ds = run(env, Dataset.create(pfs, "ds", schema, org=org,
                                     writers=2, data=data))
        with LiveDataset.create(lfs, "ds", schema, org=org,
                                n_processes=2, data=data) as lds:
            assert live_fp(lds) == sim_fp(ds)

    @pytest.mark.parametrize("org", ORGS)
    def test_slab_write_identity_all_orgs(self, lfs, schema, data, org):
        """Same plain slab writes on both backends → identical media."""
        env = Environment()
        pfs = build_pfs(env)
        ds = run(env, Dataset.create(pfs, "ds", schema, org=org,
                                     writers=2, data=data))
        patch = np.arange(24, dtype="<f4").reshape(2, 3, 4)
        run(env, ds.write_slab("temp", (1, 1, 2), (2, 3, 4), patch,
                               sieve=True))
        run(env, ds.sync())
        with LiveDataset.create(lfs, "ds", schema, org=org,
                                n_processes=2, data=data) as lds:
            lds.write_slab("temp", (1, 1, 2), (2, 3, 4), patch, sieve=True)
            lds.sync()
            assert live_fp(lds) == sim_fp(ds)

    @pytest.mark.parametrize("org", ORGS)
    def test_collective_write_identity_all_orgs(self, lfs, schema, data, org):
        """Sim collective write_slab_all vs live plain writes → identical
        media on every organization."""
        env = Environment()
        pfs = build_pfs(env)
        ds = run(env, Dataset.create(pfs, "ds", schema, org=org,
                                     writers=4, data=data))
        slabs = [((q, 0, 0), (1, 6, 8)) for q in range(4)]
        vals = [np.full((1, 6, 8), float(q + 1), dtype="<f4")
                for q in range(4)]
        run(env, ds.write_slab_all("temp", slabs, vals))
        run(env, ds.sync())
        with LiveDataset.create(lfs, "ds", schema, org=org,
                                n_processes=4, data=data) as lds:
            for (start, count), v in zip(slabs, vals):
                lds.write_slab("temp", start, count, v)
            lds.sync()
            assert live_fp(lds) == sim_fp(ds)


class TestConcurrency:
    def test_n_writers_m_readers(self, lfs, schema, data):
        """8 writer threads patch disjoint (t, y) rows of temp while 4
        reader threads hammer reads; the final media must equal a sim
        dataset given the same patches."""
        with LiveDataset.create(lfs, "ds", schema, data=data) as lds:
            stop = threading.Event()
            errors = []

            def writer(i):
                t, y = divmod(i, 2)
                row = np.full((1, 1, 8), float(100 + i), dtype="<f4")
                try:
                    for _ in range(5):
                        lds.write_slab("temp", (t, y, 0), (1, 1, 8), row,
                                       sieve=(i % 2 == 0))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            def reader():
                try:
                    while not stop.is_set():
                        out = lds.read_slab("temp", (0, 0, 0), (4, 2, 8),
                                            sieve=True)
                        assert out.shape == (4, 2, 8)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            readers = [threading.Thread(target=reader) for _ in range(4)]
            writers = [threading.Thread(target=writer, args=(i,))
                       for i in range(8)]
            for th in readers + writers:
                th.start()
            for th in writers:
                th.join()
            stop.set()
            for th in readers:
                th.join()
            assert not errors
            lds.sync()
            live = live_fp(lds)

        env = Environment()
        pfs = build_pfs(env)
        ds = run(env, Dataset.create(pfs, "ds", schema, data=data))
        for i in range(8):
            t, y = divmod(i, 2)
            row = np.full((1, 1, 8), float(100 + i), dtype="<f4")
            run(env, ds.write_slab("temp", (t, y, 0), (1, 1, 8), row))
        run(env, ds.sync())
        assert live == sim_fp(ds)

    def test_concurrent_writers_all_orgs_land(self, lfs, schema):
        """Every org: 6 threads write disjoint y-rows of mask; read-back
        must show every row exactly once."""
        for org in ORGS:
            with LiveDataset.create(lfs, f"ds_{org}", schema, org=org,
                                    n_processes=2) as lds:
                def writer(y):
                    lds.write_slab("mask", (y, 0), (1, 8),
                                   np.full((1, 8), y + 1, dtype="u1"))

                threads = [threading.Thread(target=writer, args=(y,))
                           for y in range(6)]
                for th in threads:
                    th.start()
                for th in threads:
                    th.join()
                got = lds.read_variable("mask")
                want = np.repeat(np.arange(1, 7, dtype="u1"),
                                 8).reshape(6, 8)
                assert np.array_equal(got, want), org


class TestErrors:
    def test_unknown_data_key_rejected(self, lfs, schema):
        with pytest.raises(OrganizationError, match="unknown variables"):
            LiveDataset.create(lfs, "ds", schema, data={"nope": np.zeros(1)})
        # failed create must not leave files behind; the name is reusable
        LiveDataset.create(lfs, "ds", schema).close()

    def test_bad_slab_message(self, lfs, schema):
        with LiveDataset.create(lfs, "ds", schema) as lds:
            with pytest.raises(OrganizationError, match="outside extent"):
                lds.read_slab("temp", (0, 0, 0), (5, 6, 8))
