"""Shared fixtures for dataset tests: a sim file system, a live root,
and one canonical schema + data used across backend-identity tests."""

import numpy as np
import pytest

from repro.dataset import DatasetSchema
from repro.live import LiveParallelFileSystem
from repro.sim import Environment
from tests.container.conftest import build_pfs

ORGS = ["S", "PS", "IS", "SS", "GDA", "PDA"]


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


@pytest.fixture
def schema():
    return DatasetSchema.build(
        {"t": 4, "y": 6, "x": 8},
        {
            "temp": ("<f4", ("t", "y", "x"), {"units": "K"}),
            "mask": ("u1", ("y", "x")),
        },
        {"title": "fixture dataset"},
    )


@pytest.fixture
def data(schema):
    rng = np.random.default_rng(42)
    return {
        "temp": rng.normal(size=(4, 6, 8)).astype("<f4"),
        "mask": rng.integers(0, 2, size=(6, 8)).astype("u1"),
    }


def run(env, gen):
    """Drive one sim generator to completion and return its value."""
    box = {}

    def driver():
        box["out"] = yield from gen

    env.run(env.process(driver()))
    return box.get("out")
