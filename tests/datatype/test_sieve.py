"""Data sieving: RMW window planning and the executable sieved paths."""

import numpy as np
import pytest

from repro.datatype import plan_sieved_reads, plan_sieved_writes
from repro.datatype.views import StridedView
from repro.ionode.aggregator import plan_rmw
from repro.sim import Environment
from tests.fs.conftest import build_pfs


def make_file(env, n=256, rpb=4, p=4, batch=False):
    pfs = build_pfs(env)
    if batch:
        pfs.set_batching(True)
    return pfs.create(
        "sv", "IS", n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p,
    )


def seed(env, f, data):
    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))


def read_back(env, f):
    def proc():
        out = yield from f.global_view().read()
        return out

    return env.run(env.process(proc()))


def device_requests(f):
    return sum(d.latency.count for d in f.volume.devices)


class TestPlanRMW:
    def test_packs_close_runs_into_one_window(self):
        [(window, pieces)] = plan_rmw([(0, 4), (8, 4)], sieve_factor=4.0)
        assert (window.offset, window.nbytes) == (0, 12)
        assert [(p.offset, p.nbytes) for p in pieces] == [(0, 4), (8, 4)]

    def test_factor_one_never_merges(self):
        windows = plan_rmw([(0, 4), (8, 4)], sieve_factor=1.0)
        assert [(w.offset, w.nbytes) for w, _ in windows] == [(0, 4), (8, 4)]
        for w, pieces in windows:
            assert len(pieces) == 1 and pieces[0] == w

    def test_window_cap_splits(self):
        windows = plan_rmw(
            [(0, 4), (8, 4), (100, 4)], sieve_factor=100.0, sieve_window=32
        )
        assert [(w.offset, w.nbytes) for w, _ in windows] == [(0, 12), (100, 4)]

    def test_adjacent_runs_coalesce_first(self):
        [(window, pieces)] = plan_rmw([(0, 4), (4, 4)], sieve_factor=1.0)
        assert (window.offset, window.nbytes) == (0, 8)
        assert len(pieces) == 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            plan_rmw([(0, 4)], sieve_factor=0.5)

    def test_plan_sieved_wrappers_record_units(self):
        from repro.core.convert import Run

        runs = [Run(0, 2), Run(6, 2)]
        plan = plan_sieved_reads(runs, 16, sieve_factor=4.0)
        assert plan.sieved and plan.reads[0].nbytes == 8  # records, not bytes
        windows = plan_sieved_writes(runs, 16, sieve_factor=4.0)
        assert windows[0][0].nbytes == 8


class TestSievedRead:
    def test_fewer_device_requests_same_data(self):
        v = StridedView(0, 32, 1, 4)  # 32 single records, stride 4
        data = np.random.default_rng(7).random((256, 2))

        # batching on, so the sieved covering span can merge into
        # multi-block device requests; the stride-separated exact records
        # cannot merge either way
        def run_once(sieve):
            env = Environment()
            f = make_file(env, batch=True)
            seed(env, f, data)
            before = device_requests(f)

            def proc():
                out = yield f.read_view(v, sieve=sieve, sieve_factor=8.0)
                return out

            out = env.run(env.process(proc()))
            return out, device_requests(f) - before

        plain, n_plain = run_once(False)
        sieved, n_sieved = run_once(True)
        assert np.array_equal(plain, sieved)
        assert np.array_equal(plain, data[v.indices()])
        assert n_sieved < n_plain

    def test_window_cap_respected(self):
        # sieve_window of one record: no covering extent can form, the
        # sieved path degenerates to exact runs and still returns the data
        env = Environment()
        f = make_file(env)
        data = np.random.default_rng(8).random((256, 2))
        seed(env, f, data)
        v = StridedView(0, 8, 1, 4)

        def proc():
            out = yield f.read_view(v, sieve=True, sieve_window=16)
            return out

        out = env.run(env.process(proc()))
        assert np.array_equal(out, data[v.indices()])


class TestSievedWrite:
    def test_holes_preserved(self):
        env = Environment()
        f = make_file(env)
        data = np.random.default_rng(9).random((256, 2))
        seed(env, f, data)
        v = StridedView(0, 16, 1, 4)  # records 0, 4, 8, ...
        new = np.random.default_rng(10).random((16, 2))

        def proc():
            n = yield f.write_view(new, v, sieve=True, sieve_factor=8.0)
            return n

        assert env.run(env.process(proc())) == 16
        expected = data.copy()
        expected[v.indices()] = new
        # the RMW windows read and rewrote the holes: they must be intact
        assert np.array_equal(read_back(env, f), expected)

    def test_concurrent_sieved_writers_do_not_tear(self):
        """Two sieved writers with interleaved records share RMW windows.

        Writer A owns the even records, writer B the odd ones, in the
        same region — every RMW window of one overlaps the other's. The
        per-file sieve lock serializes the windows, so both writers'
        records must survive; without it, one writer's window write-back
        restores stale hole bytes over the other's records (lost update).
        """
        env = Environment()
        f = make_file(env, n=64)
        data = np.zeros((64, 2))
        seed(env, f, data)
        region = 32
        a_view = StridedView(0, region // 2, 1, 2)   # 0, 2, 4, ...
        b_view = StridedView(1, region // 2, 1, 2)   # 1, 3, 5, ...
        a_new = np.full((region // 2, 2), 1.0)
        b_new = np.full((region // 2, 2), 2.0)

        def writer(view, rows):
            n = yield f.write_view(rows, view, sieve=True, sieve_factor=8.0)
            return n

        env.run(
            env.all_of(
                [
                    env.process(writer(a_view, a_new)),
                    env.process(writer(b_view, b_new)),
                ]
            )
        )
        out = read_back(env, f)
        assert np.array_equal(out[a_view.indices()], a_new)
        assert np.array_equal(out[b_view.indices()], b_new)
        assert np.array_equal(out[region:], data[region:])
