"""Unit tests for the shared request planner (repro.datatype.planner)."""

import numpy as np
import pytest

from repro.datatype import (
    IndexedView,
    StridedView,
    check_view_runs,
    plan_view_read,
    plan_view_write,
)


def runs_of(view):
    return view.flatten()


class TestCheckViewRuns:
    def test_in_bounds(self):
        v = StridedView(0, 3, 2, 4)
        assert len(check_view_runs(v, 12)) == 3

    def test_out_of_bounds_raises(self):
        v = StridedView(0, 3, 2, 4)
        with pytest.raises(ValueError, match="outside file"):
            check_view_runs(v, 9)

    def test_empty_view(self):
        assert check_view_runs(IndexedView(()), 4) == []


class TestReadPlan:
    def test_empty(self):
        assert plan_view_read([]).mode == "empty"

    def test_single_run_contiguous_even_with_sieve(self):
        runs = runs_of(StridedView(0, 1, 8, 8))
        assert plan_view_read(runs).mode == "contiguous"
        assert plan_view_read(runs, sieve=True).mode == "contiguous"

    def test_multi_run_list_without_sieve(self):
        runs = runs_of(StridedView(0, 4, 2, 8))
        assert plan_view_read(runs).mode == "list"

    def test_multi_run_sieved(self):
        runs = runs_of(StridedView(0, 4, 2, 4))
        plan = plan_view_read(runs, 16, sieve=True)
        assert plan.mode == "sieved"
        assert plan.covering  # dense pattern coalesces
        assert plan.n_view_records == 8

    def test_split_and_scatter_reassemble_view_order(self):
        runs = runs_of(StridedView(0, 3, 2, 4))  # records 0,1 4,5 8,9
        plan = plan_view_read(runs, 1, sieve=True)
        assert plan.mode == "sieved"
        # fabricate the covering reads from a known media image
        media = np.arange(12, dtype=np.int64).reshape(-1, 1) * 10
        cat = np.concatenate(
            [media[c.offset:c.offset + c.nbytes] for c in plan.covering]
        )
        out = plan.scatter(plan.split(cat))
        want = media[[0, 1, 4, 5, 8, 9]]
        assert np.array_equal(out, want)


class TestWritePlan:
    def test_modes(self):
        assert plan_view_write([]).mode == "empty"
        one = runs_of(StridedView(3, 1, 5, 5))
        assert plan_view_write(one).mode == "contiguous"
        assert plan_view_write(one, sieve=True).mode == "contiguous"
        many = runs_of(StridedView(0, 4, 2, 8))
        assert plan_view_write(many).mode == "list"
        assert plan_view_write(many, 16, sieve=True).mode == "sieved"

    def test_row_of_is_view_order(self):
        runs = runs_of(StridedView(2, 3, 2, 5))  # 2,3 7,8 12,13
        plan = plan_view_write(runs)
        assert plan.row_of == {2: 0, 7: 2, 12: 4}

    def test_overlay_patches_only_the_pieces(self):
        runs = runs_of(StridedView(0, 2, 2, 4))  # records 0,1 4,5
        plan = plan_view_write(runs, 1, sieve=True)
        assert plan.mode == "sieved"
        (window, pieces), = plan.windows
        assert not plan.is_whole_window(window, pieces)
        buf = np.full((window.nbytes, 1), -1, dtype=np.int64)
        decoded = np.arange(4, dtype=np.int64).reshape(-1, 1) + 100
        out = plan.overlay(window, pieces, buf, decoded)
        # wanted rows replaced, hole rows (2,3) untouched
        assert out[0, 0] == 100 and out[1, 0] == 101
        assert out[2, 0] == -1 and out[3, 0] == -1
        assert out[4, 0] == 102 and out[5, 0] == 103
        # and the original buffer is not mutated
        assert np.all(buf == -1)

    def test_whole_window_fast_path(self):
        # two adjacent runs coalesce into one fully-covered window
        runs = runs_of(IndexedView(((0, 4), (4, 4))))
        plan = plan_view_write(runs, 1, sieve=True)
        if plan.mode == "sieved":
            for window, pieces in plan.windows:
                assert plan.is_whole_window(window, pieces)
