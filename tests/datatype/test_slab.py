"""Property and unit tests for hyperslab lowering (repro.datatype.slab)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import OrganizationError
from repro.datatype import (
    ContiguousView,
    IndexedView,
    NestedStridedView,
    StridedView,
    slab_indices,
    slab_size,
    slab_to_view,
    validate_slab,
)


@st.composite
def slabs(draw, max_rank=4, max_extent=8):
    """A random (shape, start, count) with 0 <= start+count <= extent."""
    rank = draw(st.integers(0, max_rank))
    shape = tuple(draw(st.integers(0, max_extent)) for _ in range(rank))
    start, count = [], []
    for ext in shape:
        s = draw(st.integers(0, ext))
        c = draw(st.integers(0, ext - s))
        start.append(s)
        count.append(c)
    return shape, tuple(start), tuple(count)


class TestValidate:
    def test_normalizes_to_int_tuples(self):
        s, c = validate_slab((4, 5), (np.int64(1), 2), [2, np.int32(3)])
        assert s == (1, 2) and c == (2, 3)
        assert all(isinstance(v, int) for v in s + c)

    def test_zero_count_is_legal(self):
        assert validate_slab((4,), (4,), (0,)) == ((4,), (0,))

    @pytest.mark.parametrize("start,count,msg", [
        ((-1, 0), (1, 1), "start -1 is negative"),
        ((0, 0), (-2, 1), "count -2 is negative"),
        ((3, 0), (2, 1), "slab [3, 5) outside extent 4"),
        ((0, 5), (0, 1), "slab [5, 6) outside extent 5"),
    ])
    def test_bad_slabs_name_the_dimension(self, start, count, msg):
        with pytest.raises(OrganizationError, match=r"dimension \d"):
            validate_slab((4, 5), start, count)
        with pytest.raises(OrganizationError) as exc:
            validate_slab((4, 5), start, count)
        assert msg in str(exc.value)

    def test_rank_mismatch(self):
        with pytest.raises(OrganizationError, match="rank mismatch"):
            validate_slab((4, 5), (0,), (1, 1))

    def test_non_integer_indices(self):
        with pytest.raises(OrganizationError, match="integers"):
            validate_slab((4,), ("a",), (1,))

    def test_negative_shape(self):
        with pytest.raises(OrganizationError, match="negative extent"):
            validate_slab((-1,), (0,), (0,))


class TestCompilation:
    def test_full_extent_is_one_contiguous_run(self):
        v = slab_to_view((4, 6), (0, 0), (4, 6))
        assert isinstance(v, ContiguousView)
        assert v.runs()[0].start == 0 and v.runs()[0].count == 24

    def test_empty_slab_is_empty_indexed_view(self):
        v = slab_to_view((4, 6), (2, 3), (0, 2))
        assert isinstance(v, IndexedView)
        assert v.flatten() == []

    def test_row_slab_is_strided(self):
        v = slab_to_view((4, 6), (1, 2), (2, 3))
        assert isinstance(v, StridedView)

    def test_3d_partial_is_nested(self):
        v = slab_to_view((4, 5, 6), (1, 1, 1), (2, 2, 2))
        assert isinstance(v, NestedStridedView)

    def test_rank0_scalar(self):
        v = slab_to_view((), (), (), base=100, scale=8)
        runs = v.runs()
        assert runs[0].start == 100 and runs[0].count == 8

    def test_scale_and_base_validation(self):
        with pytest.raises(OrganizationError, match="scale"):
            slab_to_view((4,), (0,), (2,), scale=0)
        with pytest.raises(OrganizationError, match="base"):
            slab_to_view((4,), (0,), (2,), base=-1)

    @given(slabs())
    @settings(max_examples=200, deadline=None)
    def test_view_indices_match_slab_indices(self, slab):
        """The compiled view selects exactly the slab's element set, in
        ascending (file) order — the oracle is the raw index expansion."""
        shape, start, count = slab
        want = slab_indices(shape, start, count)
        got = slab_to_view(shape, start, count).indices()
        assert np.array_equal(np.asarray(got, dtype=np.int64), want)

    @given(slabs(), st.integers(1, 5), st.integers(0, 100))
    @settings(max_examples=100, deadline=None)
    def test_scale_base_places_every_element(self, slab, scale, base):
        shape, start, count = slab
        elems = slab_indices(shape, start, count)
        want = (base + elems * scale)[:, None] + np.arange(scale)
        got = slab_to_view(shape, start, count, base=base, scale=scale)
        assert np.array_equal(
            np.asarray(got.indices(), dtype=np.int64), want.reshape(-1)
        )

    @given(slabs())
    @settings(max_examples=100, deadline=None)
    def test_size_matches_index_count(self, slab):
        shape, start, count = slab
        assert slab_size(count) == len(slab_indices(shape, start, count))

    @given(slabs())
    @settings(max_examples=100, deadline=None)
    def test_indices_strictly_ascending(self, slab):
        shape, start, count = slab
        idx = slab_indices(shape, start, count)
        assert np.all(np.diff(idx) > 0) if idx.size > 1 else True
