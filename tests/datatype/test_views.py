"""File views: descriptor algebra and the ParallelFile view surface."""

import numpy as np
import pytest

from repro import Environment
from repro.datatype import (
    ContiguousView,
    IndexedView,
    NestedStridedView,
    StridedView,
    view_of_map,
)
from tests.fs.conftest import build_pfs


def make_file(env, org="IS", n=128, rpb=2, p=4, **kw):
    pfs = build_pfs(env)
    return pfs.create(
        "vf", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p, **kw,
    )


def seed(env, f, data):
    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))


def read_back(env, f):
    def proc():
        out = yield from f.global_view().read()
        return out

    return env.run(env.process(proc()))


class TestDescriptors:
    def test_contiguous(self):
        v = ContiguousView(4, 6)
        assert [(r.start, r.count) for r in v.runs()] == [(4, 6)]
        assert v.n_view_records == 6
        assert v.extent == (4, 10)
        assert list(v.indices()) == list(range(4, 10))
        assert len(v) == 6

    def test_strided(self):
        v = StridedView(2, 3, 2, 5)  # segments at 2, 7, 12
        assert [(r.start, r.count) for r in v.runs()] == [
            (2, 2), (7, 2), (12, 2),
        ]
        assert v.n_view_records == 6
        assert v.extent == (2, 14)
        assert list(v.indices()) == [2, 3, 7, 8, 12, 13]

    def test_strided_full_stride_flattens_contiguous(self):
        # stride == seg_records: the segments are really one run
        v = StridedView(0, 4, 3, 3)
        assert [(r.start, r.count) for r in v.flatten()] == [(0, 12)]

    def test_nested_strided(self):
        inner = StridedView(0, 2, 1, 2)  # records {0, 2}
        v = NestedStridedView(inner, 3, 10)
        assert list(v.indices()) == [0, 2, 10, 12, 20, 22]
        assert v.n_view_records == 6

    def test_indexed_and_from_indices(self):
        v = IndexedView([(5, 2), (10, 1)])
        assert list(v.indices()) == [5, 6, 10]
        w = IndexedView.from_indices([5, 6, 10])
        assert [(r.start, r.count) for r in w.runs()] == [(5, 2), (10, 1)]

    def test_byte_ranges(self):
        v = IndexedView([(2, 2), (8, 1)])
        assert v.byte_ranges(16) == [(32, 32), (128, 16)]

    def test_validation(self):
        with pytest.raises(ValueError):
            ContiguousView(-1, 4)
        with pytest.raises(ValueError):
            ContiguousView(0, 0)
        with pytest.raises(ValueError):
            StridedView(0, 2, 4, 3)  # stride < segment
        with pytest.raises(ValueError):
            IndexedView([(0, 4), (2, 4)])  # overlap
        with pytest.raises(ValueError):
            IndexedView([(8, 2), (0, 2)])  # out of order
        with pytest.raises(ValueError):
            IndexedView.from_indices([3, 3, 4])  # not strictly ascending
        with pytest.raises(ValueError):
            NestedStridedView(ContiguousView(0, 5), 2, 4)  # stride < span

    def test_view_of_map_covers_partition(self):
        env = Environment()
        f = make_file(env, "IS")
        for q in range(4):
            v = view_of_map(f.map, q)
            assert np.array_equal(v.indices(), f.map.records_of(q))


class TestReadWriteView:
    @pytest.mark.parametrize("batch", [False, True])
    @pytest.mark.parametrize("sieve", [False, True])
    def test_read_view_matches_fancy_index(self, batch, sieve):
        env = Environment()
        pfs = build_pfs(env)
        if batch:
            pfs.set_batching(True)
        f = pfs.create(
            "vf", "IS", n_records=128, record_size=16, dtype="float64",
            records_per_block=2, n_processes=4,
        )
        data = np.random.default_rng(2).random((128, 2))
        seed(env, f, data)
        v = StridedView(1, 12, 3, 10)

        def proc():
            out = yield f.read_view(v, sieve=sieve, sieve_factor=8.0)
            return out

        out = env.run(env.process(proc()))
        assert np.array_equal(out, data[v.indices()])

    @pytest.mark.parametrize("sieve", [False, True])
    def test_write_view_roundtrip(self, sieve):
        env = Environment()
        f = make_file(env)
        data = np.random.default_rng(3).random((128, 2))
        seed(env, f, data)
        v = StridedView(0, 16, 2, 8)
        new = np.random.default_rng(4).random((v.n_view_records, 2))

        def proc():
            n = yield f.write_view(new, v, sieve=sieve, sieve_factor=16.0)
            return n

        assert env.run(env.process(proc())) == v.n_view_records
        expected = data.copy()
        expected[v.indices()] = new
        assert np.array_equal(read_back(env, f), expected)

    def test_set_view_default(self):
        env = Environment()
        f = make_file(env)
        data = np.random.default_rng(5).random((128, 2))
        seed(env, f, data)
        assert f.view is None
        prev = f.set_view(IndexedView([(3, 4), (40, 2)]))
        assert prev is None

        def proc():
            out = yield f.read_view()
            return out

        out = env.run(env.process(proc()))
        assert np.array_equal(out, data[f.view.indices()])

    def test_read_view_without_view_rejected(self):
        env = Environment()
        f = make_file(env)
        with pytest.raises(ValueError):
            f.read_view()

    def test_view_beyond_eof_rejected(self):
        env = Environment()
        f = make_file(env, n=16)
        with pytest.raises(ValueError):
            f.set_view(ContiguousView(10, 10))
        with pytest.raises(ValueError):
            f.read_view(ContiguousView(0, 17))

    def test_write_view_count_mismatch_rejected(self):
        env = Environment()
        f = make_file(env)
        v = ContiguousView(0, 4)
        with pytest.raises(ValueError):
            f.write_view(np.zeros((3, 2)), v)

    def test_contiguous_view_uses_single_transfer(self):
        env = Environment()
        f = make_file(env)
        data = np.random.default_rng(6).random((128, 2))
        seed(env, f, data)

        def proc():
            out = yield f.read_view(ContiguousView(8, 16))
            return out

        out = env.run(env.process(proc()))
        assert np.array_equal(out, data[8:24])
