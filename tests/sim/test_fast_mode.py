"""The fast engine loop: identity with the hooked loop, sleep pooling.

The fast loop (``Environment(fast=None)``, the default) inlines the
event-processing step and recycles pooled ``env.sleep`` timeouts; the
hooked loop (``fast=False``) is the pre-optimization baseline and the
one sanitizers require. The contract tested here: both flavours produce
byte-identical simulated behaviour — same event order, same clock, same
step counts — and pooling never leaks a value between sleeps.
"""

import pytest

from repro.sanitize import attach
from repro.sim import Environment
from repro.sim.engine import Interrupt, SimulationError, Timeout
from repro.sim.resources import Resource


def _require_fast_mode():
    """Skip when the suite-wide --sanitize hook forces the hooked loop."""
    if Environment().sanitizer is not None:
        pytest.skip("suite runs under --sanitize: every env is hooked")


def _mixed_program(env, log):
    """Timeouts, sleeps, a resource, joins — a little of everything."""
    res = Resource(env, capacity=1)

    def worker(i):
        yield env.timeout(i * 0.5)
        with res.request() as req:
            yield req
            log.append(("got", i, env.now))
            yield env.sleep(1.0)
        yield env.sleep(0.25)
        log.append(("done", i, env.now))
        return i * 10

    def root():
        procs = [env.process(worker(i)) for i in range(4)]
        first = yield env.any_of(procs)
        log.append(("first", sorted(first.values()), env.now))
        got = yield env.all_of(procs)
        log.append(("all", sorted(got.values()), env.now))

    return env.process(root())


def _run_mixed(fast):
    env = Environment(fast=None if fast else False)
    log = []
    env.run(_mixed_program(env, log))
    return env, log


def test_fast_loop_is_identical_to_hooked_loop():
    _require_fast_mode()
    fast_env, fast_log = _run_mixed(fast=True)
    slow_env, slow_log = _run_mixed(fast=False)
    assert fast_env.fast_mode and not slow_env.fast_mode
    assert fast_log == slow_log
    assert fast_env.now == slow_env.now
    assert fast_env.steps == slow_env.steps
    assert fast_env._eid == slow_env._eid
    assert fast_env.steps > 0


def test_sleep_is_pooled_and_recycled_in_fast_mode():
    _require_fast_mode()
    env = Environment()

    def prog():
        first = env.sleep(1.0)
        yield first
        # `first` is recycled after its processing completes — i.e. once
        # this resumption finishes — so it is reused one sleep later:
        second = env.sleep(2.0)
        assert second is not first
        yield second
        third = env.sleep(0.5)
        assert third is first  # recycled object, same identity
        yield third

    env.run(env.process(prog()))
    assert env.now == 3.5
    assert env._timeout_pool  # the last sleep went back to the pool


def test_sleep_is_a_plain_timeout_in_hooked_mode():
    env = Environment(fast=False)

    def prog():
        first = env.sleep(1.0)
        yield first
        second = env.sleep(1.0)
        assert second is not first
        assert type(first) is Timeout
        yield second

    env.run(env.process(prog()))
    assert not env._timeout_pool


def test_sleep_rejects_negative_delay():
    env = Environment()

    def prog():
        yield env.sleep(1.0)  # prime the pool
        with pytest.raises(ValueError):
            env.sleep(-1.0)
        yield env.timeout(0)

    env.run(env.process(prog()))


@pytest.mark.parametrize("fast", [True, False])
def test_interrupt_during_sleep(fast):
    env = Environment(fast=None if fast else False)
    log = []

    def sleeper():
        try:
            yield env.sleep(10.0)
        except Interrupt as i:
            log.append(("interrupted", i.cause, env.now))
        # pooling must survive an abandoned sleep: this one still works
        yield env.sleep(1.0)
        log.append(("woke", env.now))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt("enough")

    p = env.process(sleeper())
    env.process(interrupter(p))
    env.run()
    assert log == [("interrupted", "enough", 3.0), ("woke", 4.0)]
    assert env.now == 10.0  # the abandoned timeout still fires


def test_strict_forces_hooked_loop():
    env = Environment(strict=True)
    assert env.sanitizer is not None
    assert not env.fast_mode


def test_attaching_sanitizer_disables_fast_loop():
    _require_fast_mode()
    env = Environment()
    assert env.fast_mode

    def prog():
        yield env.timeout(1.0)
        yield env.timeout(1.0)

    env.process(prog())
    env.run(until=1.0)
    attach(env)
    assert not env.fast_mode
    env.run()
    assert env.now == 2.0


def test_run_until_event_in_fast_mode():
    env = Environment()

    def prog():
        yield env.timeout(2.5)
        return "payload"

    value = env.run(env.process(prog()))
    assert value == "payload"
    assert env.now == 2.5


def test_steps_counts_events_in_both_flavours():
    for fast in (True, False):
        env = Environment(fast=None if fast else False)

        def prog():
            for _ in range(5):
                yield env.timeout(1.0)

        env.run(env.process(prog()))
        # 1 Initialize + 5 timeouts + the Process completion event
        assert env.steps == 7, fast


def test_failed_event_still_propagates_in_fast_mode():
    env = Environment()

    def prog():
        ev = env.event()
        ev.fail(SimulationError("boom"))
        with pytest.raises(SimulationError):
            yield ev

    env.run(env.process(prog()))
