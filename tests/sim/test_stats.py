"""Unit tests for statistics collectors."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Tally, TimeWeighted, UtilizationTracker


class TestTally:
    def test_empty(self):
        t = Tally()
        assert t.count == 0
        assert math.isnan(t.mean)
        assert math.isnan(t.variance)

    def test_known_values(self):
        t = Tally()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            t.observe(x)
        assert t.count == 8
        assert t.mean == pytest.approx(5.0)
        assert t.min == 2.0 and t.max == 9.0
        assert t.total == 40.0
        # sample variance of the classic example set
        assert t.variance == pytest.approx(32 / 7)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=2, max_size=200))
    def test_matches_numpy(self, xs):
        t = Tally()
        for x in xs:
            t.observe(x)
        assert t.mean == pytest.approx(np.mean(xs), rel=1e-9, abs=1e-6)
        assert t.variance == pytest.approx(np.var(xs, ddof=1), rel=1e-6, abs=1e-4)

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50),
    )
    def test_merge_equals_combined(self, xs, ys):
        a, b, c = Tally(), Tally(), Tally()
        for x in xs:
            a.observe(x)
            c.observe(x)
        for y in ys:
            b.observe(y)
            c.observe(y)
        m = a.merge(b)
        assert m.count == c.count
        assert m.mean == pytest.approx(c.mean, rel=1e-9, abs=1e-6)
        assert m.total == pytest.approx(c.total, rel=1e-9, abs=1e-6)
        assert m.min == c.min and m.max == c.max

    def test_merge_with_empty(self):
        a, empty = Tally(), Tally()
        a.observe(3.0)
        assert a.merge(empty).mean == 3.0
        assert empty.merge(a).mean == 3.0


class TestTimeWeighted:
    def test_piecewise_constant_average(self):
        tw = TimeWeighted(initial=0)
        tw.record(10, 4)   # 0 for [0,10)
        tw.record(20, 2)   # 4 for [10,20)
        # 2 for [20,30)
        assert tw.mean(30) == pytest.approx((0 * 10 + 4 * 10 + 2 * 10) / 30)
        assert tw.max == 4
        assert tw.current == 2

    def test_zero_span(self):
        tw = TimeWeighted(initial=5)
        assert tw.mean(0) == 5

    def test_time_backwards_rejected(self):
        tw = TimeWeighted()
        tw.record(5, 1)
        import pytest as _pytest

        with _pytest.raises(ValueError):
            tw.record(4, 2)


class TestUtilizationTracker:
    def test_half_busy(self):
        u = UtilizationTracker()
        u.busy(0)
        u.idle(5)
        assert u.utilization(10) == pytest.approx(0.5)

    def test_still_busy_counts_to_now(self):
        u = UtilizationTracker()
        u.busy(2)
        assert u.utilization(10) == pytest.approx(0.8)

    def test_idempotent_busy(self):
        u = UtilizationTracker()
        u.busy(0)
        u.busy(3)  # no-op: already busy
        u.idle(4)
        assert u.utilization(8) == pytest.approx(0.5)

    def test_never_busy(self):
        u = UtilizationTracker()
        assert u.utilization(100) == 0.0


class TestSummaryRow:
    def test_str_renders_label_value_unit(self):
        from repro.sim.stats import summary

        row = summary("striped scan", 12.5, "MB/s", {"devices": 4})
        s = str(row)
        assert "striped scan" in s and "12.5" in s and "MB/s" in s
        assert "devices=4" in s

    def test_no_extra(self):
        from repro.sim.stats import summary

        assert "MB/s" in str(summary("x", 1.0, "MB/s"))


class TestPercentileTally:
    def test_empty_is_nan(self):
        from repro.sim import PercentileTally

        t = PercentileTally()
        assert math.isnan(t.percentile(50))

    def test_validates_range(self):
        from repro.sim import PercentileTally

        t = PercentileTally()
        t.observe(1.0)
        with pytest.raises(ValueError):
            t.percentile(-1)
        with pytest.raises(ValueError):
            t.percentile(101)

    def test_known_quartiles(self):
        from repro.sim import PercentileTally

        t = PercentileTally()
        for v in [4.0, 1.0, 3.0, 2.0]:  # unsorted on purpose
            t.observe(v)
        assert t.percentile(0) == 1.0
        assert t.percentile(100) == 4.0
        assert t.percentile(50) == pytest.approx(2.5)

    def test_matches_numpy_linear_interpolation(self):
        from repro.sim import PercentileTally

        rng = np.random.default_rng(7)
        samples = rng.uniform(0, 100, size=257)
        t = PercentileTally()
        for v in samples:
            t.observe(float(v))
        for q in (5, 50, 95, 99):
            assert t.percentile(q) == pytest.approx(
                float(np.percentile(samples, q))
            )

    def test_still_a_tally(self):
        from repro.sim import PercentileTally

        t = PercentileTally()
        t.observe(2.0)
        t.observe(4.0)
        assert t.count == 2
        assert t.mean == pytest.approx(3.0)


class TestPercentileTallyReservoir:
    def test_bounds_memory_at_reservoir_size(self):
        from repro.sim import PercentileTally

        t = PercentileTally(reservoir=64)
        for v in range(10_000):
            t.observe(float(v))
        assert len(t._samples) == 64
        assert t.count == 10_000

    def test_exact_below_capacity(self):
        from repro.sim import PercentileTally

        t = PercentileTally(reservoir=100)
        for v in [4.0, 1.0, 3.0, 2.0]:
            t.observe(v)
        assert t.percentile(50) == pytest.approx(2.5)

    def test_moments_stay_exact(self):
        from repro.sim import PercentileTally

        exact = PercentileTally()
        sampled = PercentileTally(reservoir=16)
        rng = np.random.default_rng(3)
        for v in rng.exponential(5.0, size=5_000):
            exact.observe(float(v))
            sampled.observe(float(v))
        assert sampled.count == exact.count
        assert sampled.mean == pytest.approx(exact.mean)
        assert sampled.min == exact.min
        assert sampled.max == exact.max

    def test_p95_error_is_small(self):
        from repro.sim import PercentileTally

        rng = np.random.default_rng(11)
        samples = rng.exponential(10.0, size=50_000)
        t = PercentileTally(reservoir=2048, rng=42)
        for v in samples:
            t.observe(float(v))
        true_p95 = float(np.percentile(samples, 95))
        # Algorithm R keeps an unbiased uniform sample: with 2048 kept
        # samples the p95 estimate lands within a few percent
        assert t.percentile(95) == pytest.approx(true_p95, rel=0.10)

    def test_deterministic_given_seed(self):
        from repro.sim import PercentileTally

        def run():
            t = PercentileTally(reservoir=32, rng=7)
            for v in range(1_000):
                t.observe(float(v * 13 % 997))
            return sorted(t._samples)

        assert run() == run()

    def test_rejects_bad_size(self):
        from repro.sim import PercentileTally

        with pytest.raises(ValueError):
            PercentileTally(reservoir=0)
