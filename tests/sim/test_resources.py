"""Unit tests for simulated resources (Resource, Store, Container)."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store
from repro.sim.engine import SimulationError


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def user(name):
            with res.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(10)
                log.append((name, "out", env.now))

        env.process(user("a"))
        env.process(user("b"))
        env.run()
        assert log == [
            ("a", "in", 0), ("a", "out", 10),
            ("b", "in", 10), ("b", "out", 20),
        ]

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        done = []

        def user(name):
            with res.request() as req:
                yield req
                yield env.timeout(10)
                done.append((name, env.now))

        for n in "abc":
            env.process(user(n))
        env.run()
        assert done == [("a", 10), ("b", 10), ("c", 20)]

    def test_fifo_grant_order(self):
        env = Environment()
        res = Resource(env, capacity=1)
        order = []

        def user(name, arrive):
            yield env.timeout(arrive)
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(5)

        env.process(user("late", 2))
        env.process(user("early", 1))
        env.run()
        assert order == ["early", "late"]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)
        observed = {}

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def waiter():
            yield env.timeout(1)
            req = res.request()
            yield env.timeout(1)
            observed["count"] = res.count
            observed["queue"] = res.queue_length
            yield req
            res.release(req)

        env.process(holder())
        env.process(waiter())
        env.run()
        assert observed == {"count": 1, "queue": 1}

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)


class TestPriorityResource:
    def test_lower_priority_value_served_first(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def user(name, priority):
            # All queue behind the initial holder.
            yield env.timeout(1)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5)

        env.process(holder())
        env.process(user("low", 10))
        env.process(user("high", 1))
        env.process(user("mid", 5))
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_same_priority(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def user(name):
            yield env.timeout(1)
            with res.request(priority=3) as req:
                yield req
                order.append(name)

        env.process(holder())
        for n in "xyz":
            env.process(user(n))
        env.run()
        assert order == ["x", "y", "z"]

    def test_fifo_within_priority_survives_cancellation(self):
        # Regression pin: cancelling a waiter calls heapify() on the
        # heap, which is free to reorder entries that compare equal. The
        # (priority, _order) tie-break in Request.__lt__ is what keeps
        # equal-priority waiters in arrival order through that reshuffle.
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(name, delay):
            yield env.timeout(delay)
            with res.request(priority=3) as req:
                yield req
                order.append(name)

        def quitter():
            yield env.timeout(1.5)  # lands between 'a' and 'b'
            req = res.request(priority=3)
            yield env.timeout(3)
            res.release(req)  # cancel while still queued -> heapify

        env.process(holder())
        for i, name in enumerate("abcde"):
            env.process(user(name, 1 + i))
        env.process(quitter())
        env.run()
        assert order == ["a", "b", "c", "d", "e"]

    def test_interleaved_priorities_keep_arrival_order_per_class(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        order = []

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def user(name, priority, delay):
            yield env.timeout(delay)
            with res.request(priority=priority) as req:
                yield req
                order.append(name)

        env.process(holder())
        # arrivals alternate between two priority classes
        arrivals = [("h1", 1), ("l1", 5), ("h2", 1), ("l2", 5), ("h3", 1)]
        for i, (name, prio) in enumerate(arrivals):
            env.process(user(name, prio, 1 + i))
        env.run()
        assert order == ["h1", "h2", "h3", "l1", "l2"]


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        when = []

        def consumer():
            item = yield store.get()
            when.append((item, env.now))

        def producer():
            yield env.timeout(5)
            yield store.put("x")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert when == [("x", 5)]

    def test_bounded_put_blocks_until_room(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put("a")
            log.append(("put a", env.now))
            yield store.put("b")
            log.append(("put b", env.now))

        def consumer():
            yield env.timeout(4)
            item = yield store.get()
            log.append((f"got {item}", env.now))

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("put a", 0), ("got a", 4), ("put b", 4)]

    def test_len(self):
        env = Environment()
        store = Store(env)

        def proc():
            yield store.put(1)
            yield store.put(2)

        env.process(proc())
        env.run()
        assert len(store) == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Store(Environment(), capacity=0)


class TestContainer:
    def test_get_blocks_until_level(self):
        env = Environment()
        tank = Container(env, capacity=100, init=0)
        log = []

        def consumer():
            yield tank.get(30)
            log.append(("got", env.now, tank.level))

        def producer():
            yield env.timeout(2)
            yield tank.put(50)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [("got", 2, 20.0)]

    def test_put_blocks_at_capacity(self):
        env = Environment()
        tank = Container(env, capacity=10, init=8)
        log = []

        def producer():
            yield tank.put(5)
            log.append(("put", env.now))

        def consumer():
            yield env.timeout(3)
            yield tank.get(4)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [("put", 3)]
        assert tank.level == 9.0

    def test_oversized_request_rejected(self):
        env = Environment()
        tank = Container(env, capacity=10)
        with pytest.raises(SimulationError):
            tank.get(11)
        with pytest.raises(SimulationError):
            tank.put(11)

    def test_init_bounds(self):
        with pytest.raises(ValueError):
            Container(Environment(), capacity=5, init=6)


class TestDoubleRelease:
    def test_double_release_is_noop_and_grants_once(self):
        """Releasing an already-released request must not hand the freed
        slot to waiters a second time."""
        env = Environment()
        res = Resource(env, capacity=1)
        grants = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(1)
            res.release(req)
            yield env.timeout(1)
            res.release(req)  # double release: must be a no-op

        def waiter(name, delay):
            yield env.timeout(delay)
            req = res.request()
            yield req
            grants.append((name, env.now))
            yield env.timeout(10)  # hold past the double release
            res.release(req)

        env.process(holder())
        env.process(waiter("w1", 0.5))
        env.process(waiter("w2", 0.6))
        env.run()

        # w1 got the slot at t=1; the double release at t=2 must NOT have
        # granted w2 while w1 still held it
        assert grants == [("w1", 1), ("w2", 11)]
        assert res.count == 0

    def test_double_release_under_sanitizer_is_clean(self):
        env = Environment(strict=True)
        res = Resource(env, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)
            res.release(req)

        env.run(env.process(proc()))
        assert env.sanitizer.clean

    def test_release_of_waiting_request_cancels_it(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def quitter():
            yield env.timeout(1)
            req = res.request()
            yield env.timeout(1)
            res.release(req)  # give up before being granted

        env.process(holder())
        env.process(quitter())
        env.run()
        assert res.count == 0
        assert res.queue_length == 0


class TestPeekWaiter:
    def test_fifo_peek_is_next_grant(self):
        env = Environment()
        res = Resource(env, capacity=1)
        granted = []

        def holder():
            req = res.request()
            yield req
            yield env.timeout(5)
            res.release(req)

        def waiter(name):
            req = res.request()
            yield req
            granted.append(name)
            res.release(req)

        def checker():
            yield env.timeout(1)
            peeked = res.peek_waiter()
            assert peeked is not None
            before = res.queue_length
            assert res.peek_waiter() is peeked  # pure: no dequeue
            assert res.queue_length == before

        env.process(holder())
        env.process(waiter("a"))
        env.process(waiter("b"))
        env.process(checker())
        env.run()
        assert granted == ["a", "b"]

    def test_peek_skips_cancelled_waiters(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            hold = res.request()
            yield hold
            first = res.request()  # waits
            second = res.request()  # waits behind it
            assert res.peek_waiter() is first
            res.release(first)  # cancel while waiting
            assert res.peek_waiter() is second
            assert res.queue_length == 1
            res.release(second)
            res.release(hold)
            return
            yield  # pragma: no cover

        env.run(env.process(proc()))

    def test_priority_peek_is_min_live_request(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)

        def proc():
            hold = res.request(priority=0)
            yield hold
            low = res.request(priority=5)
            high = res.request(priority=1)
            assert res.peek_waiter() is high
            res.release(high)  # cancel: low becomes next despite heap order
            assert res.peek_waiter() is low
            res.release(low)
            res.release(hold)
            assert res.peek_waiter() is None
            return
            yield  # pragma: no cover

        env.run(env.process(proc()))

    def test_empty_peek(self):
        env = Environment()
        assert Resource(env, capacity=1).peek_waiter() is None
        assert PriorityResource(env, capacity=1).peek_waiter() is None
