"""Sharded simulation: conservative windows, channels, digest identity.

The load-bearing claim (pinned end-to-end in
``tests/perf/test_determinism.py``'s sharded cell and spot-checked here):
running N independent file systems under :class:`ShardedSimulation`'s
window loop produces *identical per-file-system outcomes* to running the
same N file systems on one single-heap environment — sharding changes
scheduling structure, never simulation results.
"""

import math

import pytest

from repro.baselines import build_parallel_fs, build_sharded_fs
from repro.perf import WorkloadConfig, fs_digest, run_org
from repro.sim import Environment, Shard, ShardChannel, ShardedSimulation
from repro.trace import NullTraceRecorder

LOOKAHEAD = 1e-4


class TestShardedSimulation:
    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedSimulation(0, LOOKAHEAD)
        with pytest.raises(ValueError):
            ShardedSimulation(2, 0.0)
        with pytest.raises(ValueError):
            ShardedSimulation(2, -1.0)
        with pytest.raises(ValueError):
            ShardedSimulation(2, math.inf)

    def test_shard_clocks_advance_in_windows(self):
        sim = ShardedSimulation(3, LOOKAHEAD)

        def ticker(shard, period, n):
            def proc():
                for _ in range(n):
                    yield shard.env.sleep(period)
            return proc()

        for i, shard in enumerate(sim):
            shard.process(ticker(shard, 0.001 * (i + 1), 10))
        events = sim.run()
        assert events > 0
        assert sim.windows > 0
        assert sim[0].env.now == pytest.approx(0.010)
        assert sim[2].env.now == pytest.approx(0.030)

    def test_run_until_bounds_and_aligns_clocks(self):
        sim = ShardedSimulation(2, LOOKAHEAD)

        def ticker(shard):
            def proc():
                for _ in range(100):
                    yield shard.env.sleep(0.001)
            return proc()

        for shard in sim:
            shard.process(ticker(shard))
        sim.run(until=0.05)
        for shard in sim:
            assert shard.env.now == pytest.approx(0.05)
        # events at/after `until` stay queued
        assert sim.peek() >= 0.05

    def test_peek_empty_is_inf(self):
        sim = ShardedSimulation(2, LOOKAHEAD)
        assert sim.peek() == math.inf
        assert sim.run() == 0


class TestShardChannel:
    def test_channel_rejects_sub_lookahead_latency(self):
        sim = ShardedSimulation(2, LOOKAHEAD)
        with pytest.raises(ValueError):
            sim.channel(0, 1, latency=LOOKAHEAD / 2)

    def test_channel_rejects_self_loop(self):
        sim = ShardedSimulation(2, LOOKAHEAD)
        with pytest.raises(ValueError):
            ShardChannel(sim, sim[0], sim[0], LOOKAHEAD)

    def test_send_rejects_sub_lookahead_delay(self):
        sim = ShardedSimulation(2, LOOKAHEAD)
        ch = sim.channel(0, 1)
        with pytest.raises(ValueError):
            ch.send("x", delay=LOOKAHEAD / 10)

    def test_cross_shard_ping_pong_timing(self):
        sim = ShardedSimulation(2, lookahead=LOOKAHEAD)
        fwd = sim.channel(0, 1, latency=5e-4)
        back = sim.channel(1, 0, latency=LOOKAHEAD)
        log = []

        def pinger(shard):
            fwd.send("ping")  # arrives at 5e-4 on shard 1
            got = yield back.recv()
            log.append(("pong", got, shard.env.now))

        def ponger(shard):
            got = yield fwd.recv()
            log.append(("ping", got, shard.env.now))
            back.send(got + "/pong")

        sim[0].process(pinger(sim[0]))
        sim[1].process(ponger(sim[1]))
        sim.run()
        assert log == [
            ("ping", "ping", pytest.approx(5e-4)),
            ("pong", "ping/pong", pytest.approx(6e-4)),
        ]
        assert fwd.sent == fwd.received == 1
        assert back.sent == back.received == 1
        assert sim.messages == 2

    def test_undelivered_payloads_counted(self):
        sim = ShardedSimulation(2, LOOKAHEAD)
        ch = sim.channel(0, 1)
        ch.send("a")
        ch.send("b")
        sim.run()
        assert len(ch) == 2  # delivered, nobody recv'd


class TestDigestIdentity:
    """Sharded vs single-heap: identical file-system outcomes."""

    ORGS = ("PS", "IS", "GDA", "PDA")

    def _config(self):
        return WorkloadConfig(n_records=96)

    def test_sharded_matches_single_heap(self):
        n = len(self.ORGS)
        # sharded: one env + fs per shard
        spfs = build_sharded_fs(
            n, 2, recorder=NullTraceRecorder(), io_nodes=1, batch_io=True
        )
        files = []
        for shard, org in zip(spfs.shards, self.ORGS):
            files.append(run_org(shard.env, spfs[shard.index], org, self._config()))
        spfs.run()
        sharded = [
            fs_digest(spfs[i], [files[i]]) for i in range(n)
        ]
        # single heap: the same n file systems on one environment
        env = Environment()
        singles = []
        sfiles = []
        for org in self.ORGS:
            pfs = build_parallel_fs(
                env, 2, recorder=NullTraceRecorder(), io_nodes=1, batch_io=True
            )
            singles.append(pfs)
            sfiles.append(run_org(env, pfs, org, self._config()))
        env.run()
        single = [
            fs_digest(singles[i], [sfiles[i]]) for i in range(n)
        ]
        assert sharded == single

    def test_build_sharded_fs_rejects_env(self):
        with pytest.raises(ValueError):
            build_sharded_fs(2, 2, env=Environment())

    def test_build_sharded_fs_accepts_prebuilt_sim(self):
        sim = ShardedSimulation(2, lookahead=5e-4)
        spfs = build_sharded_fs(sim, 2, recorder=NullTraceRecorder())
        assert spfs.sim is sim
        assert len(spfs) == 2
        assert all(isinstance(s, Shard) for s in spfs.shards)
