"""Property tests for the simulation engine's core guarantees.

DESIGN.md's determinism contract: the same program and seeds produce the
same event order and final clock; time never runs backwards; every
spawned process completes when the queue drains.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, SimLock


def random_program(env, seed, log):
    """A random process graph: timeouts, resource use, lock use, spawns."""
    rng = np.random.default_rng(seed)
    resource = Resource(env, capacity=int(rng.integers(1, 4)))
    lock = SimLock(env)
    n_procs = int(rng.integers(1, 10))

    def worker(wid, depth):
        steps = int(rng.integers(1, 6))
        for s in range(steps):
            choice = rng.integers(0, 4)
            if choice == 0:
                yield env.timeout(float(rng.random()))
            elif choice == 1:
                with resource.request() as req:
                    yield req
                    yield env.timeout(float(rng.random()) * 0.1)
            elif choice == 2:
                yield lock.acquire()
                yield env.timeout(float(rng.random()) * 0.05)
                lock.release()
            elif depth < 2:
                child = env.process(worker(wid * 10 + s, depth + 1))
                yield child
            log.append((wid, s, round(env.now, 9)))

    return [env.process(worker(w, 0)) for w in range(n_procs)]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_identical_seeds_identical_traces(seed):
    traces = []
    for _ in range(2):
        env = Environment()
        log = []
        random_program(env, seed, log)
        env.run()
        traces.append((log, env.now))
    assert traces[0] == traces[1]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_clock_monotone_and_all_processes_finish(seed):
    env = Environment()
    log = []
    procs = random_program(env, seed, log)
    env.run()
    times = [t for _, _, t in log]
    assert times == sorted(times)
    assert all(p.processed for p in procs)
    assert all(p.ok for p in procs)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 5.0))
def test_run_until_is_prefix_of_full_run(seed, horizon):
    """Stopping at a horizon observes exactly the events the full run
    produced up to that time."""
    env1, log1 = Environment(), []
    random_program(env1, seed, log1)
    env1.run()
    full_prefix = [e for e in log1 if e[2] <= horizon]

    env2, log2 = Environment(), []
    random_program(env2, seed, log2)
    env2.run(until=horizon)
    assert log2 == full_prefix
