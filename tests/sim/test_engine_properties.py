"""Property tests for the simulation engine's core guarantees.

DESIGN.md's determinism contract: the same program and seeds produce the
same event order and final clock; time never runs backwards; every
spawned process completes when the queue drains.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, SimLock


def random_program(env, seed, log):
    """A random process graph: timeouts, resource use, lock use, spawns."""
    rng = np.random.default_rng(seed)
    resource = Resource(env, capacity=int(rng.integers(1, 4)))
    lock = SimLock(env)
    n_procs = int(rng.integers(1, 10))

    def worker(wid, depth):
        steps = int(rng.integers(1, 6))
        for s in range(steps):
            choice = rng.integers(0, 4)
            if choice == 0:
                yield env.timeout(float(rng.random()))
            elif choice == 1:
                with resource.request() as req:
                    yield req
                    yield env.timeout(float(rng.random()) * 0.1)
            elif choice == 2:
                yield lock.acquire()
                yield env.timeout(float(rng.random()) * 0.05)
                lock.release()
            elif depth < 2:
                child = env.process(worker(wid * 10 + s, depth + 1))
                yield child
            log.append((wid, s, round(env.now, 9)))

    return [env.process(worker(w, 0)) for w in range(n_procs)]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_identical_seeds_identical_traces(seed):
    traces = []
    for _ in range(2):
        env = Environment()
        log = []
        random_program(env, seed, log)
        env.run()
        traces.append((log, env.now))
    assert traces[0] == traces[1]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000))
def test_clock_monotone_and_all_processes_finish(seed):
    env = Environment()
    log = []
    procs = random_program(env, seed, log)
    env.run()
    times = [t for _, _, t in log]
    assert times == sorted(times)
    assert all(p.processed for p in procs)
    assert all(p.ok for p in procs)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000), st.floats(0.1, 5.0))
def test_run_until_is_prefix_of_full_run(seed, horizon):
    """Stopping at a horizon observes exactly the events the full run
    produced up to that time."""
    env1, log1 = Environment(), []
    random_program(env1, seed, log1)
    env1.run()
    full_prefix = [e for e in log1 if e[2] <= horizon]

    env2, log2 = Environment(), []
    random_program(env2, seed, log2)
    env2.run(until=horizon)
    assert log2 == full_prefix


# -- contention properties under the engine sanitizer -------------------------
#
# Many processes hammering one resource / one cache / one store, with the
# invariant sanitizer attached (strict: first violation raises). These
# exercise the races fixed alongside the sanitizer: the single-flight
# cache window, double release, and store dispatch wakeups.

from repro.buffering import BufferCache
from repro.sim import Store


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 4), st.integers(2, 12))
def test_resource_contention_respects_capacity(seed, capacity, n_procs):
    rng = np.random.default_rng(seed)
    env = Environment(strict=True)
    resource = Resource(env, capacity=capacity)
    held = {"now": 0, "peak": 0}

    def worker(delays):
        for delay in delays:
            yield env.timeout(delay)
            with resource.request() as req:
                yield req
                held["now"] += 1
                held["peak"] = max(held["peak"], held["now"])
                yield env.timeout(float(rng.random()) * 0.1)
                held["now"] -= 1

    for _ in range(n_procs):
        env.process(worker([float(d) for d in rng.random(3)]))
    env.run()

    assert held["peak"] <= capacity
    assert held["now"] == 0
    assert resource.count == 0 and resource.queue_length == 0
    assert env.sanitizer.clean


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 10))
def test_cache_contention_single_flight_accounting(seed, n_readers):
    """Concurrent readers over a shared cache: every block is fetched at
    most once (capacity covers the block space), and the hit/miss
    accounting invariant holds under arbitrary interleavings."""
    rng = np.random.default_rng(seed)
    env = Environment(strict=True)
    n_blocks = 6
    fetches = []

    def fetch(block):
        def transfer():
            yield env.timeout(1.0)
            fetches.append(block)
            return bytes([block])

        return env.process(transfer())

    cache = BufferCache(env, fetch, None, capacity_blocks=n_blocks)

    def reader(blocks, jitter):
        yield env.timeout(jitter)
        for block in blocks:
            data = yield from cache.read(int(block))
            assert data == bytes([int(block)])

    for _ in range(n_readers):
        env.process(
            reader(rng.integers(0, n_blocks, size=5), float(rng.random()))
        )
    env.run()

    assert cache.hits + cache.misses == cache.reads == n_readers * 5
    assert cache.misses == len(fetches)
    assert sorted(set(fetches)) == sorted(fetches)  # no block fetched twice
    assert cache.coalesced <= cache.hits
    assert env.sanitizer.clean


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 5))
def test_store_contention_no_lost_wakeup(seed, n_producers, n_consumers):
    """A bounded store under many producers/consumers drains completely:
    nobody sleeps through an available item or free slot."""
    rng = np.random.default_rng(seed)
    env = Environment(strict=True)
    store = Store(env, capacity=2)
    per_producer = 4
    consumed = []

    def producer(pid):
        for i in range(per_producer):
            yield env.timeout(float(rng.random()) * 0.2)
            yield store.put((pid, i))

    def consumer(quota):
        for _ in range(quota):
            item = yield store.get()
            consumed.append(item)
            yield env.timeout(float(rng.random()) * 0.2)

    total = n_producers * per_producer
    quotas = [total // n_consumers] * n_consumers
    quotas[0] += total - sum(quotas)
    for pid in range(n_producers):
        env.process(producer(pid))
    for quota in quotas:
        env.process(consumer(quota))
    env.run()

    assert len(consumed) == total
    assert len(store) == 0
    assert env.sanitizer.clean
