"""CalendarQueue: exact heap-order contract, geometry, hybrid switching.

The load-bearing property is at the top: :meth:`CalendarQueue.pop` must
yield entries in exactly the ``(when, eid)`` order ``heapq.heappop``
would, for any entry distribution — random, tie-heavy (few distinct
times, the pathological shape for sorted buckets), init-storm (everything
at one instant), and bimodal with far-future outliers (exercising the
overflow heap). The engine swaps queue flavours mid-run on the strength
of this property, so it is tested on the raw structure *and* end-to-end
through ``Environment(queue=...)``.
"""

import heapq
import math
import random

import pytest

from repro.sim import Environment
from repro.sim.calqueue import DEMOTE_LEN, CalendarQueue, _pick_geometry


def _shape_entries(shape: str, n: int, seed: int) -> list[tuple]:
    rng = random.Random(seed)
    entries = []
    for i in range(n):
        if shape == "random":
            t = rng.random() * 100.0
        elif shape == "tie_heavy":
            # only 40 distinct instants: hundreds of ties per bucket
            t = 0.001 * rng.randrange(40)
        elif shape == "clustered":
            t = rng.randrange(10) * 10.0 + rng.random() * 0.01
        else:  # far_future: 5% of entries a year out (overflow heap)
            t = rng.random() + (1e6 if rng.random() < 0.05 else 0.0)
        entries.append((t, i, None))
    return entries


class TestPopOrderProperty:
    @pytest.mark.parametrize(
        "shape", ["random", "tie_heavy", "clustered", "far_future"]
    )
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_pop_order_equals_heapq(self, shape, seed):
        entries = _shape_entries(shape, 20000, seed)
        q = CalendarQueue.from_entries(list(entries))
        assert q is not None
        h = list(entries)
        heapq.heapify(h)
        while q:
            assert q.pop() == heapq.heappop(h)
        assert not h

    def test_pop_order_with_interleaved_pushes(self):
        rng = random.Random(99)
        entries = _shape_entries("random", 8000, 7)
        q = CalendarQueue.from_entries(list(entries))
        h = list(entries)
        heapq.heapify(h)
        next_id = len(entries)
        popped = 0
        while q:
            if popped % 3 == 0 and next_id < 20000:
                # push relative to the current head, like a live schedule
                e = (h[0][0] + rng.random() * 5.0, next_id, None)
                next_id += 1
                q.push(e)
                heapq.heappush(h, e)
            assert q.pop() == heapq.heappop(h)
            popped += 1
        assert not h

    def test_day_boundary_rounding(self):
        # regression: filing used int(when / w) but eligibility used the
        # recomputed product (epoch + 1) * w; near a day boundary the two
        # can disagree and an entry pops a whole ring-lap late (simulated
        # time runs backwards). Times that are exact multiples of a small
        # step make boundary collisions dense.
        entries = [(0.001 * (1 + k % 997), k, None) for k in range(30000)]
        q = CalendarQueue.from_entries(list(entries))
        assert q is not None
        h = list(entries)
        heapq.heapify(h)
        last = -math.inf
        while q:
            e = q.pop()
            assert e == heapq.heappop(h)
            assert e[0] >= last, "time went backwards"
            last = e[0]

    def test_push_just_behind_cursor_day(self):
        # regression: a (re)build anchors the cursor at the earliest
        # *entry*, but the owning engine's clock may sit a day earlier —
        # a push between the two (day(when) == epoch - 1) must not wait
        # a full ring lap before popping
        entries = [(10.0 + i * 0.01, i, None) for i in range(3000)]
        q = CalendarQueue.from_entries(list(entries))
        assert q is not None
        h = list(entries)
        heapq.heapify(h)
        e = (10.0 - q._w * 0.9, 100000, None)
        assert int(e[0] / q._w) < q._epoch  # really behind the cursor day
        q.push(e)
        heapq.heappush(h, e)
        while q:
            assert q.pop() == heapq.heappop(h)

    def test_len_and_bool(self):
        entries = _shape_entries("random", 100, 5)
        q = CalendarQueue.from_entries(list(entries))
        assert len(q) == 100 and bool(q)
        for _ in range(100):
            q.pop()
        assert len(q) == 0 and not q
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.peek()

    def test_peek_matches_next_pop(self):
        q = CalendarQueue.from_entries(_shape_entries("clustered", 500, 11))
        while q:
            t = q.peek()
            assert q.pop()[0] == t


class TestGeometry:
    def test_refuses_single_instant(self):
        entries = [(5.0, i, None) for i in range(1000)]
        assert CalendarQueue.from_entries(entries) is None

    def test_refuses_tiny_population(self):
        assert CalendarQueue.from_entries([(1.0, 0, None)]) is None
        assert CalendarQueue.from_entries([]) is None

    def test_pick_geometry_uses_population_size(self):
        # a 4096-entry sample of a million-entry population must still
        # size the ring for the population
        times = [i * 0.001 for i in range(4096)]
        small = _pick_geometry(times, n=4096)
        large = _pick_geometry(times, n=1 << 20)
        assert small is not None and large is not None
        assert large[1] > small[1]  # bigger ring for the bigger population

    def test_pick_geometry_ring_covers_bulk_span(self):
        rng = random.Random(3)
        times = [rng.random() * 50.0 for _ in range(4096)]
        got = _pick_geometry(times)
        assert got is not None
        width, nbuckets = got
        s = sorted(times)
        iqr = s[3 * len(s) // 4] - s[len(s) // 4]
        assert math.isclose(width * nbuckets, 4.0 * iqr)

    def test_nan_times_refused(self):
        entries = [(float("nan"), i, None) for i in range(100)]
        assert _pick_geometry([e[0] for e in entries]) is None


class TestHybridEngine:
    @staticmethod
    def _timer_swarm(env, n, rounds=4, seed=42):
        rng = random.Random(seed)

        def client(delays):
            def proc():
                for d in delays:
                    yield env.sleep(d)
            return proc

        for _ in range(n):
            env.process(
                client([0.001 * (1 + rng.randrange(50)) for _ in range(rounds)])()
            )

    def test_forced_calendar_promotes_after_init_storm(self):
        # every process starts at t=0 (no spread: promotion refused), but
        # once the storm drains into spread-out timers the forced mode
        # must retry and promote
        env = Environment(queue="calendar")
        if not env.fast_mode:
            pytest.skip("promotion lives in the fast loop; suite is --sanitize")
        self._timer_swarm(env, 4000)
        assert env.queue_flavor == "heap"
        env.run()
        assert env.queue_flavor == "calendar"

    def test_heap_mode_never_promotes(self):
        env = Environment(queue="heap")
        self._timer_swarm(env, 4000)
        env.run()
        assert env.queue_flavor == "heap"

    def test_tuner_flags_demotion_below_threshold(self):
        # a tuning window that closes with fewer than DEMOTE_LEN live
        # entries sets the demote flag and notifies the owner
        entries = _shape_entries("random", 4800, 13)
        q = CalendarQueue.from_entries(entries)

        class Owner:
            flagged = None

            def _on_queue_demote(self, queue):
                self.flagged = queue

        q.owner = owner = Owner()
        for _ in range(4200):  # first window closes at len = 704 < DEMOTE_LEN
            q.pop()
        assert q.demote
        assert owner.flagged is q

    def test_auto_engine_demotes_on_flag(self):
        env = Environment()  # auto mode
        self._timer_swarm(env, 3000)
        env.run(until=0.0005)  # past the t=0 init storm
        if env.queue_flavor == "heap":  # not yet promoted on its own
            cal = CalendarQueue.from_entries(list(env._queue))
            assert cal is not None
            env._bind_queue(cal)
        assert env.queue_flavor == "calendar"
        cal = env._queue
        cal.owner = env
        cal.demote = True
        env._on_queue_demote(cal)
        assert env.queue_flavor == "heap"
        env.run()  # and the run completes correctly on the heap
        assert len(env._queue) == 0

    def test_forced_calendar_ignores_demotion(self):
        env = Environment(queue="calendar")
        self._timer_swarm(env, 3000)
        env.run(until=0.0005)
        if env.queue_flavor != "calendar":
            env._maybe_promote()
        assert env.queue_flavor == "calendar"
        q = env._queue
        q.demote = True
        env._on_queue_demote(q)
        assert env.queue_flavor == "calendar"
        assert q.demote is False  # flag cleared, not acted on

    def test_queue_mode_validation(self):
        with pytest.raises(ValueError):
            Environment(queue="btree")

    def test_flavors_agree_on_final_state(self):
        # identical schedule -> identical clock and step count regardless
        # of flavour (the digest suite pins the full-stack version)
        results = {}
        for queue in ("heap", "calendar", "auto"):
            env = Environment(queue=queue)
            self._timer_swarm(env, 3000, seed=7)
            env.run()
            results[queue] = (env.now, env.steps, env._eid)
        assert results["heap"] == results["calendar"] == results["auto"]

    def test_demote_len_constant_sane(self):
        assert 0 < DEMOTE_LEN < 100_000
