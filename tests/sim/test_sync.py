"""Unit tests for synchronization primitives."""

import pytest

from repro.sim import Environment, SimBarrier, SimLock, SimSemaphore, TicketCounter
from repro.sim.engine import SimulationError


class TestSimLock:
    def test_mutual_exclusion(self):
        env = Environment()
        lock = SimLock(env)
        inside = []
        max_inside = []

        def proc(name):
            yield lock.acquire()
            inside.append(name)
            max_inside.append(len(inside))
            yield env.timeout(1)
            inside.remove(name)
            lock.release()

        for n in range(5):
            env.process(proc(n))
        env.run()
        assert max(max_inside) == 1

    def test_fifo_wakeup(self):
        env = Environment()
        lock = SimLock(env)
        order = []

        def proc(name, arrive):
            yield env.timeout(arrive)
            yield lock.acquire()
            order.append(name)
            yield env.timeout(10)
            lock.release()

        env.process(proc("c", 3))
        env.process(proc("a", 1))
        env.process(proc("b", 2))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_unheld_is_error(self):
        lock = SimLock(Environment())
        with pytest.raises(SimulationError):
            lock.release()

    def test_contention_counters(self):
        env = Environment()
        lock = SimLock(env)

        def proc():
            yield lock.acquire()
            yield env.timeout(1)
            lock.release()

        for _ in range(4):
            env.process(proc())
        env.run()
        assert lock.total_acquires == 4
        assert lock.contended_acquires == 3

    def test_holding_releases_on_exception(self):
        env = Environment()
        lock = SimLock(env)

        def body():
            yield env.timeout(1)
            raise ValueError("inner")

        def proc():
            try:
                yield from lock.holding(body())
            except ValueError:
                pass
            return lock.locked

        assert env.run(env.process(proc())) is False


class TestSimSemaphore:
    def test_counting(self):
        env = Environment()
        sem = SimSemaphore(env, value=2)
        concurrent = []
        level = [0]

        def proc():
            yield sem.acquire()
            level[0] += 1
            concurrent.append(level[0])
            yield env.timeout(1)
            level[0] -= 1
            sem.release()

        for _ in range(5):
            env.process(proc())
        env.run()
        assert max(concurrent) == 2
        assert sem.value == 2

    def test_release_wakes_waiter(self):
        env = Environment()
        sem = SimSemaphore(env, value=0)
        woke = []

        def waiter():
            yield sem.acquire()
            woke.append(env.now)

        def releaser():
            yield env.timeout(7)
            sem.release()

        env.process(waiter())
        env.process(releaser())
        env.run()
        assert woke == [7]

    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            SimSemaphore(Environment(), value=-1)


class TestSimBarrier:
    def test_all_release_together(self):
        env = Environment()
        bar = SimBarrier(env, parties=3)
        released = []

        def proc(delay):
            yield env.timeout(delay)
            yield bar.wait()
            released.append(env.now)

        for d in (1, 5, 9):
            env.process(proc(d))
        env.run()
        assert released == [9, 9, 9]
        assert bar.generation == 1

    def test_reusable_across_phases(self):
        env = Environment()
        bar = SimBarrier(env, parties=2)
        phases = []

        def proc(delay):
            for _ in range(3):
                yield env.timeout(delay)
                yield bar.wait()
                phases.append(env.now)

        env.process(proc(1))
        env.process(proc(2))
        env.run()
        assert bar.generation == 3
        assert phases == [2, 2, 4, 4, 6, 6]

    def test_single_party_never_blocks(self):
        env = Environment()
        bar = SimBarrier(env, parties=1)

        def proc():
            yield bar.wait()
            return env.now

        assert env.run(env.process(proc())) == 0

    def test_invalid_parties(self):
        with pytest.raises(ValueError):
            SimBarrier(Environment(), parties=0)


class TestTicketCounter:
    def test_tickets_unique_and_complete(self):
        env = Environment()
        counter = TicketCounter(env, limit=20)
        drawn = []

        def proc():
            while True:
                t = yield from counter.next()
                if t is None:
                    return
                drawn.append(t)
                yield env.timeout(1)

        for _ in range(4):
            env.process(proc())
        env.run()
        assert sorted(drawn) == list(range(20))

    def test_update_cost_serializes(self):
        env = Environment()
        counter = TicketCounter(env, limit=10, update_cost=2.0)

        def proc():
            while True:
                t = yield from counter.next()
                if t is None:
                    return

        for _ in range(5):
            env.process(proc())
        env.run()
        # 10 tickets + 5 exhausted probes, each costing 2.0, fully serialized.
        assert env.now == 30.0

    def test_unlimited_counter(self):
        env = Environment()
        counter = TicketCounter(env)

        def proc():
            a = yield from counter.next()
            b = yield from counter.next()
            return (a, b)

        assert env.run(env.process(proc())) == (0, 1)
