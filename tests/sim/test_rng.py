"""Unit tests for reproducible RNG streams."""

import numpy as np

from repro.sim import RngStreams


def test_same_seed_same_stream_values():
    a = RngStreams(7).get("disk.seek")
    b = RngStreams(7).get("disk.seek")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_give_independent_streams():
    s = RngStreams(7)
    xs = s.get("disk0").random(5)
    ys = s.get("disk1").random(5)
    assert not np.array_equal(xs, ys)


def test_different_seeds_differ():
    xs = RngStreams(1).get("x").random(5)
    ys = RngStreams(2).get("x").random(5)
    assert not np.array_equal(xs, ys)


def test_stream_cached_by_name():
    s = RngStreams(0)
    assert s.get("a") is s.get("a")


def test_creation_order_irrelevant():
    s1 = RngStreams(42)
    s1.get("first")
    v1 = s1.get("second").random(3)

    s2 = RngStreams(42)
    v2 = s2.get("second").random(3)  # never touched "first"
    assert np.array_equal(v1, v2)


def test_helper_draws():
    s = RngStreams(3)
    x = s.exponential("fail", mean=100.0)
    assert x > 0
    u = s.uniform("u", 2.0, 3.0)
    assert 2.0 <= u < 3.0
    i = s.integers("i", 0, 10)
    assert 0 <= i < 10
