"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 5.0
    assert env.now == 5.0


def test_timeout_rejects_negative_delay():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_sleep_rejects_negative_and_nan_delay():
    # regression: the check must sit above every branch of the pooled
    # fast path — a bad delay is rejected with a warm pool, a cold pool,
    # and outside fast mode alike (it used to slip through the
    # warm-pool branch straight into the schedule)
    env = Environment()
    with pytest.raises(ValueError):
        env.sleep(-0.5)
    with pytest.raises(ValueError):
        env.sleep(float("nan"))

    def proc():  # warm the pool: sleep once, recycle on processing
        yield env.sleep(0.1)

    env.run(env.process(proc()))
    if env.fast_mode:  # under --sanitize the hooked loop never pools
        assert env._timeout_pool, "pool should be warm"
    with pytest.raises(ValueError):
        env.sleep(-0.5)
    with pytest.raises(ValueError):
        env.sleep(float("nan"))

    slow = Environment(fast=False)
    with pytest.raises(ValueError):
        slow.sleep(-1e-9)
    with pytest.raises(ValueError):
        slow.sleep(float("nan"))


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc():
        for d in (1.0, 2.0, 3.5):
            yield env.timeout(d)
            times.append(env.now)

    env.run(env.process(proc()))
    assert times == [1.0, 3.0, 6.5]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(name, delay):
        for _ in range(3):
            yield env.timeout(delay)
            order.append((name, env.now))

    env.process(proc("a", 2))
    env.process(proc("b", 3))
    env.run()
    # At t=6 both are due; b's timeout was scheduled first (at t=3, vs a's
    # at t=4), so FIFO tie-breaking runs b first.
    assert order == [
        ("a", 2), ("b", 3), ("a", 4), ("b", 6), ("a", 6), ("b", 9),
    ]


def test_ties_broken_fifo():
    env = Environment()
    order = []

    def proc(name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abc":
        env.process(proc(name))
    env.run()
    assert order == ["a", "b", "c"]


def test_process_return_value_via_join():
    env = Environment()

    def child():
        yield env.timeout(1)
        return 42

    def parent():
        result = yield env.process(child())
        return result * 2

    assert env.run(env.process(parent())) == 84


def test_process_exception_propagates_to_joiner():
    env = Environment()

    def child():
        yield env.timeout(1)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return f"caught {exc}"

    assert env.run(env.process(parent())) == "caught boom"


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def bad():
        yield env.timeout(1)
        raise RuntimeError("unhandled")

    env.process(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_event_succeed_value_delivered():
    env = Environment()
    ev = env.event()
    got = []

    def waiter():
        value = yield ev
        got.append(value)

    def trigger():
        yield env.timeout(3)
        ev.succeed("hello")

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert got == ["hello"]


def test_event_double_trigger_forbidden():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")

    def proc():
        # run after ev has been processed
        yield env.timeout(1)
        value = yield ev
        return (value, env.now)

    p = env.process(proc())
    assert env.run(p) == ("early", 1.0)


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc():
        t1 = env.timeout(2, "x")
        t2 = env.timeout(5, "y")
        results = yield env.all_of([t1, t2])
        return (env.now, sorted(results.values()))

    assert env.run(env.process(proc())) == (5.0, ["x", "y"])


def test_any_of_fires_on_first():
    env = Environment()

    def proc():
        t1 = env.timeout(2, "fast")
        t2 = env.timeout(50, "slow")
        results = yield env.any_of([t1, t2])
        return (env.now, list(results.values()))

    assert env.run(env.process(proc())) == (2.0, ["fast"])


def test_all_of_empty_triggers_immediately():
    env = Environment()

    def proc():
        result = yield env.all_of([])
        return result

    assert env.run(env.process(proc())) == {}


def test_interrupt_delivers_cause():
    env = Environment()
    caught = []

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as i:
            caught.append((env.now, i.cause))

    def attacker(v):
        yield env.timeout(4)
        v.interrupt("preempted")

    v = env.process(victim())
    env.process(attacker(v))
    env.run()
    assert caught == [(4.0, "preempted")]


def test_interrupt_dead_process_is_error():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(10)

    env.process(proc())
    env.run(until=35)
    assert env.now == 35


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_run_until_event_never_triggered_is_error():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(ev)


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 42  # type: ignore[misc]

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_peek_and_step():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7
    env.step()
    assert env.now == 7
    assert env.peek() == float("inf")
    with pytest.raises(SimulationError):
        env.step()


def test_active_process_tracked():
    env = Environment()
    seen = []

    def proc():
        seen.append(env.active_process)
        yield env.timeout(1)

    p = env.process(proc())
    env.run()
    assert seen == [p]
    assert env.active_process is None


def test_massive_fan_out_join():
    env = Environment()

    def child(i):
        yield env.timeout(i % 7 + 1)
        return i

    def parent():
        children = [env.process(child(i)) for i in range(200)]
        results = yield env.all_of(children)
        return sum(results.values())

    assert env.run(env.process(parent())) == sum(range(200))


def test_all_of_multiple_concurrent_failures_all_defused():
    """Regression: when several AllOf components fail, every failure must
    be defused — only the first propagates (through the condition)."""
    env = Environment()
    caught = []

    def proc():
        events = [env.event() for _ in range(3)]
        for ev in events:
            ev.fail(ValueError("boom"))
        try:
            yield env.all_of(events)
        except ValueError:
            caught.append(True)

    env.process(proc())
    env.run()  # must not crash on the 2nd and 3rd failed events
    assert caught == [True]


def test_any_of_failure_propagates_once():
    env = Environment()
    caught = []

    def proc():
        bad = env.event()
        bad.fail(RuntimeError("x"))
        slow = env.timeout(100)
        try:
            yield env.any_of([bad, slow])
        except RuntimeError:
            caught.append(True)

    env.process(proc())
    env.run()
    assert caught == [True]


def test_yield_non_event_caught_by_generator_still_fails_cleanly():
    """A generator that catches the thrown error must not resurrect the
    process: the engine closes it and fails the process event."""
    env = Environment()
    cleaned_up = []

    def stubborn():
        try:
            try:
                yield 42  # type: ignore[misc]
            except SimulationError:
                pass  # swallow it and try to keep going
            while True:
                yield env.timeout(1)
        finally:
            cleaned_up.append(True)

    proc = env.process(stubborn())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()
    assert proc.triggered and not proc.ok
    assert isinstance(proc.value, SimulationError)
    assert cleaned_up == [True]  # generator was closed, finally ran


def test_yield_non_event_failure_joinable_by_parent():
    """A parent waiting on the bad process sees the failure like any other."""
    env = Environment()

    def bad():
        yield object()  # type: ignore[misc]

    def parent():
        try:
            yield env.process(bad())
        except SimulationError as exc:
            return str(exc)
        return None

    msg = env.run(env.process(parent()))
    assert msg is not None and "non-event" in msg
