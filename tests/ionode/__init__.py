"""Tests for the dedicated I/O-node subsystem (`repro.ionode`)."""
