"""Unit tests for the server-side shared block cache."""

import numpy as np
import pytest

from repro.ionode import ServerCache


def block(fill, n=64):
    return np.full(n, fill, dtype=np.uint8)


@pytest.fixture
def cache():
    return ServerCache(capacity_blocks=4, block_bytes=64)


def test_validation():
    with pytest.raises(ValueError):
        ServerCache(0)
    with pytest.raises(ValueError):
        ServerCache(4, block_bytes=0)


def test_miss_then_hit(cache):
    assert cache.lookup(0, 0, 64) is None
    cache.install(0, 0, block(7))
    got = cache.lookup(0, 0, 64)
    assert got is not None and np.array_equal(got, block(7))
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lookup_sub_range_of_cached_block(cache):
    cache.install(0, 0, np.arange(64, dtype=np.uint8))
    got = cache.lookup(0, 10, 20)
    assert np.array_equal(got, np.arange(10, 30, dtype=np.uint8))


def test_lookup_spanning_blocks_needs_all(cache):
    cache.install(0, 0, block(1))
    assert cache.lookup(0, 32, 64) is None  # second half in uncached block 1
    cache.install(0, 64, block(2))
    got = cache.lookup(0, 32, 64)
    assert got is not None
    assert np.array_equal(got[:32], block(1, 32))
    assert np.array_equal(got[32:], block(2, 32))


def test_install_skips_partial_edge_blocks(cache):
    # bytes [10, 74): covers no full 64-byte block entirely
    cache.install(0, 10, np.zeros(64, dtype=np.uint8))
    assert len(cache) == 0
    # bytes [0, 100): only block 0 is fully covered
    cache.install(0, 0, np.zeros(100, dtype=np.uint8))
    assert len(cache) == 1


def test_devices_are_distinct(cache):
    cache.install(0, 0, block(1))
    assert cache.lookup(1, 0, 64) is None


def test_lru_eviction(cache):
    for b in range(4):
        cache.install(0, b * 64, block(b))
    cache.lookup(0, 0, 64)  # touch block 0: now most-recent
    cache.install(0, 4 * 64, block(9))  # evicts block 1 (least recent)
    assert cache.evictions == 1
    assert cache.lookup(0, 0, 64) is not None
    assert cache.lookup(0, 64, 64) is None


def test_note_write_updates_fully_covered_block(cache):
    cache.install(0, 0, block(1))
    cache.note_write(0, 0, block(9))
    got = cache.lookup(0, 0, 64)
    assert np.array_equal(got, block(9))


def test_note_write_invalidates_partially_covered_block(cache):
    cache.install(0, 0, block(1))
    cache.note_write(0, 10, block(9, 8))
    assert cache.invalidations == 1
    assert cache.lookup(0, 0, 64) is None


def test_note_write_empty_is_noop(cache):
    cache.install(0, 0, block(1))
    cache.note_write(0, 0, np.empty(0, dtype=np.uint8))
    assert cache.lookup(0, 0, 64) is not None


def test_invalidate_device(cache):
    cache.install(0, 0, block(1))
    cache.install(1, 0, block(2))
    assert cache.invalidate_device(0) == 1
    assert cache.lookup(0, 0, 64) is None
    assert cache.lookup(1, 0, 64) is not None
