"""Unit tests for device->node routing and the mediated volume facade."""

import numpy as np
import pytest

from repro.devices import WREN_1989, DeviceController, DiskGeometry, DiskModel
from repro.ionode import DeviceRouter, Interconnect, IONodeCluster, MediatedVolume
from repro.sim import Environment
from repro.storage import Volume


def make_volume(env, n_devices=4):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    devices = [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"d{i}")
        for i in range(n_devices)
    ]
    return Volume(env, devices)


# -- DeviceRouter -------------------------------------------------------------


def test_router_validation():
    with pytest.raises(ValueError):
        DeviceRouter(4, 0)
    with pytest.raises(ValueError):
        DeviceRouter(4, 5)
    with pytest.raises(ValueError):
        DeviceRouter(4, 2, policy="hash")


def test_contiguous_policy_bands():
    r = DeviceRouter(5, 2, policy="contiguous")
    assert [r.node_of(d) for d in range(5)] == [0, 0, 0, 1, 1]
    assert r.devices_of(0) == [0, 1, 2]
    assert r.devices_of(1) == [3, 4]


def test_round_robin_policy_interleaves():
    r = DeviceRouter(5, 2, policy="round-robin")
    assert [r.node_of(d) for d in range(5)] == [0, 1, 0, 1, 0]


def test_every_device_owned_by_exactly_one_node():
    for policy in ("contiguous", "round-robin"):
        r = DeviceRouter(7, 3, policy=policy)
        owned = [d for n in range(3) for d in r.devices_of(n)]
        assert sorted(owned) == list(range(7))


# -- IONodeCluster ------------------------------------------------------------


def test_cluster_build_partitions_devices():
    env = Environment()
    vol = make_volume(env, 4)
    cluster = IONodeCluster.build(env, vol.devices, 2)
    assert len(cluster.nodes) == 2
    assert set(cluster.nodes[0].devices) == {0, 1}
    assert set(cluster.nodes[1].devices) == {2, 3}
    assert cluster.node_of(3) is cluster.nodes[1]


def test_cluster_node_count_mismatch_rejected():
    env = Environment()
    vol = make_volume(env, 4)
    router = DeviceRouter(4, 2)
    nodes = IONodeCluster.build(env, vol.devices, 1).nodes
    with pytest.raises(ValueError):
        IONodeCluster(env, nodes, router)


def test_cluster_forwards_node_kwargs():
    env = Environment()
    vol = make_volume(env, 2)
    cluster = IONodeCluster.build(env, vol.devices, 2, cache_blocks=8, queue_depth=3)
    assert all(n.cache is not None for n in cluster.nodes)
    assert all(n.queue_depth == 3 for n in cluster.nodes)


# -- MediatedVolume -----------------------------------------------------------


def test_mediated_volume_width_mismatch_rejected():
    env = Environment()
    vol = make_volume(env, 4)
    narrow = make_volume(env, 2)
    cluster = IONodeCluster.build(env, narrow.devices, 1)
    with pytest.raises(ValueError):
        MediatedVolume(vol, cluster)


def test_mediated_volume_delegates_management_plane():
    env = Environment()
    vol = make_volume(env, 4)
    mv = MediatedVolume(vol, IONodeCluster.build(env, vol.devices, 2))
    assert mv.env is env
    assert mv.n_devices == 4
    assert mv.devices is vol.devices


def test_poke_invalidates_node_cache():
    from repro.storage.layout import StripedLayout

    env = Environment()
    vol = make_volume(env, 2)
    cluster = IONodeCluster.build(
        env, vol.devices, 1, cache_blocks=8, cache_block_bytes=512
    )
    mv = MediatedVolume(vol, cluster)
    layout = StripedLayout(2, 512)
    extent = mv.allocate(layout, 2048)

    def run():
        yield mv.write(extent, layout, 0, np.ones(512, np.uint8))
        yield mv.read(extent, layout, 0, 512)  # populate the cache

    env.run(env.process(run()))
    assert len(cluster.nodes[0].cache) > 0
    mv.poke(extent, layout, 0, np.zeros(512, np.uint8))
    assert len(cluster.nodes[0].cache) == 0

    def check():
        data = yield mv.read(extent, layout, 0, 512)
        return data

    assert np.array_equal(env.run(env.process(check())), np.zeros(512, np.uint8))


def test_interconnect_costs():
    ic = Interconnect(latency=1e-3, bandwidth=1e6, request_bytes=0)
    assert ic.request_cost() == pytest.approx(1e-3)
    assert ic.transfer_cost(1000) == pytest.approx(1e-3 + 1e-3)
    with pytest.raises(ValueError):
        Interconnect(latency=-1)
    with pytest.raises(ValueError):
        Interconnect(bandwidth=0)
