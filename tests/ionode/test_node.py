"""Unit tests for the I/O-node server process: admission, batching, failures."""

import numpy as np
import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DeviceFailedError,
    DiskGeometry,
    DiskModel,
)
from repro.ionode import IONode
from repro.sanitize import EngineSanitizer, attach
from repro.sim import Environment


def make_devices(env, n):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    return {
        i: DeviceController(env, DiskModel(geo, WREN_1989), name=f"d{i}")
        for i in range(n)
    }


def make_node(env, n_devices=2, **kwargs):
    return IONode(env, "ion0", make_devices(env, n_devices), **kwargs)


def client(node, kind, items, data=None, out=None):
    req = node.submit(kind, items, data=data)
    yield req.admitted
    try:
        value = yield req.event
        if out is not None:
            out.append(("ok", value))
    except Exception as exc:  # noqa: BLE001 - recording the outcome
        if out is not None:
            out.append(("err", exc))


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        IONode(env, "x", {})
    with pytest.raises(ValueError):
        make_node(env, queue_depth=0)
    with pytest.raises(ValueError):
        make_node(env, batch_limit=0)
    node = make_node(env)
    with pytest.raises(ValueError):
        node.submit("peek", [(0, 0, 4)])
    with pytest.raises(ValueError):
        node.submit("read", [(9, 0, 4)])  # unowned device
    with pytest.raises(ValueError):
        node.submit("read", [(0, -1, 4)])
    with pytest.raises(ValueError):
        node.submit("write", [(0, 0, 4)])  # missing payload


def test_write_then_read_round_trip():
    env = Environment()
    node = make_node(env)
    out = []
    payload = np.arange(100, dtype=np.uint8)

    def run():
        yield from client(node, "write", [(0, 0, 100)], data=[payload])
        yield from client(node, "read", [(0, 0, 100)], out=out)

    env.run(env.process(run()))
    kind, arrays = out[0]
    assert kind == "ok"
    assert np.array_equal(arrays[0], payload)
    node.assert_drained()


def test_batch_coalesces_adjacent_clients():
    """Two clients reading adjacent ranges in one batch -> one device read."""
    env = Environment()
    node = make_node(env, n_devices=1)
    seed = np.arange(200, dtype=np.uint8)
    node.devices[0].poke(0, seed)
    outs = [[], []]

    env.process(client(node, "read", [(0, 0, 100)], out=outs[0]))
    env.process(client(node, "read", [(0, 100, 100)], out=outs[1]))
    env.run()

    assert node.device_reads == 1
    assert node.items_in == 2
    assert node.coalescing_ratio == 2.0
    assert np.array_equal(outs[0][0][1][0], seed[:100])
    assert np.array_equal(outs[1][0][1][0], seed[100:])


def test_strided_batch_is_sieved():
    env = Environment()
    node = make_node(env, n_devices=1)
    out = []
    # 4 x 64 bytes with 64-byte holes: span 448 <= 4 * 256 -> sieve
    items = [(0, k * 128, 64) for k in range(4)]

    env.process(client(node, "read", items, out=out))
    env.run()

    assert node.device_reads == 1
    assert node.sieved_batches == 1
    assert node.sieve_waste_bytes == 448 - 256
    assert node.device_bytes_read == 448
    assert node.read_delivered_bytes == node.read_requested_bytes == 256
    node.assert_drained()


def test_admission_control_backpressure():
    """With a full inbox, later clients block at submission until space frees."""
    env = Environment()
    node = make_node(env, n_devices=1, queue_depth=1, batch_limit=1)
    admitted_at = {}

    def timed_client(i):
        req = node.submit("read", [(0, 0, 512)])
        yield req.admitted
        admitted_at[i] = env.now
        yield req.event

    for i in range(4):
        env.process(timed_client(i))
    env.run()

    assert admitted_at[0] == 0.0
    # clients beyond the queue bound were admitted strictly later
    assert admitted_at[3] > 0.0
    assert node.accepted == node.completed == 4
    node.assert_drained()


def test_failed_device_fails_request_not_node():
    env = Environment()
    node = make_node(env, n_devices=2)
    node.devices[0].fail()
    outs = [[], []]

    def run():
        yield from client(node, "read", [(0, 0, 64)], out=outs[0])
        yield from client(node, "read", [(1, 0, 64)], out=outs[1])

    env.run(env.process(run()))
    assert outs[0][0][0] == "err"
    assert isinstance(outs[0][0][1], DeviceFailedError)
    # the node survived and serviced the healthy device afterwards
    assert outs[1][0][0] == "ok"
    node.assert_drained()


def test_mixed_batch_failure_only_hits_touching_requests():
    env = Environment()
    node = make_node(env, n_devices=2)
    node.devices[1].fail()
    outs = [[], []]

    env.process(client(node, "read", [(0, 0, 64)], out=outs[0]))
    env.process(client(node, "read", [(1, 0, 64)], out=outs[1]))
    env.run()

    assert outs[0][0][0] == "ok"
    assert outs[1][0][0] == "err"
    node.assert_drained()


def test_server_cache_absorbs_repeat_reads():
    env = Environment()
    node = make_node(
        env, n_devices=1, cache_blocks=16, cache_block_bytes=512
    )
    out = []

    def run():
        yield from client(node, "write", [(0, 0, 512)], data=[np.zeros(512, np.uint8)])
        yield from client(node, "read", [(0, 0, 512)], out=out)
        before = node.device_reads
        yield from client(node, "read", [(0, 128, 256)], out=out)
        return before

    before = env.run(env.process(run()))
    assert node.device_reads == before  # second read served from cache
    assert node.cache.hits >= 1
    assert np.array_equal(out[1][1][0], np.zeros(256, np.uint8))
    node.assert_drained()


def test_batch_overlapping_read_and_write_never_caches_stale_bytes():
    """A batch holding an overlapping read and write (an app-level race
    the access sanitizer flags): seek scheduling may serve the read
    first, capturing pre-write bytes — the write's cache effect must
    still win, or every later client is served a stale block."""
    from repro.devices import SSTF

    env = Environment()
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=1, cylinders=64)
    dev = DeviceController(env, DiskModel(geo, WREN_1989), name="d0", policy=SSTF())
    dev.poke(0, np.full(1024, 0xAA, np.uint8))
    node = IONode(
        env, "ion0", {0: dev}, cache_blocks=8, cache_block_bytes=512, sieve=False
    )
    arrays = []

    def scenario():
        # same batch: write block 1 (cylinder 1) + a read coalescing into
        # blocks 0-1 (starting at cylinder 0, where the head is) — SSTF
        # serves the read first, so it captures the pre-write bytes
        wreq = node.submit(
            "write", [(0, 512, 512)], data=[np.full(512, 0xBB, np.uint8)]
        )
        rreq = node.submit("read", [(0, 0, 512), (0, 512, 512)])
        yield wreq.admitted
        yield rreq.admitted
        yield wreq.event
        arrays.extend((yield rreq.event))

    env.run(env.process(scenario()))
    env.run()
    assert bytes(arrays[1]) == b"\xaa" * 512  # the read did race the write
    assert bytes(dev.peek(512, 512)) == b"\xbb" * 512  # the write landed
    cached = node.cache.lookup(0, 512, 512)
    assert cached is not None and bytes(cached) == b"\xbb" * 512
    node.assert_drained()


def test_assert_drained_flags_unserviced_requests():
    env = Environment()
    node = make_node(env)
    node.submit("read", [(0, 0, 8)])
    with pytest.raises(RuntimeError):
        node.assert_drained()


def test_sanitizer_checks_fire_and_stay_clean():
    env = Environment()
    sanitizer = attach(env)
    node = make_node(env, n_devices=2, queue_depth=2)
    for i in range(6):
        env.process(client(node, "read", [(i % 2, 64 * i, 64)]))
    env.run()
    sanitizer.check_nodes_drained()
    assert node in sanitizer._nodes
    sanitizer.assert_clean()


def test_sanitizer_flags_lost_request():
    env = Environment()
    node = make_node(env)
    # standalone (not attached to the env): seeding violations on purpose
    sanitizer = EngineSanitizer(env)
    sanitizer.register_node(node)
    env.run(env.process(client(node, "read", [(0, 0, 8)])))
    node.accepted += 1  # corrupt the books: one accepted request vanished
    sanitizer.check_nodes_drained()
    assert {v.kind for v in sanitizer.violations} == {"ionode-undrained"}
    sanitizer.on_ionode(node)
    assert "ionode-lost-request" in {v.kind for v in sanitizer.violations}


def test_sanitizer_flags_byte_conservation_breach():
    env = Environment()
    node = make_node(env)
    sanitizer = EngineSanitizer(env)  # standalone: seeding on purpose
    env.run(env.process(client(node, "read", [(0, 0, 8)])))
    node.read_delivered_bytes -= 1  # pretend a byte went missing
    sanitizer.on_ionode(node)
    kinds = {v.kind for v in sanitizer.violations}
    assert "ionode-byte-conservation" in kinds
