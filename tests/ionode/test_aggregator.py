"""Unit tests for request coalescing and data-sieving plans (pure planning)."""

import numpy as np
import pytest

from repro.ionode import Run, coalesce, plan_reads, plan_writes


# -- coalesce -----------------------------------------------------------------


def test_coalesce_empty():
    assert coalesce([]) == []


def test_coalesce_drops_zero_length():
    assert coalesce([(10, 0), (20, 0)]) == []


def test_coalesce_merges_adjacent():
    assert coalesce([(0, 10), (10, 10)]) == [Run(0, 20)]


def test_coalesce_merges_overlapping():
    assert coalesce([(0, 10), (5, 10)]) == [Run(0, 15)]


def test_coalesce_keeps_disjoint():
    assert coalesce([(0, 4), (8, 4)]) == [Run(0, 4), Run(8, 4)]


def test_coalesce_unsorted_input():
    assert coalesce([(20, 5), (0, 5), (5, 5)]) == [Run(0, 10), Run(20, 5)]


def test_coalesce_contained_range_absorbed():
    assert coalesce([(0, 100), (10, 5)]) == [Run(0, 100)]


def test_every_input_contained_in_exactly_one_run():
    ranges = [(3, 7), (15, 1), (9, 6), (40, 2)]
    runs = coalesce(ranges)
    for off, n in ranges:
        holders = [r for r in runs if r.offset <= off and off + n <= r.end]
        assert len(holders) == 1


# -- plan_reads ---------------------------------------------------------------


def test_single_run_is_never_sieved():
    plan = plan_reads([(0, 10), (10, 10)])
    assert plan.reads == (Run(0, 20),)
    assert not plan.sieved
    assert plan.waste_bytes == 0
    assert plan.payload_bytes == 20


def test_small_holes_trigger_sieving():
    # 2 runs of 100 bytes with a 50-byte hole: span 250 <= 4 * 200
    plan = plan_reads([(0, 100), (150, 100)])
    assert plan.sieved
    assert plan.reads == (Run(0, 250),)
    assert plan.payload_bytes == 200
    assert plan.waste_bytes == 50
    assert plan.device_bytes == 250


def test_large_holes_defeat_sieving():
    # span 10_100 > 4 * 200: cheaper to pay two requests
    plan = plan_reads([(0, 100), (10_000, 100)])
    assert not plan.sieved
    assert len(plan.reads) == 2
    assert plan.waste_bytes == 0


def test_sieve_window_bounds_covering_extent():
    plan = plan_reads([(0, 600), (800, 600)], sieve_window=1000)
    assert not plan.sieved
    assert len(plan.reads) == 2


def test_sieve_disabled():
    plan = plan_reads([(0, 100), (150, 100)], sieve=False)
    assert not plan.sieved
    assert len(plan.reads) == 2


def test_sieve_factor_validated():
    with pytest.raises(ValueError):
        plan_reads([(0, 1)], sieve_factor=0.5)


def test_device_bytes_equals_payload_plus_waste():
    for ranges in ([(0, 64), (100, 64), (200, 64)], [(0, 8)], [(0, 4), (4096, 4)]):
        plan = plan_reads(ranges)
        assert plan.device_bytes == plan.payload_bytes + plan.waste_bytes


# -- plan_writes --------------------------------------------------------------


def test_plan_writes_merges_adjacent():
    ops = plan_writes([(0, b"aaaa"), (4, b"bbbb")])
    assert len(ops) == 1
    assert ops[0].offset == 0
    assert bytes(ops[0].data) == b"aaaabbbb"


def test_plan_writes_keeps_gaps_separate():
    ops = plan_writes([(0, b"aa"), (10, b"bb")])
    assert [(op.offset, len(op.data)) for op in ops] == [(0, 2), (10, 2)]


def test_plan_writes_overlap_never_merges():
    """Overlapping writes are a client race: issue each in arrival order."""
    ops = plan_writes([(4, b"late"), (0, b"earlybird")])
    assert [(op.offset, bytes(op.data)) for op in ops] == [
        (4, b"late"),
        (0, b"earlybird"),
    ]


def test_plan_writes_drops_empty():
    ops = plan_writes([(0, b""), (8, b"x")])
    assert len(ops) == 1
    assert ops[0].offset == 8


def test_plan_writes_accepts_arrays():
    ops = plan_writes([(0, np.arange(4, dtype=np.uint8))])
    assert bytes(ops[0].data) == bytes(range(4))
