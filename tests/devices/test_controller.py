"""Unit tests for the simulated device controller."""

import numpy as np
import pytest

from repro.devices import (
    RAM_DEVICE,
    WREN_1989,
    DeviceController,
    DeviceFailedError,
    DiskGeometry,
    DiskModel,
    make_policy,
)
from repro.sim import Environment


def make_controller(env, *, timing=WREN_1989, policy=None, overhead=0.0005, name="d0"):
    disk = DiskModel(DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=128), timing)
    return DeviceController(env, disk, name=name, policy=policy, per_request_overhead=overhead)


class TestReadWrite:
    def test_write_then_read_roundtrip(self):
        env = Environment()
        dev = make_controller(env)
        payload = bytes(range(256))

        def proc():
            yield dev.write(1000, payload)
            data = yield dev.read(1000, 256)
            return bytes(data)

        assert env.run(env.process(proc())) == payload

    def test_unwritten_space_reads_zero(self):
        env = Environment()
        dev = make_controller(env)

        def proc():
            data = yield dev.read(0, 16)
            return bytes(data)

        assert env.run(env.process(proc())) == b"\0" * 16

    def test_numpy_write_accepted(self):
        env = Environment()
        dev = make_controller(env)
        arr = np.arange(64, dtype=np.uint8)

        def proc():
            n = yield dev.write(0, arr)
            data = yield dev.read(0, 64)
            return n, data

        n, data = env.run(env.process(proc()))
        assert n == 64
        assert np.array_equal(data, arr)

    def test_out_of_range_rejected(self):
        env = Environment()
        dev = make_controller(env)
        with pytest.raises(ValueError):
            dev.read(dev.capacity_bytes - 10, 100)
        with pytest.raises(ValueError):
            dev.read(-1, 10)

    def test_requests_serialize_on_one_arm(self):
        env = Environment()
        dev = make_controller(env, timing=RAM_DEVICE, overhead=1.0)
        done = []

        def proc(i):
            yield dev.read(0, 512)
            done.append((i, env.now))

        for i in range(3):
            env.process(proc(i))
        env.run()
        # 1.0s overhead per request on one arm -> completions serialize
        times = [t for _, t in done]
        per_request = 1.0 + 512 / 100e6
        assert times == pytest.approx([per_request * (i + 1) for i in range(3)], rel=1e-3)

    def test_latency_stats_collected(self):
        env = Environment()
        dev = make_controller(env)

        def proc():
            yield dev.write(0, b"x" * 512)
            yield dev.read(0, 512)

        env.run(env.process(proc()))
        assert dev.latency.count == 2
        assert dev.latency.mean > 0

    def test_utilization_between_zero_and_one(self):
        env = Environment()
        dev = make_controller(env)

        def proc():
            yield dev.read(0, 512)
            yield env.timeout(1.0)  # idle tail
            yield dev.read(0, 512)

        env.run(env.process(proc()))
        u = dev.utilization.utilization(env.now)
        assert 0 < u < 1


class TestScheduling:
    def test_sstf_reorders_queue(self):
        env = Environment()
        dev = make_controller(env, policy=make_policy("sstf"))
        order = []
        bs = 512 * 8  # one cylinder of bytes

        def submit_all():
            # Head at cylinder 0. Queue far (cyl 100), then near (cyl 2).
            far = dev.read(100 * bs, 512)
            near = dev.read(2 * bs, 512)

            def on_far(ev):
                order.append("far")

            def on_near(ev):
                order.append("near")

            far.callbacks.append(on_far)
            near.callbacks.append(on_near)
            if False:
                yield

        env.process(submit_all())
        env.run()
        # The first request is grabbed immediately (FCFS while idle), but
        # with both queued the controller begins with whatever select()
        # returns; since both were pending before service started, SSTF
        # picks the near one first.
        assert order == ["near", "far"]

    def test_fcfs_preserves_arrival_order(self):
        env = Environment()
        dev = make_controller(env, policy=make_policy("fcfs"))
        order = []
        bs = 512 * 8

        def submit_all():
            a = dev.read(100 * bs, 512)
            b = dev.read(2 * bs, 512)
            a.callbacks.append(lambda ev: order.append("far"))
            b.callbacks.append(lambda ev: order.append("near"))
            if False:
                yield

        env.process(submit_all())
        env.run()
        assert order == ["far", "near"]


class TestFailure:
    def test_failed_device_rejects_new_requests(self):
        env = Environment()
        dev = make_controller(env)
        dev.fail()
        outcome = []

        def proc():
            try:
                yield dev.read(0, 512)
            except DeviceFailedError as e:
                outcome.append(e.device)

        env.process(proc())
        env.run()
        assert outcome == ["d0"]

    def test_pending_requests_fail_on_device_failure(self):
        env = Environment()
        dev = make_controller(env)
        outcome = []

        def reader():
            try:
                yield dev.read(0, 512)
                outcome.append("ok")
            except DeviceFailedError:
                outcome.append("failed")

        def killer():
            yield env.timeout(0.0001)  # mid-queue
            dev.fail()

        env.process(reader())
        env.process(reader())
        env.process(killer())
        env.run()
        assert "failed" in outcome

    def test_repair_without_contents_zeroes_device(self):
        env = Environment()
        dev = make_controller(env)

        def proc():
            yield dev.write(0, b"\xff" * 16)
            dev.fail()
            dev.repair()
            data = yield dev.read(0, 16)
            return bytes(data)

        assert env.run(env.process(proc())) == b"\0" * 16

    def test_repair_with_restored_contents(self):
        env = Environment()
        dev = make_controller(env)

        def proc():
            yield dev.write(0, b"abcd")
            snap = dev.snapshot()
            dev.fail()
            dev.repair(contents=snap)
            data = yield dev.read(0, 4)
            return bytes(data)

        assert env.run(env.process(proc())) == b"abcd"

    def test_peek_poke(self):
        env = Environment()
        dev = make_controller(env)
        dev.poke(100, b"zz")
        assert bytes(dev.peek(100, 2)) == b"zz"
        with pytest.raises(ValueError):
            dev.peek(dev.capacity_bytes, 1)
