"""Additional device controller coverage: dataless mode, service logs,
queue interactions."""

import numpy as np
import pytest

from repro.devices import (
    RAM_DEVICE,
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
)
from repro.sim import Environment


def make(env, *, store_data=True, keep_service_log=False, timing=WREN_1989):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    return DeviceController(
        env, DiskModel(geo, timing), name="d0",
        store_data=store_data, keep_service_log=keep_service_log,
    )


class TestDatalessMode:
    """store_data=False: pure timing model, no contents array (for very
    large simulated devices)."""

    def test_reads_return_zeros(self):
        env = Environment()
        dev = make(env, store_data=False)

        def proc():
            yield dev.write(0, b"hello")
            data = yield dev.read(0, 5)
            return bytes(data)

        assert env.run(env.process(proc())) == b"\0" * 5

    def test_timing_identical_to_stored_mode(self):
        def run(store):
            env = Environment()
            dev = make(env, store_data=store)

            def proc():
                yield dev.write(0, b"x" * 2048)
                yield dev.read(4096, 2048)

            env.run(env.process(proc()))
            return env.now

        assert run(True) == run(False)


class TestServiceLog:
    def test_disabled_by_default(self):
        env = Environment()
        assert make(env).service_log is None

    def test_intervals_recorded_in_order(self):
        env = Environment()
        dev = make(env, keep_service_log=True)

        def proc():
            yield dev.write(0, b"a" * 512)
            yield dev.read(512, 512)

        env.run(env.process(proc()))
        log = dev.service_log
        assert len(log) == 2
        assert log[0].kind == "write" and log[1].kind == "read"
        assert log[0].end <= log[1].start
        assert all(iv.end > iv.start for iv in log)

    def test_interval_offsets_and_sizes(self):
        env = Environment()
        dev = make(env, keep_service_log=True)

        def proc():
            yield dev.read(1024, 256)

        env.run(env.process(proc()))
        iv = dev.service_log[0]
        assert iv.offset == 1024 and iv.nbytes == 256


class TestQueueBehaviour:
    def test_queue_length_reflects_backlog(self):
        env = Environment()
        dev = make(env, timing=RAM_DEVICE)
        observed = []

        def submitter():
            for _ in range(5):
                dev.read(0, 512)
            observed.append(dev.queue_length)
            if False:
                yield

        env.process(submitter())
        env.run()
        # all 5 submitted instantly; at least 4 were queued behind the
        # first before service began
        assert observed[0] >= 4
        assert dev.queue_length == 0  # drained by the end

    def test_zero_byte_io(self):
        env = Environment()
        dev = make(env)

        def proc():
            n = yield dev.write(0, b"")
            data = yield dev.read(0, 0)
            return n, len(data)

        assert env.run(env.process(proc())) == (0, 0)


class TestQueueStat:
    def test_time_weighted_queue_length(self):
        env = Environment()
        dev = make(env, timing=RAM_DEVICE)

        def submitter():
            # 4 requests land at t=0; with ~zero service time they drain fast
            for _ in range(4):
                dev.read(0, 512)
            if False:
                yield

        env.process(submitter())
        env.run()
        # the queue existed, then drained to zero
        assert dev.queue_stat.max >= 3
        assert dev.queue_stat.current == 0

    def test_mean_queue_grows_with_load(self):
        def run(n_concurrent):
            env = Environment()
            dev = make(env)

            def client():
                for _ in range(10):
                    yield dev.read(0, 512)

            for _ in range(n_concurrent):
                env.process(client())
            env.run()
            return dev.queue_stat.mean(env.now)

        assert run(8) > run(1)
