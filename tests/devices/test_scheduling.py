"""Unit tests for disk-arm scheduling policies."""

from dataclasses import dataclass

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.devices import CSCAN, FCFS, SCAN, SSTF, make_policy


@dataclass
class Req:
    cylinder: int


def run_policy(policy, cylinders, head=0):
    """Drain a static request set through the policy, returning serve order."""
    pending = [Req(c) for c in cylinders]
    order = []
    while pending:
        i = policy.select(pending, head)
        req = pending.pop(i)
        order.append(req.cylinder)
        head = req.cylinder
    return order


class TestFCFS:
    def test_arrival_order(self):
        assert run_policy(FCFS(), [50, 10, 90]) == [50, 10, 90]


class TestSSTF:
    def test_nearest_first(self):
        assert run_policy(SSTF(), [50, 10, 90], head=15) == [10, 50, 90]

    def test_greedy_serves_far_request_last(self):
        # classic SSTF behaviour: the near cluster is drained before the
        # far request at cylinder 100 (ties broken by arrival order)
        order = run_policy(SSTF(), [100, 8, 6, 4, 2], head=5)
        assert order[-1] == 100
        assert sorted(order[:-1]) == [2, 4, 6, 8]


class TestSCAN:
    def test_sweeps_up_then_down(self):
        assert run_policy(SCAN(), [10, 80, 40, 5], head=30) == [40, 80, 10, 5]

    def test_direction_state_persists(self):
        policy = SCAN()
        run_policy(policy, [50], head=0)      # sweeps up
        # after exhausting upward requests it reverses when needed
        assert run_policy(policy, [10, 90], head=50) == [90, 10]


class TestCSCAN:
    def test_wraps_to_lowest(self):
        assert run_policy(CSCAN(), [10, 80, 40], head=50) == [80, 10, 40]


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fcfs", FCFS), ("sstf", SSTF), ("scan", SCAN), ("cscan", CSCAN),
        ("FCFS", FCFS),
    ])
    def test_make_policy(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("elevator9000")


@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=30),
    st.integers(0, 500),
    st.sampled_from(["fcfs", "sstf", "scan", "cscan"]),
)
def test_every_policy_serves_every_request_exactly_once(cyls, head, name):
    order = run_policy(make_policy(name), cyls, head)
    assert sorted(order) == sorted(cyls)


@given(st.lists(st.integers(0, 500), min_size=1, max_size=30), st.integers(0, 500))
def test_sstf_total_movement_never_worse_than_fcfs_first_step(cyls, head):
    """SSTF's first pick is by definition the closest pending cylinder."""
    pending = [Req(c) for c in cyls]
    i = SSTF().select(pending, head)
    chosen = abs(pending[i].cylinder - head)
    assert chosen == min(abs(c - head) for c in cyls)
