"""Unit tests for the disk timing model."""

import numpy as np
import pytest

from repro.devices import WREN_1989, DiskGeometry, DiskModel, DiskTiming, RAM_DEVICE


@pytest.fixture
def disk():
    return DiskModel(DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=100), WREN_1989)


class TestGeometry:
    def test_capacity(self):
        g = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=100)
        assert g.capacity_blocks == 800
        assert g.capacity_bytes == 800 * 512

    def test_cylinder_of(self):
        g = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=100)
        assert g.cylinder_of(0) == 0
        assert g.cylinder_of(7) == 0
        assert g.cylinder_of(8) == 1
        assert g.cylinder_of(799) == 99

    def test_out_of_range_block(self):
        g = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=100)
        with pytest.raises(ValueError):
            g.cylinder_of(800)
        with pytest.raises(ValueError):
            g.cylinder_of(-1)

    def test_invalid_fields(self):
        with pytest.raises(ValueError):
            DiskGeometry(block_size=0)


class TestTiming:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiskTiming(transfer_rate=0)
        with pytest.raises(ValueError):
            DiskTiming(seek_min=0.01, seek_full=0.005)
        with pytest.raises(ValueError):
            DiskTiming(mtbf_hours=0)

    def test_presets_sane(self):
        assert WREN_1989.mtbf_hours == 30_000.0
        assert RAM_DEVICE.seek_full == 0.0


class TestSeek:
    def test_zero_distance_free(self, disk):
        assert disk.seek_time(0) == 0.0

    def test_monotone_in_distance(self, disk):
        times = [disk.seek_time(d) for d in (1, 4, 16, 64, 99)]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_full_stroke_calibration(self, disk):
        assert disk.seek_time(99) == pytest.approx(WREN_1989.seek_full)

    def test_single_track_near_minimum(self, disk):
        assert disk.seek_time(1) == pytest.approx(
            WREN_1989.seek_min + (WREN_1989.seek_full - WREN_1989.seek_min) / np.sqrt(99)
        )

    def test_negative_distance_rejected(self, disk):
        with pytest.raises(ValueError):
            disk.seek_time(-1)


class TestService:
    def test_sequential_same_cylinder_no_seek(self, disk):
        # Head starts at cylinder 0; blocks 0 and 1 are both cylinder 0,
        # so both accesses are pure transfer.
        t0 = disk.service(0, 512)
        t1 = disk.service(1, 512)
        assert t0 == pytest.approx(512 / WREN_1989.transfer_rate)
        assert t1 == pytest.approx(512 / WREN_1989.transfer_rate)
        assert disk.total_seeks == 0

    def test_cross_cylinder_pays_seek_and_rotation(self, disk):
        disk.service(0, 512)
        t = disk.service(640, 512)  # cylinder 80
        expected_min = disk.seek_time(80) + 512 / WREN_1989.transfer_rate
        assert t >= expected_min
        assert disk.total_seeks == 1
        assert disk.total_seek_distance == 80
        assert disk.head_cylinder == 80

    def test_transfer_proportional_to_bytes(self, disk):
        a = disk.service(0, 1024)
        b = disk.service(1, 2048)
        assert b == pytest.approx(a * 2) or b > a  # same cylinder: pure transfer doubles
        assert disk.service(2, 2048) == pytest.approx(2048 / WREN_1989.transfer_rate)

    def test_deterministic_rotational_latency_by_default(self):
        d1 = DiskModel(DiskGeometry(cylinders=10), WREN_1989)
        d2 = DiskModel(DiskGeometry(cylinders=10), WREN_1989)
        assert d1.service(100, 512) == d2.service(100, 512)

    def test_sampled_rotational_latency_with_rng(self):
        rng = np.random.default_rng(0)
        d = DiskModel(DiskGeometry(cylinders=10), WREN_1989, rng=rng)
        lat = d.rotational_latency()
        assert 0 <= lat < WREN_1989.rotation_period

    def test_counters_accumulate(self, disk):
        disk.service(0, 100)
        disk.service(700, 200)
        assert disk.total_requests == 2
        assert disk.total_bytes == 300

    def test_reset_position(self, disk):
        disk.service(700, 100)
        disk.reset_position(0)
        assert disk.head_cylinder == 0
        with pytest.raises(ValueError):
            disk.reset_position(1000)
