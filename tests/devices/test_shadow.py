"""Unit tests for shadow (mirror) pairs."""

import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DeviceFailedError,
    DiskGeometry,
    DiskModel,
    ShadowPair,
)
from repro.sim import Environment


def make_pair(env):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    p = DeviceController(env, DiskModel(geo, WREN_1989), name="p")
    s = DeviceController(env, DiskModel(geo, WREN_1989), name="s")
    return ShadowPair(env, p, s), p, s


def test_write_mirrors_to_both():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        yield pair.write(0, b"data")

    env.run(env.process(proc()))
    assert bytes(p.peek(0, 4)) == b"data"
    assert bytes(s.peek(0, 4)) == b"data"


def test_read_after_primary_failure_uses_shadow():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        yield pair.write(0, b"safe")
        p.fail()
        data = yield pair.read(0, 4)
        return bytes(data)

    assert env.run(env.process(proc())) == b"safe"


def test_write_after_single_failure_still_succeeds():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        p.fail()
        yield pair.write(0, b"solo")
        data = yield pair.read(0, 4)
        return bytes(data)

    assert env.run(env.process(proc())) == b"solo"
    assert not pair.failed


def test_both_failed_pair_fails():
    env = Environment()
    pair, p, s = make_pair(env)
    p.fail()
    s.fail()
    assert pair.failed
    outcome = []

    def proc():
        try:
            yield pair.read(0, 4)
        except DeviceFailedError:
            outcome.append("failed")

    env.process(proc())
    env.run()
    assert outcome == ["failed"]


def test_resilver_restores_failed_member():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        yield pair.write(0, b"gold")
        p.fail()
        yield pair.write(4, b"more")   # only shadow has this
        pair.resilver()
        return bytes(p.peek(0, 8))

    assert env.run(env.process(proc())) == b"goldmore"


def test_resilver_with_no_survivor_raises():
    env = Environment()
    pair, p, s = make_pair(env)
    p.fail()
    s.fail()
    with pytest.raises(DeviceFailedError):
        pair.resilver()


def test_capacity_mismatch_rejected():
    env = Environment()
    geo_a = DiskGeometry(cylinders=10)
    geo_b = DiskGeometry(cylinders=20)
    a = DeviceController(env, DiskModel(geo_a, WREN_1989), name="a")
    b = DeviceController(env, DiskModel(geo_b, WREN_1989), name="b")
    with pytest.raises(ValueError):
        ShadowPair(env, a, b)


def test_mirrored_write_takes_max_of_member_times():
    env = Environment()
    pair, p, s = make_pair(env)
    done = []

    def proc():
        yield pair.write(0, b"x" * 512)
        done.append(env.now)

    def single():
        env2 = Environment()
        geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
        d = DeviceController(env2, DiskModel(geo, WREN_1989), name="solo")

        def w():
            yield d.write(0, b"x" * 512)

        env2.run(env2.process(w()))
        return env2.now

    env.run(env.process(proc()))
    # identical members, both start idle -> completion equals the single-
    # device time (writes proceed in parallel, not serially)
    assert done[0] == pytest.approx(single())


def test_resilver_timed_pays_copy_cost_and_restores():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        yield pair.write(0, b"precious")
        p.fail()
        yield pair.write(8, b"newer")    # survivor-only data
        t0 = env.now
        copied = yield from pair.resilver_timed(chunk_bytes=4096)
        return copied, env.now - t0

    copied, elapsed = env.run(env.process(proc()))
    assert copied == p.capacity_bytes
    assert elapsed > 0
    assert bytes(p.peek(0, 13)) == b"preciousnewer"


def test_resilver_timed_noop_when_both_alive():
    env = Environment()
    pair, p, s = make_pair(env)

    def proc():
        copied = yield from pair.resilver_timed()
        return copied

    assert env.run(env.process(proc())) == 0


def test_resilver_timed_no_survivor():
    env = Environment()
    pair, p, s = make_pair(env)
    p.fail()
    s.fail()
    with pytest.raises(DeviceFailedError):
        next(pair.resilver_timed())


def test_concurrent_reads_with_one_member_failed():
    """Many clients reading at once while one member is dead: every read
    is served (by the survivor) and returns the mirrored data."""
    env = Environment()
    pair, p, s = make_pair(env)
    results = {}

    def seed_then_fail():
        for i in range(8):
            yield pair.write(i * 512, bytes([i]) * 512)
        p.fail()

    env.run(env.process(seed_then_fail()))

    def reader(i):
        data = yield pair.read(i * 512, 512)
        results[i] = bytes(data)

    for i in range(8):
        env.process(reader(i))
    env.run()

    assert len(results) == 8
    for i in range(8):
        assert results[i] == bytes([i]) * 512
    assert not pair.failed


def test_concurrent_mixed_load_mid_run_failure_retry_succeeds():
    """A member dying under concurrent load fails only the operations in
    flight on it; a client retry through the (degraded) pair succeeds."""
    env = Environment()
    pair, p, s = make_pair(env)
    done = []

    def seed():
        yield pair.write(0, b"\xAA" * 4096)

    env.run(env.process(seed()))

    def client(i):
        try:
            data = yield pair.read(i * 512, 512)
        except DeviceFailedError:
            data = yield pair.read(i * 512, 512)  # retry on the survivor
        assert bytes(data) == b"\xAA" * 512
        done.append(i)

    def killer():
        yield env.timeout(0.0015)  # while the queues are busy
        s.fail()

    for i in range(6):
        env.process(client(i))
    env.process(killer())
    env.run()

    assert sorted(done) == list(range(6))
    assert s.failed and not p.failed and not pair.failed
