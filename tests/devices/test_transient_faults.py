"""Unit tests for transient fault injection (intermittent errors, limping)."""

import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
    TransientFaultInjector,
    TransientIOError,
)
from repro.sim import Environment, RngStreams


def make_device(env, name="d0"):
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)
    return DeviceController(env, DiskModel(geo, WREN_1989), name=name)


def make_injector(env):
    return TransientFaultInjector(env, RngStreams(7))


def test_injected_error_fails_one_request_then_recovers():
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)
    inj.inject_errors(dev, count=1)
    outcomes = []

    def proc():
        try:
            yield dev.write(0, b"aaaa")
        except TransientIOError as e:
            outcomes.append(("error", e.device))
        n = yield dev.write(0, b"bbbb")
        outcomes.append(("ok", n))

    env.run(env.process(proc()))
    assert outcomes == [("error", "d0"), ("ok", 4)]
    # the failed attempt never touched the media
    assert bytes(dev.peek(0, 4)) == b"bbbb"
    assert dev.transient_errors == 1
    assert dev.writes_applied == 1
    assert not dev.failed


def test_error_budget_consumed_in_order():
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)
    inj.inject_errors(dev, count=2)
    results = []

    def client(i):
        try:
            yield dev.read(0, 4)
            results.append((i, "ok"))
        except TransientIOError:
            results.append((i, "err"))

    for i in range(3):
        env.process(client(i))
    env.run()
    assert sorted(results) == [(0, "err"), (1, "err"), (2, "ok")]
    assert dev.transient_error_budget == 0


def test_scheduled_error_applies_at_time():
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)
    inj.inject_errors(dev, count=1, at=1.0)

    def early():
        yield dev.write(0, b"x")  # before the fault window: fine

    env.run(env.process(early()))
    assert dev.transient_error_budget == 0
    env.run(until=2.0)
    assert dev.transient_error_budget == 1
    assert [f.kind for f in inj.failures] == ["transient"]


def test_limp_slows_service_then_expires():
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)

    def timed_read():
        t0 = env.now
        yield dev.read(0, 512)
        return env.now - t0

    healthy = env.run(env.process(timed_read()))
    inj.limp(dev, factor=8.0, duration=100.0)
    limping = env.run(env.process(timed_read()))
    assert limping > healthy * 2
    assert dev.limped_requests == 1

    def wait_out():
        yield env.timeout(200.0)

    env.run(env.process(wait_out()))
    recovered = env.run(env.process(timed_read()))
    assert recovered == pytest.approx(healthy, rel=0.5)
    assert dev.limped_requests == 1
    assert [f.kind for f in inj.failures] == ["limp"]


def test_limp_rejects_bad_parameters():
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)
    with pytest.raises(ValueError):
        inj.limp(dev, factor=1.0, duration=10.0)
    with pytest.raises(ValueError):
        inj.limp(dev, factor=2.0, duration=0.0)
    with pytest.raises(ValueError):
        inj.inject_errors(dev, count=0)


def test_poisson_glitch_stream_is_deterministic_and_bounded():
    def run(seed):
        env = Environment()
        dev = make_device(env)
        inj = TransientFaultInjector(env, RngStreams(seed))
        inj.arm_intermittent(dev, mean_interval=5.0, horizon=200.0)
        env.run(until=300.0)
        return [f.time for f in inj.failures]

    a, b = run(3), run(3)
    assert a == b
    assert len(a) > 0
    assert all(t < 200.0 for t in a)
    assert run(3) != run(4) or len(run(4)) == 0


def test_transient_error_is_not_a_device_failure():
    """A transient error must leave the controller alive: subsequent
    requests are served and the pair-level fail() path never engages."""
    env = Environment()
    dev = make_device(env)
    inj = make_injector(env)
    inj.inject_errors(dev, count=1)

    def proc():
        with pytest.raises(TransientIOError):
            yield dev.read(0, 4)
        data = yield dev.read(0, 4)
        return len(data)

    assert env.run(env.process(proc())) == 4
    assert not dev.failed
