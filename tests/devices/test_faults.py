"""Unit tests for failure injection."""

import pytest

from repro.devices import (
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
    FailureInjector,
)
from repro.devices.faults import SECONDS_PER_HOUR
from repro.sim import Environment, RngStreams


def make_devices(env, n):
    geo = DiskGeometry(cylinders=16)
    return [
        DeviceController(env, DiskModel(geo, WREN_1989), name=f"d{i}")
        for i in range(n)
    ]


def test_kill_at_deterministic():
    env = Environment()
    (dev,) = make_devices(env, 1)
    inj = FailureInjector(env, RngStreams(0))
    inj.kill_at(dev, 100.0)
    env.run(until=99)
    assert not dev.failed
    env.run(until=101)
    assert dev.failed
    assert inj.failures[0].device == "d0"
    assert inj.failures[0].time == 100.0


def test_kill_in_past_rejected():
    env = Environment()
    (dev,) = make_devices(env, 1)
    inj = FailureInjector(env, RngStreams(0))
    env.run(until=10)
    with pytest.raises(ValueError):
        inj.kill_at(dev, 5.0)


def test_arm_schedules_exponential_failure():
    env = Environment()
    (dev,) = make_devices(env, 1)
    inj = FailureInjector(env, RngStreams(7))
    when = inj.arm(dev)
    assert when > 0
    env.run(until=when + 1)
    assert dev.failed


def test_arm_all_and_first_failure():
    env = Environment()
    devices = make_devices(env, 5)
    inj = FailureInjector(env, RngStreams(3))
    times = inj.arm_all(devices)
    assert len(times) == 5
    env.run(until=max(times) + 1)
    assert len(inj.failures) == 5
    assert inj.first_failure_time == pytest.approx(min(times))


def test_arm_uses_device_mtbf_scale():
    """Mean of armed lifetimes should approximate MTBF (law of large numbers)."""
    env = Environment()
    devices = make_devices(env, 400)
    inj = FailureInjector(env, RngStreams(11))
    times = inj.arm_all(devices)
    mean_hours = sum(times) / len(times) / SECONDS_PER_HOUR
    assert mean_hours == pytest.approx(WREN_1989.mtbf_hours, rel=0.15)


def test_invalid_mtbf_rejected():
    env = Environment()
    (dev,) = make_devices(env, 1)
    inj = FailureInjector(env, RngStreams(0))
    with pytest.raises(ValueError):
        inj.arm(dev, mtbf_hours=0)


def test_no_failures_first_failure_none():
    inj = FailureInjector(Environment(), RngStreams(0))
    assert inj.first_failure_time is None


def test_injector_fires_mid_queue_fails_pending_requests():
    """A failure while requests sit in the device queue fails every pending
    request with DeviceFailedError; requests completed beforehand keep
    their results."""
    env = Environment()
    (dev,) = make_devices(env, 1)
    inj = FailureInjector(env, RngStreams(0))
    outcomes = []

    def client(i):
        try:
            yield dev.read(i * 512, 512)
            outcomes.append(("ok", i, env.now))
        except Exception as exc:  # noqa: BLE001 - recording the outcome
            outcomes.append(("err", i, type(exc).__name__))

    for i in range(10):
        env.process(client(i))
    # one request takes ~1ms of service; kill while the queue is deep
    inj.kill_at(dev, 0.004)
    env.run()

    oks = [o for o in outcomes if o[0] == "ok"]
    errs = [o for o in outcomes if o[0] == "err"]
    assert len(outcomes) == 10
    assert oks, "some requests should complete before the failure"
    assert errs, "requests queued at failure time must fail"
    assert all(name == "DeviceFailedError" for _, _, name in errs)
    assert all(t <= 0.004 for _, _, t in oks)
    assert dev.failed and inj.failures[0].time == 0.004
