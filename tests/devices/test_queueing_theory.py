"""Validation of the device controller against queueing theory.

The simulator's credibility rests on its queueing behaviour: a device
with Poisson arrivals and deterministic service is an M/D/1 queue, for
which utilization and mean waiting time have closed forms. These tests
drive the controller with random arrivals and check the measured
statistics against theory (loose tolerances — finite runs).
"""

import pytest

from repro.devices import RAM_DEVICE, DeviceController, DiskGeometry, DiskModel, DiskTiming
from repro.sim import Environment, RngStreams


def run_md1(arrival_rate: float, service_time: float, n_jobs: int = 3000, seed: int = 1):
    """Poisson arrivals to a deterministic-service device; returns
    (utilization, mean wait in queue, mean total latency)."""
    env = Environment()
    # a device whose every request takes exactly `service_time`:
    # zero seek/rotation, overhead = service_time, instant transfer
    geo = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=4)
    timing = DiskTiming(
        seek_min=0.0, seek_full=0.0, rotation_period=0.0,
        transfer_rate=1e18, mtbf_hours=1e9,
    )
    dev = DeviceController(
        env, DiskModel(geo, timing), name="q",
        per_request_overhead=service_time,
    )
    streams = RngStreams(seed)
    waits = []

    def job():
        submitted = env.now
        yield dev.read(0, 1)
        waits.append(env.now - submitted - service_time)

    def arrivals():
        for _ in range(n_jobs):
            yield env.timeout(streams.exponential("arr", 1.0 / arrival_rate))
            env.process(job())

    env.run(env.process(arrivals()))
    env.run()
    util = dev.utilization.utilization(env.now)
    mean_wait = sum(waits) / len(waits)
    return util, mean_wait


class TestMD1:
    @pytest.mark.parametrize("rho", [0.3, 0.6, 0.8])
    def test_utilization_equals_offered_load(self, rho):
        service = 0.01
        util, _ = run_md1(arrival_rate=rho / service, service_time=service)
        assert util == pytest.approx(rho, rel=0.06)

    @pytest.mark.parametrize("rho", [0.3, 0.6])
    def test_mean_wait_matches_pollaczek_khinchine(self, rho):
        """M/D/1: Wq = rho * S / (2 * (1 - rho))."""
        service = 0.01
        _, wq = run_md1(arrival_rate=rho / service, service_time=service,
                        n_jobs=6000)
        expected = rho * service / (2 * (1 - rho))
        assert wq == pytest.approx(expected, rel=0.15)

    def test_wait_explodes_near_saturation(self):
        service = 0.01
        _, wq_low = run_md1(arrival_rate=0.5 / service, service_time=service)
        _, wq_high = run_md1(arrival_rate=0.95 / service, service_time=service)
        assert wq_high > 5 * wq_low
