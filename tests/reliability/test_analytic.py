"""Unit tests for analytic reliability — anchored to the paper's §5 numbers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reliability import (
    HOURS_PER_WEEK,
    availability,
    expected_failures,
    failure_probability,
    mtbf_table_row,
    system_mtbf,
)


class TestPaperNumbers:
    """The exact claims of §5 with 30,000 h Winchester drives."""

    def test_ten_devices_fail_every_3000_hours(self):
        assert system_mtbf(30_000, 10) == pytest.approx(3000)

    def test_ten_devices_about_three_failures_per_year(self):
        row = mtbf_table_row(30_000, 10)
        assert row["failures_per_year"] == pytest.approx(2.92, abs=0.05)

    def test_hundred_devices_more_than_one_failure_per_two_weeks(self):
        row = mtbf_table_row(30_000, 100)
        assert row["system_mtbf_hours"] == pytest.approx(300)
        assert row["weeks_between_failures"] < 2.0
        assert row["system_mtbf_hours"] < 2 * HOURS_PER_WEEK

    def test_single_device_baseline(self):
        assert system_mtbf(30_000, 1) == 30_000


class TestMath:
    def test_expected_failures_linear_in_time_and_devices(self):
        assert expected_failures(30_000, 10, 3000) == pytest.approx(1.0)
        assert expected_failures(30_000, 20, 3000) == pytest.approx(2.0)
        assert expected_failures(30_000, 10, 6000) == pytest.approx(2.0)

    def test_failure_probability_poisson(self):
        p = failure_probability(30_000, 10, 3000)
        assert p == pytest.approx(1 - math.exp(-1))

    def test_failure_probability_bounds(self):
        assert failure_probability(30_000, 10, 0) == 0.0
        assert failure_probability(30_000, 1000, 1e9) == pytest.approx(1.0)

    def test_availability_shrinks_with_devices(self):
        a1 = availability(30_000, 1, mttr_hours=24)
        a100 = availability(30_000, 100, mttr_hours=24)
        assert a100 < a1 < 1.0
        assert a100 == pytest.approx(a1**100)

    def test_availability_perfect_with_zero_mttr(self):
        assert availability(30_000, 50, 0) == 1.0

    @given(st.floats(1, 1e6), st.integers(1, 10_000))
    def test_system_mtbf_monotone_decreasing_in_n(self, mtbf, n):
        assert system_mtbf(mtbf, n + 1) < system_mtbf(mtbf, n)

    def test_validation(self):
        with pytest.raises(ValueError):
            system_mtbf(0, 10)
        with pytest.raises(ValueError):
            system_mtbf(30_000, 0)
        with pytest.raises(ValueError):
            expected_failures(30_000, 10, -1)
        with pytest.raises(ValueError):
            availability(30_000, 10, -1)
