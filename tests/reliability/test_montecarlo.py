"""Unit tests for Monte Carlo reliability simulation."""

import pytest

from repro.reliability import (
    simulate_fleet,
    simulate_protected_fleet,
    system_mtbf,
)


class TestSimulateFleet:
    def test_matches_analytic_first_failure(self):
        r = simulate_fleet(10, 30_000, n_trials=4000, seed=1)
        assert r.mean_time_to_first_failure == pytest.approx(
            system_mtbf(30_000, 10), rel=0.08
        )

    def test_matches_analytic_failures_per_year(self):
        r = simulate_fleet(100, 30_000, n_trials=4000, seed=2)
        # analytic: 100 * 8766 / 30000 = 29.2 failures/year
        assert r.mean_failures_per_year == pytest.approx(29.2, rel=0.05)

    def test_deterministic_given_seed(self):
        a = simulate_fleet(10, 30_000, n_trials=100, seed=5)
        b = simulate_fleet(10, 30_000, n_trials=100, seed=5)
        assert a == b

    def test_more_devices_fail_sooner(self):
        small = simulate_fleet(10, 30_000, n_trials=2000, seed=3)
        large = simulate_fleet(100, 30_000, n_trials=2000, seed=3)
        assert large.mean_time_to_first_failure < small.mean_time_to_first_failure

    def test_row_renders(self):
        assert "N=10" in simulate_fleet(10, 30_000, n_trials=10, seed=0).row()

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_fleet(0, 30_000)
        with pytest.raises(ValueError):
            simulate_fleet(10, -5)


class TestProtectedFleet:
    def test_protection_ordering(self):
        """none > parity/shadow in loss probability; protection helps."""
        kw = dict(
            n_devices=50, device_mtbf_hours=30_000, mttr_hours=24,
            n_trials=600, seed=7,
        )
        p_none = simulate_protected_fleet(scheme="none", **kw)
        p_parity = simulate_protected_fleet(scheme="parity", **kw)
        p_shadow = simulate_protected_fleet(scheme="shadow", **kw)
        assert p_none > 0.9        # ~15 failures/yr: loss nearly certain
        assert p_parity < p_none
        assert p_shadow <= p_parity  # shadow needs the *same* pair to overlap

    def test_zero_mttr_means_no_overlap_losses(self):
        p = simulate_protected_fleet(
            n_devices=50, device_mtbf_hours=30_000, mttr_hours=0,
            scheme="parity", n_trials=300, seed=9,
        )
        assert p == 0.0

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            simulate_protected_fleet(10, 30_000, 24, scheme="raid60")

    def test_negative_mttr(self):
        with pytest.raises(ValueError):
            simulate_protected_fleet(10, 30_000, -1, scheme="none")
