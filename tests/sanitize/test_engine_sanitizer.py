"""Engine invariant sanitizer: substrate-level race oracle."""

import pytest

from repro.buffering import BufferPool
from repro.sanitize import EngineSanitizer, SanitizerError, attach
from repro.sim import Container, Environment, Event, Resource, Store
from repro.trace import invariant_report


# -- attachment ----------------------------------------------------------------


def test_attach_and_strict_mode_construct_the_same_thing():
    env = Environment()
    san = attach(env)
    assert env.sanitizer is san
    assert attach(env) is san  # idempotent

    strict_env = Environment(strict=True)
    assert isinstance(strict_env.sanitizer, EngineSanitizer)
    assert strict_env.sanitizer.raise_on_violation


def test_clean_run_records_no_violations():
    env = Environment(strict=True)
    res = Resource(env, capacity=2)
    store = Store(env, capacity=2)
    box = Container(env, capacity=100, init=0)
    pool = BufferPool(env, n_buffers=2, buffer_bytes=64)

    def worker(i):
        with res.request() as req:
            yield req
            yield env.timeout(0.1)
        yield pool.acquire()
        yield from pool.charge(32)
        pool.release()
        yield store.put(i)
        yield box.put(10)

    def drain():
        for _ in range(4):
            yield store.get()
            yield box.get(10)

    for i in range(4):
        env.process(worker(i))
    env.process(drain())
    env.run()

    san = env.sanitizer
    assert san.clean
    assert san.checks > 0
    san.check_balanced()  # all buffers returned
    assert san.clean
    san.assert_clean()  # does not raise


# -- seeded violations (hooks called on corrupted state) -------------------------


def test_resource_double_grant_detected():
    env = Environment()
    san = EngineSanitizer(env)
    res = Resource(env, capacity=2)
    req = res.request()
    res.users.append(req)  # corrupt: same request granted twice

    san.on_resource(res)
    assert [v.kind for v in san.violations] == ["resource-double-grant"]


def test_resource_overcommit_detected():
    env = Environment()
    san = EngineSanitizer(env)
    res = Resource(env, capacity=1)
    res.users.extend([res.request(), res.request()])

    san.on_resource(res)
    assert "resource-overcommit" in [v.kind for v in san.violations]


def test_resource_lost_wakeup_detected():
    env = Environment()
    san = EngineSanitizer(env)
    res = Resource(env, capacity=1)
    waiter = Event(env)
    res._waiting.append(waiter)  # corrupt: sleeping waiter, free slot

    san.on_resource(res)
    assert [v.kind for v in san.violations] == ["resource-lost-wakeup"]


def test_store_lost_wakeup_detected():
    env = Environment()
    san = EngineSanitizer(env)
    store = Store(env)
    store.items.append("x")
    store._gets.append(Event(env))  # corrupt: item available, getter asleep

    san.on_store(store)
    assert [v.kind for v in san.violations] == ["store-lost-wakeup"]


def test_container_lost_wakeup_detected():
    env = Environment()
    san = EngineSanitizer(env)
    box = Container(env, capacity=10, init=5)
    get = box.get(2)  # satisfied immediately
    assert get.triggered

    class SleepingGet:  # shaped like an untriggered ContainerGet
        amount = 1.0
        triggered = False

    box._gets.append(SleepingGet())
    san.on_container(box)
    assert [v.kind for v in san.violations] == ["container-lost-wakeup"]


def test_event_reprocessed_detected():
    env = Environment()
    san = EngineSanitizer(env)
    ev = env.timeout(0)
    env.run()
    assert ev.processed

    san.on_step(ev)
    kinds = [v.kind for v in san.violations]
    assert "event-reprocessed" in kinds
    assert "event-callbacks-consumed" in kinds


def test_pool_balance_check():
    env = Environment()
    san = EngineSanitizer(env)  # standalone: not attached to the env
    pool = BufferPool(env, n_buffers=2, buffer_bytes=64)
    san.register_pool(pool)
    san.register_pool(pool)  # idempotent

    def holder():
        yield pool.acquire()

    env.run(env.process(holder()))
    assert san.clean
    san.check_balanced()
    assert [v.kind for v in san.violations] == ["pool-unreleased"]


def test_strict_mode_raises_immediately():
    env = Environment(strict=True)
    res = Resource(env, capacity=1)
    res.users.append(res.request())  # corrupt: double grant

    with pytest.raises(SanitizerError):
        env.sanitizer.on_resource(res)


def test_assert_clean_raises_with_rows():
    env = Environment()
    san = EngineSanitizer(env)
    san._violate("resource-double-grant", "seeded")
    with pytest.raises(SanitizerError, match="resource-double-grant"):
        san.assert_clean()


def test_invariant_report_renders():
    env = Environment()
    san = EngineSanitizer(env)
    lines = invariant_report(san)
    assert "no invariant violations" in lines[1]

    san._violate("store-lost-wakeup", "seeded")
    lines = invariant_report(san)
    assert "1 violation(s)" in lines[0]
    assert any("store-lost-wakeup" in line for line in lines[1:])
