"""Access-conflict detector: the §5 failure-mode oracle."""

import numpy as np
import pytest

from repro.fs import ParallelFileSystem, alternate_view
from repro.sanitize import AccessConflictDetector
from repro.sim import Environment
from repro.trace import conflict_report

from ..fs.conftest import build_pfs


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def detector():
    return AccessConflictDetector()


@pytest.fixture
def pfs(env, detector) -> ParallelFileSystem:
    fs = build_pfs(env)
    fs.sanitizer = detector
    return fs


def rows(n, items):
    return np.arange(n * items, dtype=np.uint8).reshape(n, items)


def make_gda(pfs, n_processes=2):
    return pfs.create(
        "gda",
        "GDA",
        n_records=64,
        record_size=16,
        records_per_block=8,
        n_processes=n_processes,
    )


def test_seeded_write_write_overlap_is_detected(env, pfs, detector):
    """Two processes writing the same record in one epoch is flagged."""
    f = make_gda(pfs)

    def writer(p):
        handle = f.internal_view(p)
        yield from handle.write_record(10, rows(1, 16))

    env.process(writer(0))
    env.process(writer(1))
    env.run()

    found = detector.findings_of("write-write-overlap")
    assert len(found) == 1
    assert found[0].processes == (0, 1)
    assert not detector.clean


def test_read_write_overlap_is_detected(env, pfs, detector):
    f = make_gda(pfs)

    def writer():
        handle = f.internal_view(0)
        yield from handle.write_record(5, rows(2, 16))

    def reader():
        handle = f.internal_view(1)
        yield from handle.read_record(6, 1)

    env.process(writer())
    env.process(reader())
    env.run()

    assert len(detector.findings_of("read-write-overlap")) == 1
    assert detector.findings_of("write-write-overlap") == []


def test_epoch_separation_suppresses_conflict(env, pfs, detector):
    """The same overlap across a barrier (epoch advance) is legal."""
    f = make_gda(pfs)

    def run_one(p):
        handle = f.internal_view(p)
        yield from handle.write_record(10, rows(1, 16))

    env.run(env.process(run_one(0)))
    detector.advance_epoch()
    env.run(env.process(run_one(1)))

    assert detector.clean
    assert detector.epoch == 1
    assert len(detector.records) == 2


def test_disjoint_writes_are_clean(env, pfs, detector):
    f = make_gda(pfs)

    def writer(p, record):
        handle = f.internal_view(p)
        yield from handle.write_record(record, rows(1, 16))

    env.process(writer(0, 3))
    env.process(writer(1, 40))
    env.run()

    assert detector.clean


def test_ps_read_as_is_view_mismatch(env, pfs, detector):
    """A PS file opened through an IS internal view is a §5 mismatch."""
    f = pfs.create(
        "ps",
        "PS",
        n_records=64,
        record_size=16,
        records_per_block=8,
        n_processes=4,
    )
    handle = alternate_view(f, "IS", process=1)

    mismatches = detector.findings_of("view-mismatch")
    assert len(mismatches) == 1
    assert "PS file opened with a IS internal view" in mismatches[0].detail

    def reader():
        yield from handle.read_next(handle.n_local_records)

    env.run(env.process(reader()))
    # the IS stride walks blocks the PS map assigns to other processes
    assert detector.findings_of("partition-boundary")


def test_native_view_is_not_a_mismatch(env, pfs, detector):
    f = pfs.create(
        "ps2",
        "PS",
        n_records=64,
        record_size=16,
        records_per_block=8,
        n_processes=4,
    )

    def worker(p):
        handle = f.internal_view(p)
        yield from handle.read_next(handle.n_local_records)

    for p in range(4):
        env.process(worker(p))
    env.run()

    assert detector.clean


def test_partition_boundary_violation_pda(env, pfs, detector):
    """A GDA-style stray write into another PDA partition is flagged."""
    f = pfs.create(
        "pda",
        "PDA",
        n_records=64,
        record_size=16,
        records_per_block=8,
        n_processes=2,
    )
    # bypass the OwnedDirectHandle ownership guard: write via the
    # record layer as process 0 into a block owned by process 1
    owned_by_1 = int(f.map.blocks_of(1)[0])
    start = f.attrs.block_spec.first_record(owned_by_1)

    def stray():
        yield f.write_records(start, rows(1, 16))
        f.trace(0, "write", owned_by_1, 1, start=start)

    env.run(env.process(stray()))

    found = detector.findings_of("partition-boundary")
    assert len(found) == 1
    assert found[0].processes == (0, 1)


def test_conflict_report_renders(env, pfs, detector):
    f = make_gda(pfs)

    def writer(p):
        handle = f.internal_view(p)
        yield from handle.write_record(10, rows(1, 16))

    env.process(writer(0))
    env.process(writer(1))
    env.run()

    lines = conflict_report(detector)
    assert "1 finding(s)" in lines[0]
    assert any("write-write-overlap" in line for line in lines[1:])
    assert detector.report() == lines


def test_clean_report_says_so(detector):
    lines = conflict_report(detector)
    assert "0 finding(s)" in lines[0]
    assert "no conflicts" in lines[1]
