"""Unit + property tests for two-phase collective I/O."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.collective import CollectiveIO
from repro.core import OrganizationError
from repro.sim import Environment
from tests.fs.conftest import build_pfs


def make_file(env, org="IS", n=96, rpb=2, p=4):
    pfs = build_pfs(env)
    return pfs.create(
        "coll", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p,
    )


def preload(env, f, data):
    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))


class TestCollectiveRead:
    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_matches_independent_reads(self, org):
        env = Environment()
        f = make_file(env, org)
        data = np.random.default_rng(0).random((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)

        def proc():
            out = yield from coll.read_all()
            return out

        out = env.run(env.process(proc()))
        for q in range(4):
            assert np.array_equal(out[q], data[f.map.records_of(q)])

    def test_exchange_bytes_counted(self):
        env = Environment()
        f = make_file(env, "IS")
        data = np.zeros((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)

        def proc():
            yield from coll.read_all()

        env.run(env.process(proc()))
        # IS records are spread across domains: most records travel
        assert coll.last_exchange_bytes > 0

    def test_ps_needs_little_exchange(self):
        """PS partitions nearly coincide with file domains: phase 2 ~ free."""
        env = Environment()
        f = make_file(env, "PS")
        data = np.zeros((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)

        def proc():
            yield from coll.read_all()

        env.run(env.process(proc()))
        assert coll.last_exchange_bytes == 0

    def test_dynamic_org_rejected(self):
        env = Environment()
        pfs = build_pfs(env)
        f = pfs.create("ss", "SS", n_records=8, record_size=16,
                       dtype="float64", records_per_block=1, n_processes=2)
        with pytest.raises(OrganizationError):
            CollectiveIO(f)

    def test_invalid_interconnect(self):
        env = Environment()
        f = make_file(env)
        with pytest.raises(ValueError):
            CollectiveIO(f, exchange_rate=0)
        with pytest.raises(ValueError):
            CollectiveIO(f, exchange_latency=-1)


class TestCollectiveWrite:
    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_roundtrip_via_global_view(self, org):
        env = Environment()
        f = make_file(env, org)
        data = np.random.default_rng(1).random((96, 2))
        coll = CollectiveIO(f)
        per_process = {
            q: data[f.map.records_of(q)] for q in range(4)
        }

        def proc():
            yield from coll.write_all(per_process)
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)

    def test_missing_process_rejected(self):
        env = Environment()
        f = make_file(env)
        coll = CollectiveIO(f)
        with pytest.raises(ValueError):
            next(coll.write_all({0: np.zeros((24, 2))}))

    def test_wrong_count_rejected(self):
        env = Environment()
        f = make_file(env)
        coll = CollectiveIO(f)
        bad = {q: np.zeros((5, 2)) for q in range(4)}
        with pytest.raises(ValueError):
            next(coll.write_all(bad))


class TestFileDomains:
    def test_domains_partition_the_file(self):
        env = Environment()
        f = make_file(env, n=97)  # deliberately uneven
        coll = CollectiveIO(f)
        covered = []
        for q in range(4):
            lo, hi = coll.file_domain(q)
            covered.extend(range(lo, hi))
        assert covered == list(range(97))

    def test_balanced_within_one(self):
        env = Environment()
        f = make_file(env, n=97)
        coll = CollectiveIO(f)
        sizes = [hi - lo for lo, hi in (coll.file_domain(q) for q in range(4))]
        assert max(sizes) - min(sizes) <= 1


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.sampled_from(["PS", "IS"]),
    st.integers(1, 80),
    st.integers(1, 6),
    st.integers(1, 5),
    st.integers(0, 2**16),
)
def test_collective_read_equals_independent_property(org, n, rpb, p, seed):
    env = Environment()
    pfs = build_pfs(env)
    f = pfs.create(
        "prop", org, n_records=n, record_size=16, dtype="float64",
        records_per_block=rpb, n_processes=p,
    )
    data = np.random.default_rng(seed).random((n, 2))

    def setup():
        yield from f.global_view().write(data)

    env.run(env.process(setup()))
    coll = CollectiveIO(f)

    def proc():
        out = yield from coll.read_all()
        return out

    out = env.run(env.process(proc()))
    for q in range(p):
        expected = data[f.map.records_of(q)]
        assert np.array_equal(out[q], expected)
