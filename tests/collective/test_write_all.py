"""Collective writes: byte-identity, exchange accounting, hole semantics.

Regression suite for the two historical ``write_all`` defects:

* the global image was assembled with ``np.empty`` and written whole, so
  any record no process owned went to media as uninitialized garbage —
  holes must instead keep their previous on-media contents;
* phase-1 cost was charged as ``exchange_bytes // p`` — truncating
  division charged *zero* interconnect time whenever fewer bytes than
  processes crossed domains, and averaging disagreed with ``read_all``'s
  per-process actual-bytes accounting.
"""

import hashlib

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.collective import CollectiveIO
from repro.core import OrganizationError
from repro.core.convert import contiguous_runs
from tests.fs.conftest import build_pfs


def make_file(env, org="IS", n=96, rpb=2, p=4, record_size=16, dtype="float64"):
    pfs = build_pfs(env)
    return pfs.create(
        "coll", org, n_records=n, record_size=record_size, dtype=dtype,
        records_per_block=rpb, n_processes=p,
    )


def preload(env, f, data):
    def proc():
        yield from f.global_view().write(data)

    env.run(env.process(proc()))


def media_digest(f):
    raw = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
    return hashlib.sha256(np.ascontiguousarray(raw).tobytes()).hexdigest()


def read_back(env, f):
    def proc():
        out = yield from f.global_view().read()
        return out

    return env.run(env.process(proc()))


class TestByteIdentity:
    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_collective_write_matches_independent_writes(self, org):
        """Collective and independent writes leave identical media bytes."""
        data = np.random.default_rng(11).random((96, 2))

        env_c = Environment()
        f_c = make_file(env_c, org)
        coll = CollectiveIO(f_c)
        per_process = {q: data[f_c.map.records_of(q)] for q in range(4)}

        def cproc():
            yield from coll.write_all(per_process)

        env_c.run(env_c.process(cproc()))

        env_i = Environment()
        f_i = make_file(env_i, org)

        def writer(q):
            recs = f_i.map.records_of(q)
            rows = data[recs]
            pos = 0
            for run in contiguous_runs(recs):
                yield f_i.write_records(run.start, rows[pos : pos + run.count])
                pos += run.count

        env_i.run(env_i.all_of([env_i.process(writer(q)) for q in range(4)]))

        assert media_digest(f_c) == media_digest(f_i)

    def test_exchange_byte_totals(self):
        """IS on 4 processes: 3/4 of all records cross file domains."""
        env = Environment()
        f = make_file(env, "IS")
        coll = CollectiveIO(f)
        per_process = {
            q: np.zeros((len(f.map.records_of(q)), 2)) for q in range(4)
        }

        def proc():
            yield from coll.write_all(per_process)

        env.run(env.process(proc()))
        record_size = f.attrs.record_spec.record_size
        assert coll.last_exchange_bytes == 72 * record_size
        # symmetric pattern: every worker ships the same share
        assert coll.last_remote_bytes == {q: 18 * record_size for q in range(4)}

    def test_ps_writes_need_no_exchange(self):
        env = Environment()
        f = make_file(env, "PS")
        coll = CollectiveIO(f)
        per_process = {
            q: np.zeros((len(f.map.records_of(q)), 2)) for q in range(4)
        }

        def proc():
            yield from coll.write_all(per_process)

        env.run(env.process(proc()))
        assert coll.last_exchange_bytes == 0


class TestExchangeAccounting:
    def test_each_worker_charged_its_own_bytes(self):
        """Skewed pattern: only process 0 ships bytes, and it pays for all
        of them — not an average over the party."""
        env = Environment()
        f = make_file(env, "PS")
        data = np.random.default_rng(12).random((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)
        empty = np.empty(0, dtype=np.int64)
        indices = {0: np.arange(96), 1: empty, 2: empty, 3: empty}
        per_process = {0: data, 1: data[:0], 2: data[:0], 3: data[:0]}

        def proc():
            yield from coll.write_all(per_process, indices)

        env.run(env.process(proc()))
        record_size = f.attrs.record_spec.record_size
        assert coll.last_remote_bytes == {
            0: 72 * record_size, 1: 0, 2: 0, 3: 0,
        }
        assert coll.last_exchange_bytes == 72 * record_size

    def test_tiny_exchange_still_charges_latency(self):
        """Regression: fewer crossing bytes than processes.

        With 2-byte records, one crossing record moves 2 bytes < p = 4
        processes; the historical ``exchange_bytes // p`` truncated that
        to zero and charged no interconnect time at all. Per-worker
        accounting must charge the sender the full message latency.
        """

        def run_once(latency):
            env = Environment()
            f = make_file(env, "PS", record_size=2, dtype="uint8")
            data = (np.arange(192, dtype=np.uint64) % 251).astype(np.uint8)
            preload(env, f, data.reshape(96, 2))
            coll = CollectiveIO(f, exchange_latency=latency)
            empty = np.empty(0, dtype=np.int64)
            # the single record 24 lives in process 1's file domain but is
            # written by process 0: exactly 2 bytes cross
            indices = {0: np.array([24]), 1: empty, 2: empty, 3: empty}
            per_process = {
                0: np.full((1, 2), 7, dtype=np.uint8),
                1: data[:0], 2: data[:0], 3: data[:0],
            }

            def proc():
                yield from coll.write_all(per_process, indices)

            env.run(env.process(proc()))
            assert coll.last_exchange_bytes == 2
            return env.now

        slow = run_once(0.5)
        fast = run_once(0.0)
        assert slow - fast >= 0.5

    def test_read_and_write_accounting_agree(self):
        """The same access pattern moves the same bytes both directions."""
        env = Environment()
        f = make_file(env, "IS")
        data = np.random.default_rng(13).random((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)

        def reader():
            yield from coll.read_all()

        env.run(env.process(reader()))
        read_remote = dict(coll.last_remote_bytes)

        per_process = {q: data[f.map.records_of(q)] for q in range(4)}

        def writer():
            yield from coll.write_all(per_process)

        env.run(env.process(writer()))
        assert coll.last_remote_bytes == read_remote


class TestHoles:
    def test_unowned_records_keep_previous_contents(self):
        """Regression: records no process owns must not get np.empty junk."""
        env = Environment()
        f = make_file(env, "PS")
        data = np.full((96, 2), 123.456)
        preload(env, f, data)
        coll = CollectiveIO(f)
        # drop records 10..13 from process 0's ownership: nobody writes them
        recs0 = f.map.records_of(0)
        kept = recs0[(recs0 < 10) | (recs0 >= 14)]
        indices = {0: kept}
        for q in range(1, 4):
            indices[q] = f.map.records_of(q)
        new = np.random.default_rng(14).random((96, 2))
        per_process = {q: new[indices[q]] for q in range(4)}

        def proc():
            yield from coll.write_all(per_process, indices)

        env.run(env.process(proc()))
        out = read_back(env, f)
        expected = new.copy()
        expected[10:14] = 123.456  # the holes keep the preloaded pattern
        assert np.array_equal(out, expected)

    def test_holes_via_monkeypatched_map(self):
        """The pre-fix failure shape: an organization map that does not
        cover the file (process 1's sequence lost a block)."""
        env = Environment()
        f = make_file(env, "PS")
        data = np.full((96, 2), -7.5)
        preload(env, f, data)
        recs1 = f.map.records_of(1)
        f.map._records_cache[1] = recs1[4:]  # first 4 records now unowned
        coll = CollectiveIO(f)
        new = np.random.default_rng(15).random((96, 2))
        per_process = {q: new[f.map.records_of(q)] for q in range(4)}

        def proc():
            yield from coll.write_all(per_process)

        env.run(env.process(proc()))
        out = read_back(env, f)
        expected = new.copy()
        expected[recs1[:4]] = -7.5
        assert np.array_equal(out, expected)


class TestRangedCollectives:
    def test_write_at_touches_only_the_range(self):
        env = Environment()
        f = make_file(env, "IS")
        data = np.random.default_rng(16).random((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)
        start, count = 16, 48
        new = np.random.default_rng(17).random((96, 2))
        per_process = {}
        for q in range(4):
            recs = f.map.records_of(q)
            mine = recs[(recs >= start) & (recs < start + count)]
            per_process[q] = new[mine]

        def proc():
            n = yield from coll.write_at(start, count, per_process)
            return n

        assert env.run(env.process(proc())) == count
        out = read_back(env, f)
        expected = data.copy()
        expected[start : start + count] = new[start : start + count]
        assert np.array_equal(out, expected)

    def test_read_at_matches_slice(self):
        env = Environment()
        f = make_file(env, "IS")
        data = np.random.default_rng(18).random((96, 2))
        preload(env, f, data)
        coll = CollectiveIO(f)

        def proc():
            out = yield from coll.read_at(8, 32)
            return out

        out = env.run(env.process(proc()))
        for q in range(4):
            recs = f.map.records_of(q)
            mine = recs[(recs >= 8) & (recs < 40)]
            assert np.array_equal(out[q], data[mine])

    def test_out_of_range_indices_rejected(self):
        env = Environment()
        f = make_file(env, "PS")
        coll = CollectiveIO(f)
        empty = np.empty(0, dtype=np.int64)
        bad = {0: np.array([50]), 1: empty, 2: empty, 3: empty}
        with pytest.raises(ValueError):
            next(coll.write_at(0, 32, {0: np.zeros((1, 2)), 1: np.zeros((0, 2)),
                                       2: np.zeros((0, 2)), 3: np.zeros((0, 2))},
                               bad))

    def test_overlapping_write_indices_rejected(self):
        env = Environment()
        f = make_file(env, "PS")
        coll = CollectiveIO(f)
        empty = np.empty(0, dtype=np.int64)
        dup = {0: np.array([3, 4]), 1: np.array([4]), 2: empty, 3: empty}
        per_process = {0: np.zeros((2, 2)), 1: np.zeros((1, 2)),
                       2: np.zeros((0, 2)), 3: np.zeros((0, 2))}
        with pytest.raises(ValueError):
            next(coll.write_all(per_process, dup))


class TestDynamicOrganizations:
    def test_allow_dynamic_with_explicit_indices(self):
        env = Environment()
        pfs = build_pfs(env)
        f = pfs.create("ss", "SS", n_records=32, record_size=16,
                       dtype="float64", records_per_block=2, n_processes=4)
        coll = CollectiveIO(f, allow_dynamic=True)
        data = np.random.default_rng(19).random((32, 2))
        indices = {q: np.arange(q * 8, (q + 1) * 8) for q in range(4)}
        per_process = {q: data[indices[q]] for q in range(4)}

        def wproc():
            yield from coll.write_all(per_process, indices)

        env.run(env.process(wproc()))

        def rproc():
            out = yield from coll.read_all(indices)
            return out

        out = env.run(env.process(rproc()))
        for q in range(4):
            assert np.array_equal(out[q], data[indices[q]])

    def test_dynamic_without_indices_rejected(self):
        env = Environment()
        pfs = build_pfs(env)
        f = pfs.create("ss", "SS", n_records=32, record_size=16,
                       dtype="float64", records_per_block=2, n_processes=4)
        coll = CollectiveIO(f, allow_dynamic=True)
        with pytest.raises(OrganizationError):
            next(coll.read_all())


class TestStackComposition:
    def test_collective_write_over_io_nodes_and_batching(self):
        env = Environment()
        pfs = build_parallel_fs(env, n_devices=4, io_nodes=2, batch_io=True)
        f = pfs.create("coll", "IS", n_records=96, record_size=16,
                       dtype="float64", records_per_block=2, n_processes=4)
        data = np.random.default_rng(20).random((96, 2))
        coll = CollectiveIO(f)
        per_process = {q: data[f.map.records_of(q)] for q in range(4)}

        def proc():
            yield from coll.write_all(per_process)
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(proc())), data)
