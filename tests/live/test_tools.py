"""Unit tests for the live-file command-line utilities."""

import numpy as np
import pytest

from repro.live import LiveParallelFileSystem
from repro.live.tools import main


@pytest.fixture
def populated(tmp_path):
    root = tmp_path / "pfs"
    lfs = LiveParallelFileSystem(root)
    f = lfs.create("alpha", "IS", n_records=24, record_size=16,
                   dtype="float64", records_per_block=2, n_processes=3)
    data = np.arange(48, dtype=np.float64).reshape(24, 2)
    f.global_view().write(data)
    f.close()
    g = lfs.create("beta", "SS", n_records=8, record_size=8,
                   dtype="float64", records_per_block=1, n_processes=2)
    g.close()
    return root, data


def test_list(populated, capsys):
    root, _ = populated
    assert main(["list", str(root)]) == 0
    out = capsys.readouterr().out
    assert "alpha" in out and "beta" in out
    assert "IS" in out and "SS" in out


def test_list_empty(tmp_path, capsys):
    assert main(["list", str(tmp_path / "empty")]) == 0
    assert "no parallel files" in capsys.readouterr().out


def test_info(populated, capsys):
    root, _ = populated
    assert main(["info", str(root), "alpha"]) == 0
    out = capsys.readouterr().out
    assert "organization" in out and "IS" in out
    assert "n_blocks" in out


def test_info_missing_file(populated, capsys):
    root, _ = populated
    assert main(["info", str(root), "ghost"]) == 1
    assert "no such parallel file" in capsys.readouterr().err


def test_dump_head(populated, capsys):
    root, data = populated
    assert main(["dump", str(root), "alpha", "--head", "3"]) == 0
    out = capsys.readouterr().out.strip().splitlines()
    assert len(out) == 3
    assert "0." in out[0]


def test_map_static(populated, capsys):
    root, _ = populated
    assert main(["map", str(root), "alpha"]) == 0
    out = capsys.readouterr().out
    # IS over 3 processes: round-robin P1 P2 P3 ...
    assert "P1" in out and "P3" in out


def test_map_dynamic(populated, capsys):
    root, _ = populated
    assert main(["map", str(root), "beta"]) == 0
    assert "run time" in capsys.readouterr().out


def test_convert_roundtrip(populated, capsys):
    root, data = populated
    assert main([
        "convert", str(root), "alpha", "alpha_ps", "PS", "--processes", "4",
    ]) == 0
    assert "converted" in capsys.readouterr().out
    lfs = LiveParallelFileSystem(root)
    g = lfs.open("alpha_ps")
    assert g.attrs.organization.value == "PS"
    assert g.map.n_processes == 4
    assert np.array_equal(g.global_view().read(), data)
    g.close()


def test_convert_existing_target_fails(populated, capsys):
    root, _ = populated
    assert main(["convert", str(root), "alpha", "beta", "PS"]) == 1
    assert "already exists" in capsys.readouterr().err


def test_convert_pda_assignment(populated):
    root, data = populated
    assert main([
        "convert", str(root), "alpha", "alpha_pda", "pda",
        "--assignment", "interleaved", "--chunk", "5",
    ]) == 0
    lfs = LiveParallelFileSystem(root)
    g = lfs.open("alpha_pda")
    assert g.map.assignment == "interleaved"
    assert np.array_equal(g.global_view().read(), data)
    g.close()
