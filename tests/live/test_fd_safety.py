"""Regression tests: failed live-file opens and creates must not leak
file descriptors or leave partial files behind."""

import os

import numpy as np
import pytest

from repro.core import OrganizationError
from repro.live import LiveParallelFileSystem


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


def open_fds():
    return len(os.listdir("/proc/self/fd"))


class TestOpenFailure:
    def test_truncated_file_raises_without_fd_leak(self, lfs):
        lfs.create("t", "S", n_records=64, record_size=8,
                   dtype="float64").close()
        # corrupt: shrink the data file below what the attrs declare
        data_path = lfs.root / "t"
        data_path.write_bytes(b"\x00" * 16)
        before = open_fds()
        for _ in range(20):
            with pytest.raises(OrganizationError, match="declare"):
                lfs.open("t")
        assert open_fds() == before

    def test_missing_data_file_raises_without_fd_leak(self, lfs):
        lfs.create("m", "S", n_records=4, record_size=8,
                   dtype="float64").close()
        (lfs.root / "m").unlink()
        before = open_fds()
        for _ in range(20):
            with pytest.raises(OrganizationError, match="unreadable"):
                lfs.open("m")
        assert open_fds() == before

    def test_successful_open_releases_fd_on_close(self, lfs):
        lfs.create("ok", "S", n_records=4, record_size=8,
                   dtype="float64").close()
        before = open_fds()
        f = lfs.open("ok")
        assert open_fds() == before + 1
        f.close()
        f.close()  # idempotent
        assert open_fds() == before


class TestCreateFailure:
    def test_failed_create_leaves_no_files(self, lfs):
        before = open_fds()
        with pytest.raises(Exception):
            # invalid organization name fails after path setup
            lfs.create("bad", "NOPE", n_records=4, record_size=8)
        assert open_fds() == before
        assert not list(lfs.root.glob("bad*"))
        # the name is immediately reusable
        f = lfs.create("bad", "S", n_records=4, record_size=8,
                       dtype="float64")
        f.write_records(0, np.zeros((4, 1), dtype=np.float64))
        f.close()
