"""Stateful model-based test of the live parallel file system.

Hypothesis drives random sequences of create / write / read / reopen /
delete operations against a LiveParallelFileSystem, checking it against a
plain in-memory model (dict of arrays). This is the strongest functional
statement about the live backend: no operation sequence desynchronizes
the files from their expected contents or the catalog from its expected
population.
"""

import numpy as np
from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.live import LiveParallelFileSystem

ORGS = ["S", "PS", "IS", "GDA", "PDA"]


class LiveFSMachine(RuleBasedStateMachine):
    files = Bundle("files")

    @initialize()
    def setup(self):
        import tempfile

        self.root = tempfile.mkdtemp(prefix="repro_stateful_")
        self.lfs = LiveParallelFileSystem(self.root)
        self.model: dict[str, np.ndarray] = {}
        self.meta: dict[str, tuple] = {}
        self.counter = 0

    @rule(
        target=files,
        org=st.sampled_from(ORGS),
        n=st.integers(1, 60),
        rpb=st.integers(1, 5),
        p=st.integers(1, 4),
    )
    def create(self, org, n, rpb, p):
        name = f"f{self.counter}"
        self.counter += 1
        f = self.lfs.create(
            name, org, n_records=n, record_size=16, dtype="float64",
            records_per_block=rpb, n_processes=p,
        )
        f.close()
        self.model[name] = np.zeros((n, 2))
        self.meta[name] = (org, n, rpb, p)
        return name

    @rule(name=files, seed=st.integers(0, 2**16))
    def global_write(self, name, seed):
        if name not in self.model:
            return
        n = len(self.model[name])
        data = np.random.default_rng(seed).random((n, 2))
        with self.lfs.open(name) as f:
            f.global_view().write(data)
        self.model[name] = data

    @rule(name=files, seed=st.integers(0, 2**16))
    def partial_positioned_write(self, name, seed):
        if name not in self.model:
            return
        n = len(self.model[name])
        rng = np.random.default_rng(seed)
        start = int(rng.integers(0, n))
        count = int(rng.integers(1, n - start + 1))
        data = rng.random((count, 2))
        with self.lfs.open(name) as f:
            f.global_view().write_at(start, data)
        self.model[name][start : start + count] = data

    @rule(name=files)
    def global_read_matches_model(self, name):
        if name not in self.model:
            return
        with self.lfs.open(name) as f:
            out = f.global_view().read()
        assert np.array_equal(out, self.model[name])

    @rule(name=files, q=st.integers(0, 3))
    def partition_read_matches_model(self, name, q):
        if name not in self.model:
            return
        org, n, rpb, p = self.meta[name]
        if org not in ("PS", "IS") or q >= p:
            return
        with self.lfs.open(name) as f:
            h = f.internal_view(q)
            recs = f.map.records_of(q)
            if len(recs) == 0:
                return
            out = h.read_next(h.n_local_records)
        assert np.array_equal(out, self.model[name][recs])

    @rule(name=files)
    def reopen_with_more_processes(self, name):
        if name not in self.model:
            return
        org, n, rpb, p = self.meta[name]
        if org == "S":
            return
        with self.lfs.open(name, n_processes=p + 1) as f:
            assert f.map.n_processes == p + 1

    @rule(name=files)
    def delete(self, name):
        if name not in self.model:
            return
        self.lfs.delete(name)
        del self.model[name]
        del self.meta[name]

    @invariant()
    def catalog_matches_model(self):
        if not hasattr(self, "lfs"):
            return
        assert set(self.lfs.names()) == set(self.model)


TestLiveFSStateful = LiveFSMachine.TestCase
TestLiveFSStateful.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
