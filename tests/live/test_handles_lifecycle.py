"""Lifecycle tests for live files and their handles: context-manager
semantics, idempotent close, and fail-fast behaviour after close."""

import numpy as np
import pytest

from repro.live import LiveParallelFileSystem


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


def rows(*vals):
    return np.asarray(vals, dtype=np.float64).reshape(-1, 1)


class TestFileLifecycle:
    def test_context_manager_closes(self, lfs):
        with lfs.create("a", "S", n_records=4, record_size=8,
                        dtype="float64") as f:
            f.write_records(0, rows(1, 2, 3, 4))
        with pytest.raises(ValueError, match="closed"):
            f.read_records(0, 1)

    def test_close_idempotent(self, lfs):
        f = lfs.create("a", "S", n_records=1, record_size=8, dtype="float64")
        for _ in range(3):
            f.close()

    def test_context_manager_closes_on_exception(self, lfs):
        with pytest.raises(RuntimeError):
            with lfs.create("a", "S", n_records=1, record_size=8,
                            dtype="float64") as f:
                raise RuntimeError("boom")
        with pytest.raises(ValueError, match="closed"):
            f.fd


class TestHandlesAfterClose:
    @pytest.mark.parametrize("org,p", [
        ("S", 1), ("PS", 2), ("IS", 2), ("GDA", 1), ("PDA", 2),
    ])
    def test_internal_view_fails_cleanly(self, lfs, org, p):
        f = lfs.create(f"h_{org}", org, n_records=8, record_size=8,
                       dtype="float64", n_processes=p)
        h = f.internal_view(0)
        f.close()
        with pytest.raises(ValueError, match="closed"):
            h.read_next(1) if hasattr(h, "read_next") else h.read_record(0)

    def test_ss_handle_fails_cleanly(self, lfs):
        f = lfs.create("h_SS", "SS", n_records=8, record_size=8,
                       dtype="float64", n_processes=2)
        session = f.ss_session()
        h = f.internal_view(0, session=session)
        f.close()
        with pytest.raises(ValueError, match="closed"):
            h.read_next()

    def test_global_view_fails_cleanly(self, lfs):
        f = lfs.create("g", "S", n_records=4, record_size=8,
                       dtype="float64")
        gv = f.global_view()
        gv.write_at(0, rows(9.0))
        f.close()
        with pytest.raises(ValueError, match="closed"):
            gv.read_at(0)

    def test_handles_keep_working_until_close(self, lfs):
        with lfs.create("w", "PS", n_records=8, record_size=8,
                        dtype="float64", n_processes=2) as f:
            h0, h1 = f.internal_view(0), f.internal_view(1)
            h0.write_next(rows(1, 2, 3, 4))
            h1.write_next(rows(5, 6, 7, 8))
            gv = f.global_view()
            got = gv.read_at(0, 8).reshape(-1)
            assert set(got) == set(range(1, 9))
