"""Hypothesis property tests for the live backend.

The same invariants as `tests/fs/test_properties.py`, interpreted over
real host files: both backends interpret the same organization maps, so
they must satisfy the same contracts.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import OrganizationError
from repro.live import LiveParallelFileSystem

live_shapes = st.tuples(
    st.sampled_from(["S", "PS", "IS", "GDA", "PDA"]),
    st.integers(1, 100),    # n_records
    st.integers(1, 7),      # records_per_block
    st.integers(1, 5),      # n_processes
)


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(live_shapes, st.integers(0, 2**16))
def test_live_global_roundtrip(tmp_path_factory, shape, seed):
    org, n, rpb, p = shape
    root = tmp_path_factory.mktemp("live_prop")
    lfs = LiveParallelFileSystem(root)
    f = lfs.create("f", org, n_records=n, record_size=16, dtype="float64",
                   records_per_block=rpb, n_processes=p)
    data = np.random.default_rng(seed).random((n, 2))
    f.global_view().write(data)
    v = f.global_view()
    assert np.array_equal(v.read(), data)
    f.close()


@settings(max_examples=25, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(
    st.sampled_from(["PS", "IS"]),
    st.integers(1, 100),
    st.integers(1, 7),
    st.integers(1, 5),
    st.integers(0, 2**16),
)
def test_live_partition_writes_compose(tmp_path_factory, org, n, rpb, p, seed):
    root = tmp_path_factory.mktemp("live_prop")
    lfs = LiveParallelFileSystem(root)
    f = lfs.create("f", org, n_records=n, record_size=16, dtype="float64",
                   records_per_block=rpb, n_processes=p)
    data = np.random.default_rng(seed).random((n, 2))
    for q in range(p):
        recs = f.map.records_of(q)
        if len(recs):
            f.internal_view(q).write_next(data[recs])
    assert np.array_equal(f.global_view().read(), data)
    f.close()


@settings(max_examples=20, suppress_health_check=[HealthCheck.too_slow], deadline=None)
@given(live_shapes, st.integers(0, 2**16))
def test_live_and_sim_backends_agree(tmp_path_factory, shape, seed):
    """The two backends, fed the same writes, expose identical global
    views — the 'organizations are maps, backends are interpreters'
    contract."""
    org, n, rpb, p = shape
    data = np.random.default_rng(seed).random((n, 2))

    # live
    root = tmp_path_factory.mktemp("agree")
    lfs = LiveParallelFileSystem(root)
    lf = lfs.create("f", org, n_records=n, record_size=16, dtype="float64",
                    records_per_block=rpb, n_processes=p)
    lf.global_view().write(data)
    live_out = lf.global_view().read()
    lf.close()

    # simulated
    from repro.sim import Environment
    from tests.fs.conftest import build_pfs

    env = Environment()
    pfs = build_pfs(env)
    sf = pfs.create("f", org, n_records=n, record_size=16, dtype="float64",
                    records_per_block=rpb, n_processes=p)

    def proc():
        yield from sf.global_view().write(data)
        v = sf.global_view()
        v.seek(0)
        out = yield from v.read()
        return out

    sim_out = env.run(env.process(proc()))
    assert np.array_equal(live_out, sim_out)


class TestLivePdaSequentialWithinBlock:
    def test_discipline_enforced(self, tmp_path):
        lfs = LiveParallelFileSystem(tmp_path / "p")
        f = lfs.create("f", "PDA", n_records=16, record_size=8,
                       dtype="float64", records_per_block=4, n_processes=2)
        h = f.internal_view(0, sequential_within_block=True)
        b = int(f.map.blocks_of(0)[0])
        first = f.attrs.block_spec.first_record(b)
        h.read_record(first)
        with pytest.raises(OrganizationError):
            h.read_record(first + 2)   # skipped slot 1
        h.read_record(first + 1)       # in order: fine
        h.reset_block(b)
        h.read_record(first)           # fresh pass
        f.close()
