"""Unit tests for the live (real files + threads) backend."""

import threading

import numpy as np
import pytest

from repro.core import ExhaustedError, OrganizationError, OwnershipError
from repro.live import LiveParallelFileSystem


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


def payload(n, items=2, seed=0):
    return np.random.default_rng(seed).random((n, items))


class TestLifecycle:
    def test_create_preallocates_and_persists_metadata(self, lfs):
        f = lfs.create("a", "PS", n_records=10, record_size=16,
                       dtype="float64", n_processes=2)
        assert f.path.stat().st_size == 160
        f.close()
        g = lfs.open("a")
        assert g.attrs.organization.value == "PS"
        assert g.attrs.n_records == 10
        g.close()

    def test_duplicate_create_rejected(self, lfs):
        lfs.create("a", "S", n_records=1, record_size=8).close()
        with pytest.raises(FileExistsError):
            lfs.create("a", "S", n_records=1, record_size=8)

    def test_open_missing(self, lfs):
        with pytest.raises(FileNotFoundError):
            lfs.open("nope")

    def test_delete(self, lfs):
        lfs.create("a", "S", n_records=1, record_size=8).close()
        assert lfs.exists("a")
        lfs.delete("a")
        assert not lfs.exists("a")
        with pytest.raises(FileNotFoundError):
            lfs.delete("a")

    def test_names(self, lfs):
        lfs.create("b", "S", n_records=1, record_size=8).close()
        lfs.create("a", "S", n_records=1, record_size=8).close()
        assert lfs.names() == ["a", "b"]

    def test_invalid_names_rejected(self, lfs):
        with pytest.raises(ValueError):
            lfs.create("../evil", "S", n_records=1, record_size=8)

    def test_closed_file_rejects_io(self, lfs):
        f = lfs.create("a", "S", n_records=4, record_size=8, dtype="float64")
        f.close()
        with pytest.raises(ValueError):
            f.global_view().read()

    def test_global_view_is_plain_flat_file(self, lfs, tmp_path):
        """§2: the global view must look conventional to standard tools."""
        f = lfs.create("flat", "PS", n_records=8, record_size=8,
                       dtype="float64", n_processes=2)
        data = payload(8, 1)
        f.global_view().write(data)
        # read with plain numpy, no library involved
        raw = np.fromfile(f.path, dtype=np.float64)
        assert np.array_equal(raw.reshape(8, 1), data)
        f.close()


class TestGlobalView:
    def test_sequential_roundtrip(self, lfs):
        f = lfs.create("g", "S", n_records=20, record_size=16, dtype="float64")
        data = payload(20)
        v = f.global_view()
        v.write(data)
        v.seek(0)
        assert np.array_equal(v.read(), data)
        f.close()

    def test_positioned_access(self, lfs):
        f = lfs.create("g", "GDA", n_records=20, record_size=16, dtype="float64")
        data = payload(20)
        v = f.global_view()
        v.write(data)
        assert np.array_equal(v.read_at(5, 3), data[5:8])
        v.write_at(5, np.full((1, 2), 2.5))
        assert np.array_equal(v.read_at(5)[0], [2.5, 2.5])
        f.close()

    def test_bounds(self, lfs):
        f = lfs.create("g", "S", n_records=4, record_size=8, dtype="float64")
        v = f.global_view()
        with pytest.raises(ValueError):
            v.seek(5)
        with pytest.raises(ValueError):
            v.read_at(4)
        f.close()


class TestConcurrentPartitionedWrites:
    @pytest.mark.parametrize("org", ["PS", "IS"])
    def test_threaded_writers_produce_correct_global_view(self, lfs, org):
        n, p = 240, 8
        f = lfs.create(f"c_{org}", org, n_records=n, record_size=16,
                       dtype="float64", records_per_block=3, n_processes=p)
        data = payload(n)

        def worker(q):
            h = f.internal_view(q)
            recs = f.map.records_of(q)
            # write in small chunks to maximize interleaving
            i = 0
            while i < len(recs):
                chunk = data[recs[i : i + 2]]
                h.write_next(chunk)
                i += 2

        threads = [threading.Thread(target=worker, args=(q,)) for q in range(p)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.array_equal(f.global_view().read(), data)
        f.close()

    def test_partition_read_next(self, lfs):
        f = lfs.create("pr", "IS", n_records=30, record_size=16,
                       dtype="float64", records_per_block=2, n_processes=3)
        data = payload(30)
        f.global_view().write(data)
        h = f.internal_view(1)
        got = h.read_next(h.n_local_records)
        assert np.array_equal(got, data[f.map.records_of(1)])
        assert h.eof
        f.close()

    def test_write_past_partition(self, lfs):
        f = lfs.create("ov", "PS", n_records=8, record_size=16,
                       dtype="float64", n_processes=2)
        h = f.internal_view(0)
        with pytest.raises(ExhaustedError):
            h.write_next(payload(5))
        f.close()


class TestLiveSelfScheduling:
    def test_threaded_workers_cover_every_block_once(self, lfs):
        n = 60
        f = lfs.create("ss", "SS", n_records=n, record_size=16,
                       dtype="float64", records_per_block=1, n_processes=6)
        data = payload(n)
        f.global_view().write(data)
        session = f.ss_session()
        got = {}
        lock = threading.Lock()

        def worker(q):
            h = f.internal_view(q, session=session)
            while True:
                item = h.read_next()
                if item is None:
                    return
                block, rows = item
                with lock:
                    got[block] = rows

        threads = [threading.Thread(target=worker, args=(q,)) for q in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        session.validate()
        assert len(got) == n
        for b, rows in got.items():
            assert np.array_equal(rows[0], data[b])
        f.close()

    def test_session_required(self, lfs):
        f = lfs.create("ss2", "SS", n_records=4, record_size=8,
                       records_per_block=1, n_processes=2)
        with pytest.raises(ValueError):
            f.internal_view(0)
        f.close()

    def test_ss_write(self, lfs):
        f = lfs.create("ssw", "SS", n_records=6, record_size=16,
                       dtype="float64", records_per_block=1, n_processes=2)
        session = f.ss_session()
        h = f.internal_view(0, session=session)
        data = payload(6)
        for i in range(6):
            assert h.write_next(data[i : i + 1]) == i
        assert h.write_next(data[:1]) is None
        session.validate()
        assert np.array_equal(f.global_view().read(), data)
        f.close()


class TestLiveDirectAccess:
    def test_gda_concurrent_disjoint_writes(self, lfs):
        n = 100
        f = lfs.create("gda", "GDA", n_records=n, record_size=16,
                       dtype="float64", records_per_block=4, n_processes=4)
        data = payload(n)

        def worker(q):
            h = f.internal_view(q)
            for r in range(q, n, 4):
                h.write_record(r, data[r : r + 1])

        threads = [threading.Thread(target=worker, args=(q,)) for q in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert np.array_equal(f.global_view().read(), data)
        f.close()

    def test_pda_ownership(self, lfs):
        f = lfs.create("pda", "PDA", n_records=16, record_size=16,
                       dtype="float64", records_per_block=4, n_processes=2)
        owner = f.map.owner_of_record(0)
        h_owner = f.internal_view(owner)
        h_owner.write_record(0, payload(1))
        h_other = f.internal_view(1 - owner)
        with pytest.raises(OwnershipError):
            h_other.read_record(0)
        f.close()

    def test_s_handle_requires_reader(self, lfs):
        f = lfs.create("s", "S", n_records=4, record_size=8,
                       n_processes=2, reader=1)
        with pytest.raises(OrganizationError):
            f.internal_view(0)
        h = f.internal_view(1)
        assert not h.eof
        f.close()
