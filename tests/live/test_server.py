"""DatasetServer tests: protocol correctness, 64-way concurrency, QoS
tenant admission, and resilience to misbehaving clients."""

import asyncio
import json

import numpy as np
import pytest

from repro.dataset import DatasetSchema, LiveDataset
from repro.live import LiveParallelFileSystem
from repro.live.server import DatasetClient, DatasetServer


@pytest.fixture
def lfs(tmp_path):
    return LiveParallelFileSystem(tmp_path / "pfs")


@pytest.fixture
def schema():
    return DatasetSchema.build(
        {"row": 64, "col": 16},
        {"grid": ("<f8", ("row", "col"))},
    )


@pytest.fixture
def populated(lfs, schema):
    data = {"grid": np.arange(64 * 16, dtype="<f8").reshape(64, 16)}
    LiveDataset.create(lfs, "grid_ds", schema, data=data).close()
    return data


def run_async(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_list_describe_read_write_sync(self, lfs, schema, populated):
        async def go():
            async with DatasetServer(lfs) as srv:
                c = await DatasetClient.connect("127.0.0.1", srv.port)
                assert await c.list_datasets() == ["grid_ds"]
                desc = await c.describe("grid_ds")
                assert desc["dimensions"] == {"row": 64, "col": 16}

                got = await c.read("grid_ds", "grid", (2, 0), (2, 16))
                assert np.array_equal(got, populated["grid"][2:4])

                patch = np.full((1, 4), -1.0)
                n = await c.write("grid_ds", "grid", (0, 4), (1, 4), patch)
                assert n == 4
                back = await c.read("grid_ds", "grid", (0, 0), (1, 16))
                assert np.array_equal(back[0, 4:8], patch[0])

                assert await c.sync("grid_ds") == ["grid"]
                await c.close()

        run_async(go())

    def test_errors_are_reported_not_fatal(self, lfs, schema, populated):
        async def go():
            async with DatasetServer(lfs) as srv:
                c = await DatasetClient.connect("127.0.0.1", srv.port)
                with pytest.raises(RuntimeError, match="outside extent"):
                    await c.read("grid_ds", "grid", (0, 0), (65, 16))
                with pytest.raises(RuntimeError):
                    await c.read("grid_ds", "nope", (0,), (1,))
                with pytest.raises(RuntimeError):
                    await c.describe("missing_ds")
                # the connection is still usable afterwards
                got = await c.read("grid_ds", "grid", (0, 0), (1, 1))
                assert got[0, 0] == 0.0
                await c.close()

        run_async(go())

    def test_garbage_line_counted_and_survivable(self, lfs, populated):
        async def go():
            async with DatasetServer(lfs) as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                writer.write(b"this is not json\n")
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert not resp["ok"]
                # same connection recovers
                writer.write(json.dumps({"op": "list"}).encode() + b"\n")
                await writer.drain()
                resp = json.loads(await reader.readline())
                assert resp["datasets"] == ["grid_ds"]
                writer.close()
                await writer.wait_closed()
                assert srv.stats()["protocol_errors"] >= 1

        run_async(go())

    def test_mid_payload_disconnect_does_not_wedge(self, lfs, populated):
        async def go():
            async with DatasetServer(lfs) as srv:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", srv.port
                )
                req = {"op": "write", "dataset": "grid_ds", "var": "grid",
                       "start": [0, 0], "count": [1, 16], "nbytes": 128}
                writer.write(json.dumps(req).encode() + b"\n")
                writer.write(b"\x00" * 10)  # then vanish mid-payload
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # server still serves new clients
                c = await DatasetClient.connect("127.0.0.1", srv.port)
                assert await c.list_datasets() == ["grid_ds"]
                await c.close()

        run_async(go())


class TestConcurrency:
    def test_64_concurrent_clients(self, lfs, schema, populated):
        """64 clients, each with a disjoint row: write, read back, and
        verify nobody saw anybody else's row."""
        async def client(port, i):
            c = await DatasetClient.connect("127.0.0.1", port,
                                            tenant=f"t{i % 4}")
            row = np.full((1, 16), float(i), dtype="<f8")
            n = await c.write("grid_ds", "grid", (i, 0), (1, 16), row)
            assert n == 16
            got = await c.read("grid_ds", "grid", (i, 0), (1, 16))
            await c.close()
            return i if np.array_equal(got, row) else None

        async def go():
            async with DatasetServer(lfs) as srv:
                out = await asyncio.gather(
                    *(client(srv.port, i) for i in range(64))
                )
                stats = srv.stats()
            assert sorted(out) == list(range(64))
            assert stats["requests_total"] >= 64 * 3
            assert set(stats["tenants"]) >= {"t0", "t1", "t2", "t3"}

        run_async(go())
        # and the media agrees after the fact
        with LiveDataset.open(lfs, "grid_ds") as lds:
            got = lds.read_variable("grid")
        want = np.repeat(np.arange(64, dtype="<f8"), 16).reshape(64, 16)
        assert np.array_equal(got, want)


class TestAdmission:
    def test_tenant_throttling_and_accounting(self, lfs, schema, populated):
        """A tight bucket (small burst, slow rate) must throttle a noisy
        tenant while an unlimited tenant flows freely; accounting must
        stay conformant: granted <= burst + rate * elapsed."""
        async def go():
            async with DatasetServer(
                lfs, tenants={"bronze": (256 * 1024, 4096)}
            ) as srv:
                bronze = await DatasetClient.connect(
                    "127.0.0.1", srv.port, tenant="bronze"
                )
                gold = await DatasetClient.connect(
                    "127.0.0.1", srv.port, tenant="gold"
                )
                # 16 KB per read, 8 reads = 128 KB >> 4 KB burst
                for _ in range(8):
                    await bronze.read("grid_ds", "grid", (0, 0), (64, 16))
                    await gold.read("grid_ds", "grid", (0, 0), (64, 16))
                stats = await gold.server_stats()
                await bronze.close()
                await gold.close()
            b = stats["tenants"]["bronze"]
            g = stats["tenants"]["gold"]
            assert b["throttled_grants"] > 0
            assert b["admission_wait_s"] > 0
            assert g.get("throttled_grants", 0) == 0
            assert b["bytes_read"] == 8 * 64 * 16 * 8
            elapsed = stats["uptime_s"]
            assert b["granted_total"] <= 4096 + 256 * 1024 * elapsed + 1e-6

        run_async(go())
