"""Unit tests for the wrapped-matrix workload."""

import numpy as np
import pytest

from repro.workloads import WrappedMatrix, parallel_matvec, parallel_row_scale
from tests.fs.conftest import build_pfs
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


def test_wrapped_assignment(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=9, n_cols=4, n_processes=3)
    assert m.my_rows(0).tolist() == [0, 3, 6]
    assert m.my_rows(2).tolist() == [2, 5, 8]


def test_store_load_roundtrip(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=8, n_cols=5, n_processes=4)
    A = np.random.default_rng(0).random((8, 5))

    def proc():
        yield from m.store(A)
        out = yield from m.load()
        return out

    assert np.array_equal(env.run(env.process(proc())), A)


def test_shape_validation(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=8, n_cols=5, n_processes=4)
    with pytest.raises(ValueError):
        next(m.store(np.zeros((8, 4))))
    with pytest.raises(ValueError):
        WrappedMatrix(pfs, "B", n_rows=0, n_cols=5, n_processes=2)


def test_read_my_rows(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=10, n_cols=3, n_processes=4)
    A = np.random.default_rng(1).random((10, 3))

    def proc():
        yield from m.store(A)
        rows = yield from m.read_my_rows(1)
        return rows

    assert np.array_equal(env.run(env.process(proc())), A[[1, 5, 9]])


def test_parallel_row_scale(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=12, n_cols=2, n_processes=3)
    A = np.random.default_rng(2).random((12, 2))

    def driver():
        yield from m.store(A)
        children = [
            env.process(parallel_row_scale(m, p, 2.0)) for p in range(3)
        ]
        yield env.all_of(children)
        out = yield from m.load()
        return out

    assert np.allclose(env.run(env.process(driver())), A * 2.0)


def test_parallel_matvec_matches_numpy(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=11, n_cols=4, n_processes=3)
    rng = np.random.default_rng(3)
    A = rng.random((11, 4))
    x = rng.random(4)

    def driver():
        yield from m.store(A)
        children = [env.process(parallel_matvec(m, p, x)) for p in range(3)]
        results = yield env.all_of(children)
        y = np.zeros(11)
        for idx, partial in results.values():
            y[idx] = partial
        return y

    assert np.allclose(env.run(env.process(driver())), A @ x)


def test_matvec_validates_x(env, pfs):
    m = WrappedMatrix(pfs, "A", n_rows=4, n_cols=4, n_processes=2)
    with pytest.raises(ValueError):
        next(parallel_matvec(m, 0, np.zeros(3)))
