"""Unit tests for the out-of-core transpose workload."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.workloads import create_matrix_file, transpose_naive, transpose_tiled
from tests.fs.conftest import build_pfs


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


def setup_matrices(env, pfs, n, seed=0):
    src = create_matrix_file(pfs, "A", n)
    dst = create_matrix_file(pfs, "At", n)
    A = np.random.default_rng(seed).random((n, n))

    def fill():
        yield from src.global_view().write(A)

    env.run(env.process(fill()))
    return src, dst, A


def read_matrix(env, f, n):
    def proc():
        v = f.global_view()
        v.seek(0)
        out = yield from v.read()
        return out.reshape(n, n)

    return env.run(env.process(proc()))


class TestNaive:
    def test_correct_transpose(self, env, pfs):
        src, dst, A = setup_matrices(env, pfs, 8)

        def proc():
            yield from transpose_naive(src, dst)

        env.run(env.process(proc()))
        assert np.array_equal(read_matrix(env, dst, 8), A.T)


class TestTiled:
    @pytest.mark.parametrize("n,tile", [(8, 2), (8, 3), (8, 8), (9, 4), (5, 1)])
    def test_correct_for_any_tiling(self, env, pfs, n, tile):
        src, dst, A = setup_matrices(env, pfs, n)

        def proc():
            yield from transpose_tiled(src, dst, tile)

        env.run(env.process(proc()))
        assert np.array_equal(read_matrix(env, dst, n), A.T)

    def test_invalid_tile(self, env, pfs):
        src, dst, _ = setup_matrices(env, pfs, 4)
        with pytest.raises(ValueError):
            next(transpose_tiled(src, dst, 0))

    def test_tiled_beats_naive_in_simulated_time(self, env, pfs):
        from repro.sim import Environment as Env

        def run(algo):
            env2 = Env()
            pfs2 = build_pfs(env2)
            src, dst, _ = setup_matrices(env2, pfs2, 16)
            start = env2.now

            def proc():
                yield from algo(src, dst)

            env2.run(env2.process(proc()))
            return env2.now - start

        t_naive = run(lambda s, d: transpose_naive(s, d))
        t_tiled = run(lambda s, d: transpose_tiled(s, d, tile=4))
        assert t_tiled < t_naive * 0.5

    def test_bigger_tiles_fewer_transfers(self, env, pfs):
        def run(tile):
            from repro.sim import Environment as Env

            env2 = Env()
            pfs2 = build_pfs(env2)
            src, dst, _ = setup_matrices(env2, pfs2, 16)
            start = env2.now

            def proc():
                yield from transpose_tiled(src, dst, tile)

            env2.run(env2.process(proc()))
            return env2.now - start

        assert run(8) < run(2)

    def test_matrix_validation(self, pfs):
        with pytest.raises(ValueError):
            create_matrix_file(pfs, "bad", 0)
