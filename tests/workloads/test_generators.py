"""Unit tests for access-pattern generators."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads import (
    record_payload,
    sequential_pattern,
    strided_pattern,
    uniform_pattern,
    working_set_pattern,
    zipf_pattern,
)


class TestSequentialStrided:
    def test_sequential(self):
        assert np.array_equal(sequential_pattern(5), [0, 1, 2, 3, 4])
        assert len(sequential_pattern(0)) == 0
        with pytest.raises(ValueError):
            sequential_pattern(-1)

    def test_strided(self):
        assert np.array_equal(strided_pattern(10, 1, 3), [1, 4, 7])
        with pytest.raises(ValueError):
            strided_pattern(10, 0, 0)
        with pytest.raises(ValueError):
            strided_pattern(10, 10, 2)


class TestRandomPatterns:
    @pytest.mark.parametrize("fn,kw", [
        (uniform_pattern, {}),
        (zipf_pattern, {"skew": 1.0}),
        (working_set_pattern, {}),
    ])
    def test_in_range_and_deterministic(self, fn, kw):
        a = fn(100, 500, seed=3, **kw)
        b = fn(100, 500, seed=3, **kw)
        assert np.array_equal(a, b)
        assert a.min() >= 0 and a.max() < 100
        assert len(a) == 500

    def test_zipf_skew_concentrates(self):
        uni = zipf_pattern(1000, 20_000, skew=0.0, seed=1)
        hot = zipf_pattern(1000, 20_000, skew=1.2, seed=1)

        def top10_share(xs):
            _, counts = np.unique(xs, return_counts=True)
            counts.sort()
            return counts[-10:].sum() / len(xs)

        assert top10_share(hot) > 3 * top10_share(uni)

    def test_working_set_hits_hot_set(self):
        xs = working_set_pattern(
            1000, 10_000, hot_fraction=0.05, hot_probability=0.9, seed=2
        )
        share_in_hot = np.mean(xs < 50)
        assert share_in_hot > 0.85

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_pattern(0, 10)
        with pytest.raises(ValueError):
            zipf_pattern(10, 10, skew=-1)
        with pytest.raises(ValueError):
            working_set_pattern(10, 10, hot_fraction=0)
        with pytest.raises(ValueError):
            working_set_pattern(10, 10, hot_probability=2)


class TestPayload:
    def test_float_payload(self):
        x = record_payload(10, 4)
        assert x.shape == (10, 4) and x.dtype == np.float64

    def test_int_payload(self):
        x = record_payload(10, 4, dtype="uint8")
        assert x.dtype == np.uint8

    def test_deterministic(self):
        assert np.array_equal(record_payload(5, 2, seed=7), record_payload(5, 2, seed=7))

    def test_validation(self):
        with pytest.raises(ValueError):
            record_payload(-1, 2)
        with pytest.raises(ValueError):
            record_payload(1, 0)


@given(st.integers(1, 500), st.integers(0, 300), st.floats(0, 3))
def test_zipf_always_in_range(n_records, n_accesses, skew):
    xs = zipf_pattern(n_records, n_accesses, skew=skew, seed=0)
    assert len(xs) == n_accesses
    if n_accesses:
        assert xs.min() >= 0 and xs.max() < n_records
