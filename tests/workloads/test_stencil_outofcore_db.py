"""Unit tests for stencil, out-of-core, and database workloads."""

import numpy as np
import pytest

from repro.core import HaloCache
from repro.sim import Environment
from repro.workloads import (
    DatabaseWorkload,
    OutOfCoreSweep,
    reference_smooth,
    run_database_workload,
    run_out_of_core,
    stencil_pass_cached,
    stencil_pass_explicit,
)
from tests.fs.conftest import build_pfs


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


class TestStencil:
    def make_vector_file(self, pfs, env, n=32, p=4):
        f = pfs.create(
            "vec", "PS", n_records=n, record_size=8, dtype="float64",
            records_per_block=2, n_processes=p,
        )
        x = np.random.default_rng(0).random((n, 1))

        def pre():
            yield from f.global_view().write(x)

        env.run(env.process(pre()))
        return f, x

    def test_reference_smooth(self):
        x = np.array([[1.0], [4.0], [7.0]])
        y = reference_smooth(x)
        assert y[1, 0] == pytest.approx(4.0)
        assert y[0, 0] == pytest.approx((1 + 1 + 4) / 3)

    def test_explicit_pass_matches_reference(self, env, pfs):
        f, x = self.make_vector_file(pfs, env)
        expected = reference_smooth(x)

        def driver():
            children = [
                env.process(stencil_pass_explicit(f, p)) for p in range(4)
            ]
            results = yield env.all_of(children)
            y = np.empty_like(x)
            for lo, rows in results.values():
                y[lo : lo + len(rows)] = rows
            return y

        assert np.allclose(env.run(env.process(driver())), expected)

    def test_cached_pass_matches_reference_and_hits_on_second_pass(self, env, pfs):
        f, x = self.make_vector_file(pfs, env)
        expected = reference_smooth(x)
        caches = [HaloCache(8) for _ in range(4)]

        def one_pass():
            children = [
                env.process(stencil_pass_cached(f, p, caches[p]))
                for p in range(4)
            ]
            results = yield env.all_of(children)
            y = np.empty_like(x)
            for lo, rows in results.values():
                y[lo : lo + len(rows)] = rows
            return y

        y1 = env.run(env.process(one_pass()))
        assert np.allclose(y1, expected)
        misses_after_first = sum(c.misses for c in caches)
        env.run(env.process(one_pass()))  # second (read-only) pass
        assert sum(c.hits for c in caches) > 0
        assert sum(c.misses for c in caches) == misses_after_first

    def test_empty_partition_handled(self, env, pfs):
        # 2 blocks, 4 processes -> processes 2,3 own nothing
        f = pfs.create(
            "tiny", "PS", n_records=4, record_size=8, dtype="float64",
            records_per_block=2, n_processes=4,
        )

        def driver():
            lo, rows = yield from stencil_pass_explicit(f, 3)
            return len(rows)

        assert env.run(env.process(driver())) == 0


class TestOutOfCore:
    def make_pda_file(self, pfs, env, n=64, p=4):
        f = pfs.create(
            "ooc", "PDA", n_records=n, record_size=8, dtype="float64",
            records_per_block=4, n_processes=p,
        )
        x = np.random.default_rng(1).random((n, 1))

        def pre():
            yield from f.global_view().write(x)

        env.run(env.process(pre()))
        return f, x

    def test_sweep_preserves_data(self, env, pfs):
        f, x = self.make_pda_file(pfs, env)
        procs, handles = run_out_of_core(f, OutOfCoreSweep(passes=2, cache_blocks=2))
        env.run()

        def check():
            out = yield from f.global_view().read()
            return out

        assert np.array_equal(env.run(env.process(check())), x)

    def test_cache_reuse_across_passes_when_working_set_fits(self, env, pfs):
        f, x = self.make_pda_file(pfs, env)
        # each process owns 4 blocks; cache of 4 fits the whole working set
        procs, handles = run_out_of_core(f, OutOfCoreSweep(passes=3, cache_blocks=4))
        env.run()
        for h in handles:
            # pass 1 misses every block; passes 2-3 hit
            assert h.cache.misses == 4
            assert h.cache.hits > 0

    def test_thrash_when_working_set_exceeds_cache(self, env, pfs):
        f, x = self.make_pda_file(pfs, env)
        procs, handles = run_out_of_core(f, OutOfCoreSweep(passes=3, cache_blocks=1))
        env.run()
        for h in handles:
            # forward sweeps with cache=1: every block access misses
            assert h.cache.misses == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            OutOfCoreSweep(passes=0)
        with pytest.raises(ValueError):
            OutOfCoreSweep(cache_blocks=-1)


class TestDatabase:
    def make_db_file(self, pfs, env, n=128):
        f = pfs.create(
            "db", "GDA", n_records=n, record_size=16, dtype="float64",
            records_per_block=4, n_processes=4,
        )

        def pre():
            yield from f.global_view().write(np.zeros((n, 2)))

        env.run(env.process(pre()))
        return f

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            DatabaseWorkload(-1)
        with pytest.raises(ValueError):
            DatabaseWorkload(10, write_fraction=1.5)
        with pytest.raises(ValueError):
            DatabaseWorkload(10, skew=-1)

    def test_targets_shapes(self):
        w = DatabaseWorkload(100, skew=0.8, seed=5)
        t = w.targets(64)
        assert len(t) == 100 and t.max() < 64
        assert len(w.is_write()) == 100

    def test_run_completes_all_transactions(self, env, pfs):
        f = self.make_db_file(pfs, env)
        w = DatabaseWorkload(60, skew=1.0, write_fraction=0.3, seed=2)
        clients = run_database_workload(f, w, n_clients=4)
        env.run()
        assert all(p.processed for p in clients)
        assert env.now > 0

    def test_client_count_validation(self, env, pfs):
        f = self.make_db_file(pfs, env)
        with pytest.raises(ValueError):
            run_database_workload(f, DatabaseWorkload(10), n_clients=0)
