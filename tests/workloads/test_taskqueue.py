"""Unit tests for the self-scheduled task-queue workload."""

import numpy as np
import pytest

from repro.sim import Environment
from repro.workloads import run_task_queue
from tests.fs.conftest import build_pfs


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_pfs(env)


def make_queue_file(pfs, env, name="tasks", n_tasks=24):
    f = pfs.create(
        name, "SS", n_records=n_tasks, record_size=16, dtype="float64",
        records_per_block=1, n_processes=4,
    )
    data = np.random.default_rng(0).random((n_tasks, 2))

    def pre():
        yield from f.global_view().write(data)

    env.run(env.process(pre()))
    return f, data


def test_all_tasks_processed_exactly_once(env, pfs):
    f, _ = make_queue_file(pfs, env)
    sessions, stats, procs = run_task_queue(
        f, n_workers=4, service_time=lambda b, d: 0.01
    )
    env.run()
    sessions[0].validate()
    assert sum(s.tasks for s in stats) == 24


def test_uneven_tasks_balance_by_time(env, pfs):
    """Self-scheduling balances busy time even with skewed task costs."""
    f, _ = make_queue_file(pfs, env, n_tasks=40)
    # task cost alternates tiny/large
    sessions, stats, procs = run_task_queue(
        f, n_workers=4,
        service_time=lambda b, d: 0.5 if b % 8 == 0 else 0.01,
    )
    env.run()
    busy = [s.busy_time for s in stats]
    # no worker should be starved: all did something
    assert all(s.tasks > 0 for s in stats)
    # total busy equals the sum of all task costs
    expected = sum(0.5 if b % 8 == 0 else 0.01 for b in range(40))
    assert sum(busy) == pytest.approx(expected)


def test_results_written_to_output_file(env, pfs):
    f, data = make_queue_file(pfs, env)
    out = pfs.create(
        "results", "SS", n_records=24, record_size=16, dtype="float64",
        records_per_block=1, n_processes=4,
    )
    sessions, stats, procs = run_task_queue(
        f, n_workers=4,
        service_time=lambda b, d: 0.001,
        output_file=out,
        result_fn=lambda b, d: d * 2,
    )
    env.run()
    for s in sessions:
        s.validate()

    def check():
        got = yield from out.global_view().read()
        return got

    results = env.run(env.process(check()))
    # order is nondeterministic across blocks, but the multiset of result
    # rows must be the inputs doubled
    assert sorted(results[:, 0].tolist()) == sorted((data * 2)[:, 0].tolist())


def test_worker_stats_record_blocks(env, pfs):
    f, _ = make_queue_file(pfs, env)
    sessions, stats, procs = run_task_queue(
        f, n_workers=2, service_time=lambda b, d: 0.0
    )
    env.run()
    all_blocks = sorted(b for s in stats for b in s.blocks)
    assert all_blocks == list(range(24))
