"""Unit tests for the LRU block buffer cache."""

import pytest

from repro.buffering import BufferCache
from repro.sim import Environment

IO_TIME = 1.0


class Backend:
    """Fake block device with fetch/writeback logging."""

    def __init__(self, env, io_time=IO_TIME):
        self.env = env
        self.io_time = io_time
        self.store = {}
        self.fetches = []
        self.writes = []

    def fetch(self, block):
        def transfer():
            yield self.env.timeout(self.io_time)
            self.fetches.append((block, self.env.now))
            return self.store.get(block, b"\0" * 64)

        return self.env.process(transfer())

    def writeback(self, block, data):
        def transfer():
            yield self.env.timeout(self.io_time)
            self.store[block] = data
            self.writes.append((block, self.env.now))
            return len(data)

        return self.env.process(transfer())


def make(env, capacity=2, io_time=IO_TIME):
    be = Backend(env, io_time)
    cache = BufferCache(env, be.fetch, be.writeback, capacity_blocks=capacity)
    return cache, be


def test_validation():
    env = Environment()
    be = Backend(env)
    with pytest.raises(ValueError):
        BufferCache(env, be.fetch, be.writeback, capacity_blocks=0)


def test_miss_then_hit():
    env = Environment()
    cache, be = make(env)

    def proc():
        yield from cache.read(5)
        t_after_miss = env.now
        yield from cache.read(5)
        return t_after_miss, env.now

    t_miss, t_hit = env.run(env.process(proc()))
    assert t_miss == pytest.approx(IO_TIME)
    assert t_hit == t_miss  # hit is free
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lru_eviction_order():
    env = Environment()
    cache, be = make(env, capacity=2)

    def proc():
        yield from cache.read(1)
        yield from cache.read(2)
        yield from cache.read(1)   # touch 1 -> 2 is LRU
        yield from cache.read(3)   # evicts 2
        return None

    env.run(env.process(proc()))
    assert cache.contains(1) and cache.contains(3)
    assert not cache.contains(2)
    assert cache.evictions == 1


def test_dirty_victim_written_back_on_eviction():
    env = Environment()
    cache, be = make(env, capacity=1)

    def proc():
        yield from cache.write(1, b"one")
        yield from cache.read(2)  # evicts dirty block 1
        return None

    env.run(env.process(proc()))
    assert be.store[1] == b"one"
    assert cache.writebacks == 1


def test_flush_writes_all_dirty():
    env = Environment()
    cache, be = make(env, capacity=4)

    def proc():
        yield from cache.write(1, b"a")
        yield from cache.write(2, b"b")
        yield from cache.flush()
        return None

    env.run(env.process(proc()))
    assert be.store == {1: b"a", 2: b"b"}
    # flush is parallel: both writebacks complete at IO_TIME
    assert env.now == pytest.approx(IO_TIME)


def test_write_hit_updates_in_place():
    env = Environment()
    cache, be = make(env, capacity=2)

    def proc():
        yield from cache.write(1, b"v1")
        yield from cache.write(1, b"v2")
        data = yield from cache.read(1)
        return data

    assert env.run(env.process(proc())) == b"v2"
    assert cache.misses == 0  # write-allocate, then hits


def test_single_flight_concurrent_misses():
    """Two processes missing the same block share one fetch."""
    env = Environment()
    cache, be = make(env)
    results = []

    def reader(name):
        data = yield from cache.read(9)
        results.append((name, env.now, bytes(data)))

    env.process(reader("a"))
    env.process(reader("b"))
    env.run()
    assert len(be.fetches) == 1
    assert [t for _, t, _ in results] == [IO_TIME, IO_TIME]


def test_invalidate_requires_clean_cache():
    env = Environment()
    cache, be = make(env)

    def proc():
        yield from cache.write(1, b"x")
        return None

    env.run(env.process(proc()))
    with pytest.raises(RuntimeError):
        cache.invalidate()

    def proc2():
        yield from cache.flush()
        return None

    env.run(env.process(proc2()))
    cache.invalidate()
    assert len(cache) == 0


def test_no_writeback_function_rejects_dirty_eviction():
    env = Environment()
    be = Backend(env)
    cache = BufferCache(env, be.fetch, None, capacity_blocks=1)
    failed = []

    def proc():
        yield from cache.write(1, b"x")
        try:
            yield from cache.read(2)
        except RuntimeError:
            failed.append(True)

    env.process(proc())
    env.run()
    assert failed == [True]


def test_single_flight_window_covers_dirty_victim_install():
    """A reader arriving while the owner is still installing (dirty-victim
    writeback in progress) must share the fetch, not issue a duplicate."""
    env = Environment()
    cache, be = make(env, capacity=1)
    results = []

    def owner():
        yield from cache.write(1, b"dirty")   # block 1 dirty, cache full
        data = yield from cache.read(2)       # miss: fetch 2, then install
        results.append(("owner", env.now))    # (install evicts dirty 1)
        return data

    def late_reader():
        # arrives after the fetch of block 2 completed (t=1) but while the
        # dirty-victim writeback of block 1 is still in flight (t in [1,2))
        yield env.timeout(1.5)
        data = yield from cache.read(2)
        results.append(("late", env.now))
        return data

    env.process(owner())
    env.process(late_reader())
    env.run()

    assert [b for b, _ in be.fetches] == [2]  # exactly one device fetch
    assert ("late", 1.5) in results           # joiner returned immediately
    assert cache.coalesced == 1


def test_waiters_counted_as_shared_fetch_hits():
    """Joining an in-flight fetch is a hit, and hits+misses==reads."""
    env = Environment()
    cache, be = make(env)

    def reader():
        yield from cache.read(7)

    for _ in range(3):
        env.process(reader())
    env.run()

    assert cache.reads == 3
    assert cache.misses == 1      # one device fetch
    assert cache.hits == 2        # two coalesced joiners
    assert cache.coalesced == 2
    assert cache.hits + cache.misses == cache.reads
    assert cache.hit_rate == pytest.approx(2 / 3)
    assert len(be.fetches) == 1


def test_read_accounting_invariant_mixed_workload():
    env = Environment()
    cache, be = make(env, capacity=2)

    def proc():
        for block in (1, 2, 1, 3, 2, 3, 1):
            yield from cache.read(block)

    env.run(env.process(proc()))
    assert cache.hits + cache.misses == cache.reads == 7
    assert cache.misses == len(be.fetches)


def test_failed_fetch_clears_inflight_entry():
    env = Environment()

    def bad_fetch(block):
        def transfer():
            yield env.timeout(1)
            raise IOError(f"device error on {block}")

        return env.process(transfer())

    cache = BufferCache(env, bad_fetch, None, capacity_blocks=2)
    caught = []

    def reader():
        try:
            yield from cache.read(4)
        except IOError:
            caught.append(True)

    env.run(env.process(reader()))
    assert caught == [True]
    assert 4 not in cache._inflight
