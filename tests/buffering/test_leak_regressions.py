"""Regression tests: buffer accounting when device operations fail mid-flight.

Each test drives a failing fetch / writeback through the buffering layer
and asserts that (a) the error surfaces to the caller, (b) no pool buffer
is leaked, and (c) no cached data is silently dropped.
"""

import pytest

from repro.buffering import BufferCache, BufferPool, ReadStream
from repro.sanitize import EngineSanitizer
from repro.sim import Environment

IO_TIME = 1.0


class FetchError(RuntimeError):
    pass


class FlakyBackend:
    """Block backend whose fetch/writeback fail the first ``n`` times."""

    def __init__(self, env, fail_fetches=0, fail_writebacks=0, io_time=IO_TIME):
        self.env = env
        self.io_time = io_time
        self.fail_fetches = fail_fetches
        self.fail_writebacks = fail_writebacks
        self.store = {}

    def fetch(self, block):
        def transfer():
            yield self.env.timeout(self.io_time)
            if self.fail_fetches > 0:
                self.fail_fetches -= 1
                raise FetchError(f"fetch of block {block} failed")
            return self.store.get(block, bytes([block % 251]) * 64)

        return self.env.process(transfer())

    def writeback(self, block, data):
        def transfer():
            yield self.env.timeout(self.io_time)
            if self.fail_writebacks > 0:
                self.fail_writebacks -= 1
                raise FetchError(f"writeback of block {block} failed")
            self.store[block] = data
            return len(data)

        return self.env.process(transfer())


def make_pool(env, n=4):
    return BufferPool(env, n, 4096, copy_cost_per_byte=0.0, per_buffer_overhead=0.0)


# -- ReadStream ------------------------------------------------------------------


def test_readahead_producer_failure_releases_buffer():
    env = Environment()
    san = EngineSanitizer(env)
    be = FlakyBackend(env, fail_fetches=1)
    pool = make_pool(env)
    stream = ReadStream(env, be.fetch, [1, 2, 3], pool, depth=2)

    def proc():
        try:
            yield from stream.get()
        except FetchError:
            return "raised"
        return "no error"

    assert env.run(env.process(proc())) == "raised"
    assert pool.in_use == 0
    assert stream.exhausted  # the stream cannot continue past the failure
    san.check_balanced()
    san.assert_clean()


def test_readahead_failure_after_successes_stays_balanced():
    env = Environment()
    san = EngineSanitizer(env)
    be = FlakyBackend(env)
    pool = make_pool(env)
    stream = ReadStream(env, be.fetch, [1, 2, 3], pool, depth=1)

    def proc():
        got = []
        index, _ = yield from stream.get()
        got.append(index)
        be.fail_fetches = 1  # next producer fetch dies mid-flight
        while True:
            try:
                item = yield from stream.get()
            except FetchError:
                break
            got.append(item[0])
        return got

    got = env.run(env.process(proc()))
    assert got[0] == 1  # at least the pre-failure block was delivered
    assert pool.in_use == 0
    san.check_balanced()
    san.assert_clean()


def test_single_buffering_failure_releases_and_allows_retry():
    env = Environment()
    san = EngineSanitizer(env)
    be = FlakyBackend(env, fail_fetches=1)
    pool = make_pool(env, n=1)
    stream = ReadStream(env, be.fetch, [7], pool, depth=0)

    def proc():
        try:
            yield from stream.get()
        except FetchError:
            pass
        else:
            raise AssertionError("expected the first fetch to fail")
        in_use_after_failure = pool.in_use
        # the cursor was rewound: a retry refetches the same block
        index, data = yield from stream.get()
        marker = data[0]
        yield from stream.get()  # exhausted: releases the held buffer
        return in_use_after_failure, index, marker

    in_use, index, marker = env.run(env.process(proc()))
    assert in_use == 0
    assert (index, marker) == (7, 7)
    san.check_balanced()
    san.assert_clean()


# -- BufferCache -----------------------------------------------------------------


def test_dirty_victim_survives_writeback_failure():
    env = Environment()
    be = FlakyBackend(env, fail_writebacks=1)
    cache = BufferCache(env, be.fetch, be.writeback, capacity_blocks=1)

    def proc():
        yield from cache.write(1, b"precious")
        try:
            yield from cache.read(2)  # eviction of dirty block 1 fails
        except FetchError:
            pass
        else:
            raise AssertionError("expected the eviction write-back to fail")
        # the victim is back in the cache, still dirty — nothing was lost
        first = cache.contains(1), cache.writebacks
        data = yield from cache.read(2)  # healed: eviction now succeeds
        return first, data

    (survived, writebacks), data = env.run(env.process(proc()))
    assert survived
    assert writebacks == 0  # failed attempt is not a completed write-back
    assert be.store[1] == b"precious"  # second eviction landed the bytes
    assert data == bytes([2 % 251]) * 64


def test_dirty_eviction_without_writeback_keeps_victim():
    env = Environment()
    be = FlakyBackend(env)
    cache = BufferCache(env, be.fetch, None, capacity_blocks=1)

    def proc():
        yield from cache.write(1, b"only copy")
        try:
            yield from cache.read(2)
        except RuntimeError:
            return cache.contains(1)
        raise AssertionError("expected RuntimeError: no writeback function")

    assert env.run(env.process(proc())) is True


def test_flush_failure_keeps_blocks_dirty():
    env = Environment()
    be = FlakyBackend(env, fail_writebacks=1)
    cache = BufferCache(env, be.fetch, be.writeback, capacity_blocks=4)

    def proc():
        yield from cache.write(1, b"a")
        yield from cache.write(2, b"b")
        try:
            yield from cache.flush()
        except FetchError:
            pass
        else:
            raise AssertionError("expected the flush to fail")
        still_dirty = len(cache._dirty)
        yield from cache.flush()  # healed: retry writes everything
        return still_dirty

    still_dirty = env.run(env.process(proc()))
    assert still_dirty == 2  # nothing lost its dirty bit on the failed flush
    assert be.store == {1: b"a", 2: b"b"}
    assert cache.writebacks == 2
    cache.invalidate()  # clean now — does not raise


def test_flush_failure_then_invalidate_refuses():
    env = Environment()
    be = FlakyBackend(env, fail_writebacks=10)
    cache = BufferCache(env, be.fetch, be.writeback, capacity_blocks=4)

    def proc():
        yield from cache.write(1, b"a")
        with pytest.raises(FetchError):
            yield from cache.flush()
        return None

    env.run(env.process(proc()))
    with pytest.raises(RuntimeError):
        cache.invalidate()  # block 1 is still dirty: refuse to drop it
