"""Unit tests for buffer pools."""

import pytest

from repro.buffering import BufferPool
from repro.sim import Environment


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        BufferPool(env, 0, 1024)
    with pytest.raises(ValueError):
        BufferPool(env, 1, 0)
    with pytest.raises(ValueError):
        BufferPool(env, 1, 1024, copy_cost_per_byte=-1)


def test_copy_cost_formula():
    env = Environment()
    pool = BufferPool(env, 2, 4096, copy_cost_per_byte=1e-6, per_buffer_overhead=1e-3)
    assert pool.copy_cost(1000) == pytest.approx(1e-3 + 1e-3)
    assert pool.copy_cost(0) == pytest.approx(1e-3)
    with pytest.raises(ValueError):
        pool.copy_cost(5000)
    with pytest.raises(ValueError):
        pool.copy_cost(-1)


def test_charge_advances_clock_and_counts_bytes():
    env = Environment()
    pool = BufferPool(env, 1, 4096, copy_cost_per_byte=1e-6, per_buffer_overhead=0)

    def proc():
        yield from pool.charge(2048)

    env.run(env.process(proc()))
    assert env.now == pytest.approx(2048e-6)
    assert pool.bytes_staged == 2048


def test_acquire_blocks_at_capacity():
    env = Environment()
    pool = BufferPool(env, 2, 1024)
    acquired = []

    def proc(i):
        yield pool.acquire()
        acquired.append((i, env.now))
        yield env.timeout(1)
        pool.release()

    for i in range(3):
        env.process(proc(i))
    env.run()
    times = [t for _, t in acquired]
    assert times == [0, 0, 1]
    assert pool.peak_in_use == 2
    assert pool.in_use == 0


def test_release_unheld_raises():
    env = Environment()
    pool = BufferPool(env, 1, 1024)
    with pytest.raises(RuntimeError):
        pool.release()
