"""Unit tests for read-ahead streams — including the E5 overlap shape."""

import pytest

from repro.buffering import BufferPool, ReadStream
from repro.sim import Environment


IO_TIME = 1.0


def make_fetch(env, io_time=IO_TIME, log=None):
    """A fetch that takes io_time seconds and returns 512 marker bytes."""

    def fetch(index):
        def transfer():
            yield env.timeout(io_time)
            if log is not None:
                log.append((index, env.now))
            return bytes([index % 251]) * 512

        return env.process(transfer())

    return fetch


def make_pool(env, n=4):
    return BufferPool(env, n, 4096, copy_cost_per_byte=0.0, per_buffer_overhead=0.0)


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ReadStream(env, make_fetch(env), [0], make_pool(env), depth=-1)


def test_sequence_delivered_in_order():
    env = Environment()
    stream = ReadStream(env, make_fetch(env), [3, 1, 4, 1, 5], make_pool(env), depth=2)

    def proc():
        out = yield from stream.read_all()
        return out

    assert env.run(env.process(proc())) == [3, 1, 4, 1, 5]


def test_data_contents_match_index():
    env = Environment()
    stream = ReadStream(env, make_fetch(env), [7, 9], make_pool(env), depth=1)

    def proc():
        i1, d1 = yield from stream.get()
        i2, d2 = yield from stream.get()
        return (i1, d1[0], i2, d2[0])

    assert env.run(env.process(proc())) == (7, 7, 9, 9)


def test_get_after_exhaustion_returns_none():
    env = Environment()
    stream = ReadStream(env, make_fetch(env), [0], make_pool(env), depth=0)

    def proc():
        yield from stream.get()
        result = yield from stream.get()
        return result

    assert env.run(env.process(proc())) is None
    assert stream.exhausted


def test_single_buffering_serializes_io_and_compute():
    """depth=0: elapsed = n*(io + compute)."""
    env = Environment()
    stream = ReadStream(env, make_fetch(env), list(range(5)), make_pool(env), depth=0)

    def proc():
        yield from stream.read_all(compute=lambda i, d: 1.0)

    env.run(env.process(proc()))
    assert env.now == pytest.approx(5 * (IO_TIME + 1.0))


def test_double_buffering_overlaps_io_with_compute():
    """depth>=1: elapsed ~ io + n*max(io, compute)."""
    env = Environment()
    stream = ReadStream(env, make_fetch(env), list(range(5)), make_pool(env), depth=1)

    def proc():
        yield from stream.read_all(compute=lambda i, d: 1.0)

    env.run(env.process(proc()))
    # first block's fetch is exposed; thereafter compute hides I/O
    assert env.now == pytest.approx(IO_TIME + 5 * 1.0)


def test_readahead_hides_io_when_compute_dominates():
    env = Environment()
    stream = ReadStream(env, make_fetch(env, io_time=0.1), list(range(10)), make_pool(env), depth=2)

    def proc():
        yield from stream.read_all(compute=lambda i, d: 1.0)

    env.run(env.process(proc()))
    assert env.now == pytest.approx(0.1 + 10 * 1.0, rel=0.02)


def test_io_bound_floor_is_total_io_time():
    """When compute ~ 0, read-ahead cannot beat the device."""
    env = Environment()
    stream = ReadStream(env, make_fetch(env), list(range(6)), make_pool(env), depth=3)

    def proc():
        yield from stream.read_all()

    env.run(env.process(proc()))
    assert env.now == pytest.approx(6 * IO_TIME)


def test_copy_cost_charged_per_block():
    env = Environment()
    pool = BufferPool(env, 2, 4096, copy_cost_per_byte=1e-3, per_buffer_overhead=0.0)
    stream = ReadStream(env, make_fetch(env, io_time=0.0), [0, 1], pool, depth=0)

    def proc():
        yield from stream.read_all()

    env.run(env.process(proc()))
    assert env.now == pytest.approx(2 * 512e-3)
    assert pool.bytes_staged == 1024


def test_pool_bounds_producer_lookahead():
    """With depth=4 but a 1-buffer pool, the producer cannot run ahead."""
    env = Environment()
    log = []
    pool = BufferPool(env, 1, 4096, copy_cost_per_byte=0, per_buffer_overhead=0)
    stream = ReadStream(env, make_fetch(env, log=log), list(range(3)), pool, depth=4)

    def proc():
        yield from stream.read_all(compute=lambda i, d: 10.0)

    env.run(env.process(proc()))
    # fetch k+1 cannot complete until consumer releases buffer k
    fetch_times = [t for _, t in log]
    assert fetch_times[1] >= IO_TIME + 10.0
