"""Unit tests for deferred-write streams."""

import pytest

from repro.buffering import BufferPool, WriteStream
from repro.sim import Environment

IO_TIME = 1.0


def make_write(env, io_time=IO_TIME, log=None):
    def write(index, data):
        def transfer():
            yield env.timeout(io_time)
            if log is not None:
                log.append((index, env.now))
            return len(data)

        return env.process(transfer())

    return write


def make_pool(env, n=4):
    return BufferPool(env, n, 4096, copy_cost_per_byte=0.0, per_buffer_overhead=0.0)


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        WriteStream(env, make_write(env), make_pool(env), depth=-1)


def test_write_through_serializes():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=0)

    def proc():
        for i in range(3):
            yield from ws.put(i, b"x" * 512)
            yield env.timeout(1.0)  # compute
        yield from ws.drain()

    env.run(env.process(proc()))
    assert env.now == pytest.approx(3 * (IO_TIME + 1.0))


def test_deferred_write_overlaps_compute():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=1)

    def proc():
        for i in range(5):
            yield from ws.put(i, b"x" * 512)
            yield env.timeout(1.0)  # compute while the write proceeds
        yield from ws.drain()

    env.run(env.process(proc()))
    # writes hide behind compute; only the tail write may stick out
    assert env.now == pytest.approx(5 * 1.0, abs=IO_TIME + 0.01)


def test_all_writes_complete_after_drain():
    env = Environment()
    log = []
    ws = WriteStream(env, make_write(env, log=log), make_pool(env), depth=2)

    def proc():
        for i in range(4):
            yield from ws.put(i, b"y" * 100)
        yield from ws.drain()

    env.run(env.process(proc()))
    assert sorted(i for i, _ in log) == [0, 1, 2, 3]
    assert ws.issued == 4


def test_depth_bounds_outstanding_writes():
    """With depth=1, put k+1 must wait for write k to finish."""
    env = Environment()
    log = []
    ws = WriteStream(env, make_write(env, log=log), make_pool(env), depth=1)

    def proc():
        yield from ws.put(0, b"a" * 10)
        yield from ws.put(1, b"b" * 10)  # must wait for write 0
        yield from ws.drain()

    env.run(env.process(proc()))
    assert log[0] == (0, pytest.approx(IO_TIME))
    assert log[1][1] == pytest.approx(2 * IO_TIME)


def test_copy_cost_charged():
    env = Environment()
    pool = BufferPool(env, 2, 4096, copy_cost_per_byte=1e-3, per_buffer_overhead=0)
    ws = WriteStream(env, make_write(env, io_time=0.0), pool, depth=1)

    def proc():
        yield from ws.put(0, b"z" * 100)
        yield from ws.drain()

    env.run(env.process(proc()))
    assert pool.bytes_staged == 100
    assert env.now >= 100e-3


def test_drain_with_nothing_outstanding():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=1)

    def proc():
        yield from ws.drain()
        return "ok"

    assert env.run(env.process(proc())) == "ok"


def make_failing_write(env, fail_on, io_time=IO_TIME):
    def write(index, data):
        def transfer():
            yield env.timeout(io_time)
            if index in fail_on:
                raise IOError(f"write {index} failed")
            return len(data)

        return env.process(transfer())

    return write


def test_background_failure_surfaces_on_drain_once():
    env = Environment()
    pool = make_pool(env)
    ws = WriteStream(env, make_failing_write(env, {1}), pool, depth=2)
    caught = []

    def proc():
        yield from ws.put(0, b"a" * 64)
        yield from ws.put(1, b"b" * 64)  # this one dies in the background
        try:
            yield from ws.drain()
        except IOError as exc:
            caught.append(str(exc))
        yield from ws.drain()  # raised exactly once: second drain is clean

    env.run(env.process(proc()))
    assert caught == ["write 1 failed"]
    assert pool.in_use == 0


def test_background_failure_on_later_put_does_not_leak_buffer():
    """Regression: a put that raises a *previous* write's error must release
    its own just-acquired buffer (the pool stays balanced)."""
    env = Environment()
    pool = make_pool(env, n=2)
    ws = WriteStream(env, make_failing_write(env, {0}), pool, depth=1)
    caught = []

    def proc():
        yield from ws.put(0, b"a" * 64)
        yield env.timeout(IO_TIME * 2)  # let the background write fail
        try:
            yield from ws.put(1, b"b" * 64)
        except IOError as exc:
            caught.append(str(exc))
        yield from ws.drain()

    env.run(env.process(proc()))
    assert caught == ["write 0 failed"]
    assert pool.in_use == 0  # neither write 0's nor put 1's buffer leaked
    assert ws.issued == 1


def test_background_failure_does_not_crash_unrelated_run():
    """A failed deferred write with nobody waiting must not take down the
    whole simulation; it surfaces at the next reap point only."""
    env = Environment()
    pool = make_pool(env)
    ws = WriteStream(env, make_failing_write(env, {0}), pool, depth=1)
    ticks = []

    def bystander():
        for _ in range(4):
            yield env.timeout(1.0)
            ticks.append(env.now)

    def proc():
        yield from ws.put(0, b"x" * 16)

    env.process(proc())
    env.process(bystander())
    env.run()  # the failure is defused; unrelated processes keep running
    assert len(ticks) == 4
    assert pool.in_use == 0
    with pytest.raises(IOError):
        next(ws.drain(), None)


def test_failure_while_waiting_for_depth_slot_releases_buffer():
    """The backpressure wait itself observing a failure must not leak the
    waiting put's buffer either."""
    env = Environment()
    pool = make_pool(env, n=4)
    ws = WriteStream(env, make_failing_write(env, {0}), pool, depth=1)
    caught = []

    def proc():
        yield from ws.put(0, b"a" * 64)
        try:
            # issued immediately after: blocks on the depth bound while
            # write 0 is still in flight, then sees it fail
            yield from ws.put(1, b"b" * 64)
        except IOError as exc:
            caught.append(str(exc))
        yield from ws.drain()

    env.run(env.process(proc()))
    assert caught == ["write 0 failed"]
    assert pool.in_use == 0
