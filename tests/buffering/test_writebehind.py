"""Unit tests for deferred-write streams."""

import pytest

from repro.buffering import BufferPool, WriteStream
from repro.sim import Environment

IO_TIME = 1.0


def make_write(env, io_time=IO_TIME, log=None):
    def write(index, data):
        def transfer():
            yield env.timeout(io_time)
            if log is not None:
                log.append((index, env.now))
            return len(data)

        return env.process(transfer())

    return write


def make_pool(env, n=4):
    return BufferPool(env, n, 4096, copy_cost_per_byte=0.0, per_buffer_overhead=0.0)


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        WriteStream(env, make_write(env), make_pool(env), depth=-1)


def test_write_through_serializes():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=0)

    def proc():
        for i in range(3):
            yield from ws.put(i, b"x" * 512)
            yield env.timeout(1.0)  # compute
        yield from ws.drain()

    env.run(env.process(proc()))
    assert env.now == pytest.approx(3 * (IO_TIME + 1.0))


def test_deferred_write_overlaps_compute():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=1)

    def proc():
        for i in range(5):
            yield from ws.put(i, b"x" * 512)
            yield env.timeout(1.0)  # compute while the write proceeds
        yield from ws.drain()

    env.run(env.process(proc()))
    # writes hide behind compute; only the tail write may stick out
    assert env.now == pytest.approx(5 * 1.0, abs=IO_TIME + 0.01)


def test_all_writes_complete_after_drain():
    env = Environment()
    log = []
    ws = WriteStream(env, make_write(env, log=log), make_pool(env), depth=2)

    def proc():
        for i in range(4):
            yield from ws.put(i, b"y" * 100)
        yield from ws.drain()

    env.run(env.process(proc()))
    assert sorted(i for i, _ in log) == [0, 1, 2, 3]
    assert ws.issued == 4


def test_depth_bounds_outstanding_writes():
    """With depth=1, put k+1 must wait for write k to finish."""
    env = Environment()
    log = []
    ws = WriteStream(env, make_write(env, log=log), make_pool(env), depth=1)

    def proc():
        yield from ws.put(0, b"a" * 10)
        yield from ws.put(1, b"b" * 10)  # must wait for write 0
        yield from ws.drain()

    env.run(env.process(proc()))
    assert log[0] == (0, pytest.approx(IO_TIME))
    assert log[1][1] == pytest.approx(2 * IO_TIME)


def test_copy_cost_charged():
    env = Environment()
    pool = BufferPool(env, 2, 4096, copy_cost_per_byte=1e-3, per_buffer_overhead=0)
    ws = WriteStream(env, make_write(env, io_time=0.0), pool, depth=1)

    def proc():
        yield from ws.put(0, b"z" * 100)
        yield from ws.drain()

    env.run(env.process(proc()))
    assert pool.bytes_staged == 100
    assert env.now >= 100e-3


def test_drain_with_nothing_outstanding():
    env = Environment()
    ws = WriteStream(env, make_write(env), make_pool(env), depth=1)

    def proc():
        yield from ws.drain()
        return "ok"

    assert env.run(env.process(proc())) == "ok"
