"""Unit tests for the file-per-process baseline (FEM story)."""

import numpy as np
import pytest

from repro.baselines import FilePerProcessDataset, build_parallel_fs, single_device_fs
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def pfs(env):
    return build_parallel_fs(env, 4)


def test_catalog_bloat_scales_with_processes(env, pfs):
    ds = FilePerProcessDataset(pfs, "fem", n_records=64, record_size=8,
                               n_processes=16)
    assert ds.file_count == 16
    assert len(pfs.catalog) == 16


def test_partition_and_per_process_read(env, pfs):
    ds = FilePerProcessDataset(
        pfs, "fem", n_records=40, record_size=8, n_processes=4, dtype="float64",
    )
    data = np.random.default_rng(0).random((40, 1))

    def driver():
        yield from ds.partition(data)
        part1 = yield from ds.read_partition(1)
        return part1

    part1 = env.run(env.process(driver()))
    assert np.array_equal(part1, data[ds._map.records_of(1)])
    assert ds.utility_bytes == 40 * 8


def test_merge_restores_global_order(env, pfs):
    ds = FilePerProcessDataset(
        pfs, "fem", n_records=40, record_size=8, n_processes=4, dtype="float64",
    )
    data = np.random.default_rng(1).random((40, 1))

    def driver():
        yield from ds.partition(data)
        merged = yield from ds.merge("merged")
        out = yield from merged.global_view().read()
        return out

    assert np.array_equal(env.run(env.process(driver())), data)
    # utility moved every byte twice (partition + merge)
    assert ds.utility_bytes == 2 * 40 * 8


def test_write_partition_roundtrip(env, pfs):
    ds = FilePerProcessDataset(
        pfs, "fem", n_records=16, record_size=8, n_processes=2, dtype="float64",
    )
    new_part = np.random.default_rng(2).random((8, 1))

    def driver():
        yield from ds.write_partition(0, new_part)
        out = yield from ds.read_partition(0)
        return out

    assert np.array_equal(env.run(env.process(driver())), new_part)


def test_delete_all_counts_operations(env, pfs):
    ds = FilePerProcessDataset(pfs, "fem", n_records=64, record_size=8,
                               n_processes=8)
    assert ds.delete_all() == 8
    assert len(pfs.catalog) == 0


def test_partition_validates_shape(env, pfs):
    ds = FilePerProcessDataset(pfs, "fem", n_records=10, record_size=8,
                               n_processes=2, dtype="float64")
    with pytest.raises(ValueError):
        next(ds.partition(np.zeros((9, 1))))


def test_single_device_fs_builder(env):
    pfs1 = single_device_fs(env)
    assert pfs1.volume.n_devices == 1
    f = pfs1.create("x", "S", n_records=4, record_size=8)
    assert f.layout.n_devices == 1


def test_build_with_scheduling_policy(env):
    pfs = build_parallel_fs(env, 2, scheduling="sstf")
    assert pfs.volume.devices[0].policy.name == "sstf"
