"""E12 — §3: the NASA Finite Element Machine experience.

    "It was not uncommon for an application to use several separate files
    per process, and when multiplied by 16 processors, the sheer number
    of files became unwieldy ... data stored in a multitude of small
    files often needed to be treated as a unit by sequential programs
    ... users balked at having to write additional programs to manage
    their data."

File-per-process vs one PS parallel file at P in {4, 16, 64}:
catalog entries, individual create/delete operations, bytes moved by
pre/post-processing utilities, and the end-to-end cost of the global
(sequential) consumption the utilities exist to serve.
"""

import numpy as np
import pytest

from repro import Environment, FilePerProcessDataset, build_parallel_fs
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 512
RECORDS_PER_PROCESS = 32
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
FILES_PER_PROCESS = 3   # "several separate files per process"


def run_fpp(p: int):
    """File-per-process: partition, per-process use, merge for global read."""
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    n = RECORDS_PER_PROCESS * p
    datasets = [
        FilePerProcessDataset(
            pfs, f"set{k}", n_records=n, record_size=RECORD,
            n_processes=p, dtype="uint8",
        )
        for k in range(FILES_PER_PROCESS)
    ]
    data = np.zeros((n, RECORD), dtype=np.uint8)
    start = env.now

    def driver():
        for ds in datasets:
            yield from ds.partition(data)       # pre-processing utility
        # each process touches its own partition (works fine)
        def worker(q):
            for ds in datasets:
                yield from ds.read_partition(q)

        yield env.all_of([env.process(worker(q)) for q in range(p)])
        # sequential consumption needs the merge utility
        for k, ds in enumerate(datasets):
            merged = yield from ds.merge(f"merged{k}")
            v = merged.global_view()
            while not v.eof:
                yield from v.read(64)

    env.run(env.process(driver()))
    elapsed = env.now - start
    catalog_entries = len(pfs.catalog)
    utility_bytes = sum(ds.utility_bytes for ds in datasets)
    deletions = sum(ds.delete_all() for ds in datasets)
    return elapsed, catalog_entries, utility_bytes, deletions


def run_parallel_file(p: int):
    """The same work with PS parallel files: no utilities needed."""
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    n = RECORDS_PER_PROCESS * p
    files = [
        pfs.create(
            f"pf{k}", "PS", n_records=n, record_size=RECORD,
            records_per_block=4, n_processes=p,
        )
        for k in range(FILES_PER_PROCESS)
    ]
    data = np.zeros((n, RECORD), dtype=np.uint8)
    start = env.now

    def driver():
        for f in files:
            yield from f.global_view().write(data)   # one pass, no utility

        def worker(q):
            for f in files:
                h = f.internal_view(q)
                if h.n_local_records:
                    yield from h.read_next(h.n_local_records)

        yield env.all_of([env.process(worker(q)) for q in range(p)])
        # sequential consumption: the global view already exists
        for f in files:
            v = f.global_view()
            v.seek(0)
            while not v.eof:
                yield from v.read(64)

    env.run(env.process(driver()))
    elapsed = env.now - start
    catalog_entries = len(pfs.catalog)
    for k in range(FILES_PER_PROCESS):
        pfs.delete(f"pf{k}")
    return elapsed, catalog_entries, 0, FILES_PER_PROCESS


def run_experiment():
    return {
        p: {"fpp": run_fpp(p), "parallel": run_parallel_file(p)}
        for p in (4, 16, 64)
    }


@pytest.mark.benchmark(group="e12")
def test_e12_file_per_process(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for p, r in out.items():
        for kind in ("fpp", "parallel"):
            elapsed, entries, util_bytes, deletions = r[kind]
            label = "file/process" if kind == "fpp" else "parallel PS"
            rows.append(
                f"P={p:<4d} {label:<14s} catalog={entries:>5d} files  "
                f"utility={util_bytes / 1024:8.0f} KB moved  "
                f"deletes={deletions:>4d}  elapsed={elapsed * 1e3:9.1f} ms"
            )

    for p, r in out.items():
        e_f, n_f, u_f, d_f = r["fpp"]
        e_p, n_p, u_p, d_p = r["parallel"]
        # the §3 manageability gap: entries scale with P vs constant
        assert n_f == FILES_PER_PROCESS * p + FILES_PER_PROCESS  # + merged copies
        assert n_p == FILES_PER_PROCESS
        assert d_f == FILES_PER_PROCESS * p
        # the utilities move every byte (twice); the parallel file none
        assert u_f == 2 * FILES_PER_PROCESS * RECORDS_PER_PROCESS * p * RECORD
        assert u_p == 0
        # and end-to-end the parallel file is faster
        assert e_p < e_f

    write_table(
        results_dir, "e12_file_per_process",
        f"E12: file-per-process (FEM) vs parallel file, "
        f"{FILES_PER_PROCESS} datasets, {RECORDS_PER_PROCESS} records/process",
        rows,
    )
