"""E2 — §4: "Types PS and IS have obvious implementations if there is one
device per process. ... processes are free to proceed at different rates,
so that the corresponding blocks on different disks would not usually be
accessed at the same time."

P processes each scan their own partition of a PS (clustered) and an IS
(interleaved) file over P devices. Expected shape: aggregate throughput
~ P x a single device; per-process completion times independent even when
processes compute at different rates.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.trace import throughput_mb_s

from conftest import write_table

RECORD = 4096
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=512)


def run_partitioned_scan(org: str, n_processes: int, compute_scale: bool):
    """Each process scans its partition; returns (elapsed, finish_times)."""
    env = Environment()
    pfs = build_parallel_fs(env, n_processes, geometry=GEO)
    n_records = 128 * n_processes
    f = pfs.create(
        "part", org, n_records=n_records, record_size=RECORD,
        records_per_block=8, n_processes=n_processes,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((n_records, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    start = env.now
    finish = {}

    def worker(q):
        h = f.internal_view(q)
        while not h.eof:
            yield from h.read_next(8)
            if compute_scale:
                # uneven rates: process q computes q+1 units per block
                yield env.timeout(0.002 * (q + 1))
        finish[q] = env.now - start

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(n_processes)])

    env.run(env.process(driver()))
    return env.now - start, finish, n_records * RECORD


def run_experiment():
    out = {}
    for org in ("PS", "IS"):
        for p in (1, 2, 4, 8):
            elapsed, finish, nbytes = run_partitioned_scan(org, p, False)
            out[(org, p)] = (elapsed, nbytes)
    return out


@pytest.mark.benchmark(group="e2")
def test_e2_aggregate_throughput_scales(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for org in ("PS", "IS"):
        base_rate = None
        for p in (1, 2, 4, 8):
            elapsed, nbytes = out[(org, p)]
            rate = throughput_mb_s(nbytes, elapsed)
            if p == 1:
                base_rate = rate
            rows.append(
                f"{org:<3s} P=D={p:<3d} elapsed={elapsed * 1e3:9.1f} ms  "
                f"aggregate={rate:7.2f} MB/s  scaling={rate / base_rate:5.2f}x"
            )
        # aggregate throughput ~ P x single device (each process has its
        # own drive; no interference)
        e1, n1 = out[(org, 1)]
        e8, n8 = out[(org, 8)]
        scaling = (n8 / e8) / (n1 / e1)
        assert scaling > 6.5, f"{org}: {scaling}"
    write_table(
        results_dir, "e2_ps_is_parallel",
        "E2: per-process partition scans, one device per process",
        rows,
    )


@pytest.mark.benchmark(group="e2")
def test_e2_processes_proceed_at_independent_rates(benchmark, results_dir):
    """The §4 point distinguishing PS/IS from striping: a slow process
    does not hold up a fast one."""

    def run():
        return run_partitioned_scan("PS", 4, compute_scale=True)

    elapsed, finish, nbytes = benchmark.pedantic(run, rounds=1, iterations=1)
    times = [finish[q] for q in range(4)]
    rows = [
        f"process {q}: finished at {times[q] * 1e3:9.1f} ms"
        for q in range(4)
    ] + [f"whole job: {elapsed * 1e3:9.1f} ms"]
    # each process's finish time tracks its own compute rate, not the
    # slowest peer's (no convoying through a shared stripe)
    assert times[0] < times[1] < times[2] < times[3]
    # 16 reads/process, 0.002*(q+1) s compute each: the gap between the
    # fastest and slowest should be their compute difference, not zero
    expected_gap = 16 * 0.002 * 3
    assert times[3] - times[0] == pytest.approx(expected_gap, rel=0.2)
    write_table(
        results_dir, "e2_independent_rates",
        "E2b: PS scan with per-process compute of (q+1) units/block",
        rows,
    )
