"""E11 — §5, problem area 2: partition-boundary overlap.

    "One way of dealing with the problem is to replicate boundary data in
    both of the adjacent partitions in the file. This will cause
    difficulties for the global view of the file, since there will be
    redundant data records. An alternative is to cache boundary data in
    memory (if it will fit). This would be helpful if more than one pass
    is made through the file."

A 3-point stencil over a PS-partitioned vector, multi-pass, comparing:

* explicit — boundary records re-read from the file every pass;
* cached   — boundary records cached in memory after the first pass;
* replicate — the file stores halo copies; measured here as the file
  inflation + global-view redundancy the paper warns about, plus the cost
  of the dedup the global view then requires.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.core import HaloCache, ReplicatedPartitioning
from repro.core.mapping import PartitionedMap
from repro.core.blocks import BlockSpec
from repro.core.records import RecordSpec
from repro.devices import DiskGeometry
from repro.workloads import stencil_pass_cached, stencil_pass_explicit

from conftest import write_table

N = 4096
P = 8
RPB = 8
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=256)
PASSES = 4


def run_stencil(mode: str):
    env = Environment()
    pfs = build_parallel_fs(env, P, geometry=GEO)
    f = pfs.create(
        "vec", "PS", n_records=N, record_size=8, dtype="float64",
        records_per_block=RPB, n_processes=P,
    )

    def setup():
        yield from f.global_view().write(
            np.random.default_rng(0).random((N, 1))
        )

    env.run(env.process(setup()))
    caches = [HaloCache(16) for _ in range(P)]
    start = env.now

    def one_pass():
        if mode == "cached":
            children = [
                env.process(stencil_pass_cached(f, q, caches[q]))
                for q in range(P)
            ]
        else:
            children = [
                env.process(stencil_pass_explicit(f, q)) for q in range(P)
            ]
        yield env.all_of(children)

    def driver():
        for _ in range(PASSES):
            yield from one_pass()

    env.run(env.process(driver()))
    boundary_reads = sum(c.misses for c in caches) if mode == "cached" else None
    return env.now - start, boundary_reads


def replication_metrics(halo: int):
    ps = PartitionedMap(BlockSpec(RecordSpec(8, "float64"), RPB), N, P)
    rp = ReplicatedPartitioning(ps, halo)
    return rp.inflation, rp.redundant_records


def run_experiment():
    out = {
        "explicit": run_stencil("explicit"),
        "cached": run_stencil("cached"),
    }
    repl = {h: replication_metrics(h) for h in (1, 4, 16, 64)}
    return out, repl


@pytest.mark.benchmark(group="e11")
def test_e11_boundary_overlap(benchmark, results_dir):
    out, repl = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    t_explicit, _ = out["explicit"]
    t_cached, misses = out["cached"]
    rows = [
        f"explicit boundary re-reads: {PASSES} passes in {t_explicit * 1e3:9.1f} ms",
        f"halo cache:                 {PASSES} passes in {t_cached * 1e3:9.1f} ms "
        f"(device boundary reads: {misses}, then cache hits)",
        "-- replication: file inflation and global-view redundancy --",
    ]
    for h, (infl, redundant) in repl.items():
        rows.append(
            f"halo={h:<3d} inflation={infl:6.3f}x  redundant records "
            f"in global view={redundant}"
        )

    # caching wins on multi-pass runs (boundaries fetched once, not PASSES x)
    assert t_cached < t_explicit
    # first pass misses exactly the interior boundaries: 2 per interior
    # process-pair side
    assert misses == 2 * (P - 1)
    # replication inflates the file monotonically with halo width, and the
    # redundancy the global view must dedup grows linearly
    inflations = [repl[h][0] for h in (1, 4, 16, 64)]
    assert inflations == sorted(inflations)
    assert repl[1][1] == 2 * (P - 1)
    assert repl[64][1] == 64 * 2 * (P - 1)

    write_table(
        results_dir, "e11_boundary",
        f"E11: 3-point stencil, {N} records over {P} PS partitions, "
        f"{PASSES} passes",
        rows,
    )
