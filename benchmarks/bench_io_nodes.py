"""E8 — §4: dedicated I/O processors. Server-mediated access trades an
interconnect round-trip per request for the server's batch vantage point:
requests from many clients coalesce into fewer, larger device transfers,
and a server-side cache absorbs re-reads entirely.

P processes scan an IS (interleaved) file over D devices, direct-attached
versus routed through an I/O-node cluster. The scientific outputs are
*device request counts* (the aggregation win) and cache hit rates (the
locality win) — the wall-clock trade is reported alongside.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the workload and the config
sweep for CI smoke runs.
"""

import os

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.trace import ionode_report

from conftest import write_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

D = 4  # devices
P = 8  # client processes
RECORD = 512
RPB = 8  # records per block -> 4096-byte blocks
BLOCKS_PER_PROC = 8 if QUICK else 32
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=256)
NODE_SWEEP = (2,) if QUICK else (1, 2, 4)


def device_requests(pfs) -> int:
    return sum(d.disk.total_requests for d in pfs.volume.devices)


def run_is_scan(io_nodes: int | None, cache_blocks: int = 0, passes: int = 1):
    """P clients scan their IS stripes ``passes`` times; returns metrics."""
    env = Environment()
    pfs = build_parallel_fs(env, D, geometry=GEO)
    cluster = None
    if io_nodes:
        cluster = pfs.attach_io_nodes(
            io_nodes,
            cache_blocks=cache_blocks,
            cache_block_bytes=GEO.block_size,
            queue_depth=P,
            batch_limit=P,
        )
    n_records = P * BLOCKS_PER_PROC * RPB
    f = pfs.create(
        "scan", "IS", n_records=n_records, record_size=RECORD,
        records_per_block=RPB, n_processes=P,
    )

    def seed():
        yield from f.global_view().write(
            np.zeros((n_records, RECORD), dtype=np.uint8)
        )

    env.run(env.process(seed()))
    reqs_before = device_requests(pfs)
    t0 = env.now

    def worker(q):
        for _ in range(passes):
            h = f.internal_view(q)
            while not h.eof:
                yield from h.read_next(RPB)  # one strided block per call

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(P)])

    env.run(env.process(driver()))
    if cluster is not None:
        cluster.assert_drained()
    return {
        "elapsed": env.now - t0,
        "read_reqs": device_requests(pfs) - reqs_before,
        "cluster": cluster,
        "env": env,
        "nbytes": passes * n_records * RECORD,
    }


def run_experiment():
    out = {"direct": run_is_scan(None)}
    for n in NODE_SWEEP:
        out[f"ion{n}"] = run_is_scan(n)
    out["direct-reread"] = run_is_scan(None, passes=2)
    out["cached-reread"] = run_is_scan(
        NODE_SWEEP[-1], cache_blocks=P * BLOCKS_PER_PROC, passes=2
    )
    return out


@pytest.mark.benchmark(group="e8")
def test_e8_aggregation_reduces_device_requests(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for label, m in out.items():
        ratio = (
            f"{np.mean([n.coalescing_ratio for n in m['cluster'].nodes]):5.2f}"
            if m["cluster"] is not None
            else "    -"
        )
        hit = (
            f"{np.mean([n.cache.hit_rate for n in m['cluster'].nodes]):6.1%}"
            if m["cluster"] is not None and m["cluster"].nodes[0].cache
            else "     -"
        )
        rows.append(
            f"{label:<14s} device_reqs={m['read_reqs']:>5d} "
            f"elapsed={m['elapsed'] * 1e3:9.1f} ms coalesce={ratio} "
            f"cache_hit={hit}"
        )
    direct, mediated = out["direct"], out[f"ion{NODE_SWEEP[-1]}"]
    # the acceptance claim: the server's batch view coalesces the strided
    # IS read traffic into strictly fewer device requests than direct
    assert mediated["read_reqs"] < direct["read_reqs"], (
        f"aggregation should cut device requests: "
        f"{mediated['read_reqs']} vs {direct['read_reqs']}"
    )
    # caching: the second pass is absorbed server-side
    assert (
        out["cached-reread"]["read_reqs"] < out["direct-reread"]["read_reqs"]
    )
    cached = out["cached-reread"]["cluster"]
    assert any(n.cache.hits > 0 for n in cached.nodes)
    rows += ["", "per-node table (cached re-read config):"]
    rows += ionode_report(out["cached-reread"]["env"], cached)
    write_table(
        results_dir, "e8_io_nodes",
        "E8: strided IS reads, direct vs I/O-node mediated",
        rows,
    )


@pytest.mark.benchmark(group="e8")
def test_e8_node_count_sweep(benchmark, results_dir):
    """More nodes -> narrower batches per node (less cross-client view)
    but more service parallelism; the sweep records the trade."""

    def run():
        return {n: run_is_scan(n) for n in NODE_SWEEP}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for n, m in out.items():
        rows.append(
            f"nodes={n}  clients/node={P // n:>2d}  "
            f"device_reqs={m['read_reqs']:>5d}  "
            f"elapsed={m['elapsed'] * 1e3:9.1f} ms"
        )
        m["cluster"].assert_drained()
    write_table(
        results_dir, "e8_node_sweep",
        "E8b: client:node ratio sweep (strided IS reads)",
        rows,
    )
