"""E1 — §4: "For file types S and SS, disk striping can be used to spread
the file across multiple drives, resulting in higher transfer rates."

Sequential (S) scan of a fixed-size file striped over N drives, N in
{1, 2, 4, 8, 16}. Expected shape: near-linear speedup that flattens as
per-request overheads and the unstriped tail dominate.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.trace import throughput_mb_s

from conftest import write_table

FILE_MB = 4
RECORD = 4096
N_RECORDS = FILE_MB * 1024 * 1024 // RECORD
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=512)


def scan_time(n_devices: int, stripe_unit: int = 65536) -> float:
    env = Environment()
    pfs = build_parallel_fs(env, n_devices, geometry=GEO)
    f = pfs.create(
        "scan", "S", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=16, stripe_unit=stripe_unit,
    )

    def run():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )
        start = env.now
        v = f.global_view()
        v.seek(0)
        # scan in 1 MB requests (16 stripe units), so up to 16 drives can
        # serve one request in parallel. The reader pays a serial buffer
        # copy per request (§4: "buffering overheads can be a significant
        # factor in limiting speedups") — this is the Amdahl term that
        # flattens the curve.
        copy_cost_per_byte = 2e-8  # ~50 MB/s memory-to-memory, 1989 CPU
        while not v.eof:
            chunk = yield from v.read(256)
            yield env.timeout(0.002 + chunk.size * copy_cost_per_byte)
        return env.now - start

    return env.run(env.process(run()))


def run_experiment():
    return {d: scan_time(d) for d in (1, 2, 4, 8, 16)}


@pytest.mark.benchmark(group="e1")
def test_e1_striping_speedup(benchmark, results_dir):
    times = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    nbytes = N_RECORDS * RECORD
    base = times[1]
    rows = []
    speedups = {}
    for d, t in times.items():
        speedups[d] = base / t
        rows.append(
            f"N={d:<3d} elapsed={t * 1e3:9.1f} ms  "
            f"rate={throughput_mb_s(nbytes, t):7.2f} MB/s  "
            f"speedup={speedups[d]:5.2f}x"
        )

    # shape: monotone speedup, near-linear early, flattening later
    assert speedups[2] > 1.6
    assert speedups[4] > 2.8
    assert speedups[8] > 5.0
    assert speedups[16] > speedups[8]
    # diminishing returns: efficiency drops with N
    assert speedups[16] / 16 < speedups[2] / 2

    write_table(
        results_dir, "e1_striping",
        f"E1: S-type sequential scan of a {FILE_MB} MB striped file "
        "(64 KB stripe unit, 1989 Winchester drives)",
        rows,
    )
