"""E10 — §5: the cost of staying online. Two resilience figures:

1. **Degraded-read tax.** The same strided IS scan is timed against a
   healthy parity volume and again after one device dies: every read that
   lands on the dead member is served by XOR reconstruction across the
   survivors, so the degraded scan pays roughly a full extra stripe of
   transfers per hit. The table reports healthy vs degraded elapsed time
   and the per-read reconstruction latency distribution.

2. **Rebuild throttle: MTTR vs foreground bandwidth.** A hot-spare
   rebuild streams the dead device's contents onto the spare while a
   foreground scan is running. The throttle knob idles the rebuilder
   between chunks; sweeping it shows the §5 operational trade — repair
   fast and starve clients, or repair slow and stay responsive.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the workload and the sweep
for CI smoke runs.
"""

import os

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.resilience import ResilienceConfig
from repro.trace import resilience_report

from conftest import write_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

D = 4  # data devices (parity adds a check device per group)
P = 4  # client processes
RECORD = 512
RPB = 8  # records per block -> 4096-byte blocks
BLOCKS_PER_PROC = 4 if QUICK else 16
GEO = DiskGeometry(
    block_size=4096, blocks_per_cylinder=32, cylinders=16 if QUICK else 64
)
THROTTLES = (0.0, 3.0) if QUICK else (0.0, 1.0, 3.0, 8.0)


def build(env, **cfg_over):
    cfg = ResilienceConfig(protection="parity", spares=1, **cfg_over)
    return build_parallel_fs(env, D, geometry=GEO, resilience=cfg)


def make_scan_file(env, pfs):
    n_records = P * BLOCKS_PER_PROC * RPB
    f = pfs.create(
        "scan", "IS", n_records=n_records, record_size=RECORD,
        records_per_block=RPB, n_processes=P,
    )

    def seed():
        yield from f.global_view().write(
            np.zeros((n_records, RECORD), dtype=np.uint8)
        )

    env.run(env.process(seed()))
    return f, n_records * RECORD


def timed_scan(env, f):
    """All P clients scan their IS stripes once; returns elapsed sim time."""
    t0 = env.now

    def worker(q):
        h = f.internal_view(q)
        while not h.eof:
            yield from h.read_next(RPB)

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(P)])

    env.run(env.process(driver()))
    return env.now - t0


def run_degraded_read_tax():
    env = Environment()
    pfs = build(env)
    f, nbytes = make_scan_file(env, pfs)
    healthy = timed_scan(env, f)
    pfs.volume.devices[1].fail()
    degraded = timed_scan(env, f)
    return {
        "healthy": healthy,
        "degraded": degraded,
        "nbytes": nbytes,
        "stats": pfs.resilience.stats,
        "resilience": pfs.resilience,
    }


def run_throttled_rebuild(throttle):
    """Kill a device, start the rebuild, and scan in the foreground until
    the spare is back; returns the MTTR and the foreground scan rate."""
    env = Environment()
    pfs = build(env, rebuild_throttle=throttle, rebuild_chunk=1 << 14)
    f, scan_bytes = make_scan_file(env, pfs)
    rv = pfs.resilience
    pfs.volume.devices[1].fail()
    rv.failed_at[1] = env.now
    rv.rebuilder.start(1)
    scans = 0
    t0 = env.now
    while rv.rebuilder.active:  # foreground load for the whole repair
        timed_scan(env, f)
        scans += 1
    env.run()  # let the rebuild settle its bookkeeping
    assert rv.stats.rebuilds_completed == 1
    elapsed = env.now - t0
    return {
        "mttr": rv.stats.mttr_seconds,
        "fg_mbps": scans * scan_bytes / elapsed / 1e6,
        "scans": scans,
    }


@pytest.mark.benchmark(group="e10")
def test_e10_degraded_reads_cost_a_reconstruction(benchmark, results_dir):
    out = benchmark.pedantic(run_degraded_read_tax, rounds=1, iterations=1)
    s = out["stats"]
    lat = s.degraded_read_latency
    slowdown = out["degraded"] / out["healthy"]
    rows = [
        f"{'healthy scan':<22s} {out['healthy'] * 1e3:9.1f} ms",
        f"{'degraded scan':<22s} {out['degraded'] * 1e3:9.1f} ms "
        f"({slowdown:4.2f}x)",
        f"{'reconstructions':<22s} {s.degraded_reads:>9d}",
        f"{'reconstructed bytes':<22s} {s.reconstructed_bytes:>9d}",
        "",
        "resilience layer counters:",
        *resilience_report(out["resilience"]),
    ]
    # the acceptance claim: degraded reads are served (equal bytes came
    # back — timed_scan would have raised otherwise) but cost more time
    assert s.degraded_reads > 0 and lat.count > 0
    assert out["degraded"] > out["healthy"]
    write_table(
        results_dir, "e10_degraded_reads",
        "E10: strided IS scan, healthy vs one dead device (parity)",
        rows,
    )


@pytest.mark.benchmark(group="e10")
def test_e10_rebuild_throttle_trades_mttr_for_bandwidth(
    benchmark, results_dir
):
    def run():
        return {t: run_throttled_rebuild(t) for t in THROTTLES}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"throttle={t:<4.1f} mttr={m['mttr'] * 1e3:9.1f} ms  "
        f"foreground={m['fg_mbps']:7.2f} MB/s  scans={m['scans']}"
        for t, m in out.items()
    ]
    flat_out, throttled = out[THROTTLES[0]], out[THROTTLES[-1]]
    # the trade must show in both directions: throttling lengthens the
    # repair and gives bandwidth back to the foreground scan
    assert throttled["mttr"] > flat_out["mttr"]
    assert throttled["fg_mbps"] > flat_out["fg_mbps"]
    write_table(
        results_dir, "e10_rebuild_throttle",
        "E10b: hot-spare rebuild throttle sweep (MTTR vs foreground rate)",
        rows,
    )
