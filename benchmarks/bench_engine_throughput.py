"""Engine throughput: wall-clock cost of the simulator itself.

Drives the six-organization perf workloads (``repro.perf.workloads``)
through four engine/submission modes, on two stacks:

* ``normal``      — legacy hooked engine loop (``fast=False``), a
  collecting :class:`~repro.trace.TraceRecorder`, per-block submission.
  This is the pre-fast-path configuration and the speedup baseline.
* ``fast``        — fast engine loop, :class:`~repro.trace.NullTraceRecorder`,
  per-block submission.
* ``normal_batch``/``fast_batch`` — the same two engines with
  extent-batched (list-I/O) submission (``batch_io=True``).

Stacks: ``bare`` (file system straight onto 4 devices) and ``full``
(I/O nodes + parity resilience + QoS — the macro configuration the
acceptance speedup is measured on).

Every mode pair that must be simulation-equivalent is checked with
:func:`repro.perf.workloads.digest`: fast == normal per submission mode,
on both stacks, for every organization. The fast paths buy wall-clock
only — never a different simulated outcome.

Output: a table in ``benchmarks/results/engine_throughput.txt`` and the
machine-readable ``benchmarks/results/BENCH_engine.json`` (schema in
``repro.perf.report``). Speedups are computed within each stack against
that stack's ``normal`` mode.

CLI::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick \
        [--json PATH] [--check --baseline PATH]

``--check`` prints non-blocking regression warnings (>2x events/sec
drop) against a previously committed baseline JSON. Quick mode
(``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the workload for CI.
"""

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import build_parallel_fs
from repro.perf import (
    ORGS,
    WorkloadConfig,
    bench_record,
    digest,
    load_bench_json,
    measure_run,
    regression_warnings,
    run_org,
    speedup_rows,
    write_bench_json,
)
from repro.qos import QoSConfig
from repro.resilience import ResilienceConfig
from repro.sim import Environment
from repro.trace import NullTraceRecorder, TraceRecorder

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

STACKS = ("bare", "full")
MODES = ("normal", "fast", "normal_batch", "fast_batch")
N_DEVICES = 4
IO_NODES = 2


def workload_config(quick: bool) -> WorkloadConfig:
    if quick:
        return WorkloadConfig(n_records=480)
    return WorkloadConfig(n_records=3840)


def build(mode: str, stack: str):
    """One (engine mode, stack) environment + file system."""
    fast = not mode.startswith("normal")
    env = Environment(fast=None if fast else False)
    recorder = NullTraceRecorder() if fast else TraceRecorder()
    kw = {}
    if stack == "full":
        kw = dict(
            io_nodes=IO_NODES,
            resilience=ResilienceConfig(protection="parity", spares=1),
            qos=QoSConfig(),
        )
    pfs = build_parallel_fs(
        env,
        N_DEVICES,
        recorder=recorder,
        batch_io=mode.endswith("batch"),
        **kw,
    )
    return env, pfs


def run_mode(mode: str, stack: str, cfg: WorkloadConfig, rounds: int = 1):
    """Run all six orgs in one mode; per-org samples + per-org digests.

    Each org is run ``rounds`` times and the minimum wall-clock sample is
    kept (standard noise rejection: the min is the run least disturbed by
    the host). Digests must agree across rounds — same program, same
    simulated outcome.
    """
    samples, digests = [], {}
    for org in ORGS:
        best = None
        for _ in range(rounds):
            env, pfs = build(mode, stack)
            f = run_org(env, pfs, org, cfg)
            sample = measure_run(env, label=org)
            d = digest(env, pfs, [f])
            if org in digests:
                assert digests[org] == d, (
                    f"nondeterministic rerun: {stack}/{mode} org {org}"
                )
            digests[org] = d
            if best is None or sample.wall_s < best.wall_s:
                best = sample
        samples.append(best)
    return samples, digests


def run_bench(quick: bool):
    """The full sweep: returns (record, table rows)."""
    cfg = workload_config(quick)
    rounds = 1 if quick else 3
    modes = {}
    digests = {}
    for stack in STACKS:
        for mode in MODES:
            name = f"{stack}/{mode}"
            modes[name], digests[name] = run_mode(mode, stack, cfg, rounds)

    # The fast loop must not change the simulation: equal digests per
    # (stack, submission mode, org) across engines.
    for stack in STACKS:
        for submission in ("", "_batch"):
            ref = digests[f"{stack}/normal{submission}"]
            got = digests[f"{stack}/fast{submission}"]
            for org in ORGS:
                assert got[org] == ref[org], (
                    f"fast engine changed the simulation: "
                    f"{stack}/fast{submission} org {org}"
                )

    record = bench_record(
        config={
            "workload": cfg.as_dict(),
            "orgs": list(ORGS),
            "n_devices": N_DEVICES,
            "io_nodes": IO_NODES,
            "stacks": list(STACKS),
            "macro": "full",
        },
        modes=modes,
        baseline_mode="full/normal",
        quick=quick,
    )
    # Speedups are only meaningful within a stack: recompute each mode
    # against its own stack's normal run.
    for name, blk in record["modes"].items():
        stack = name.split("/")[0]
        base = record["modes"][f"{stack}/normal"]["wall_s"]
        record["speedup"][name] = base / blk["wall_s"] if blk["wall_s"] else 0.0

    rows = speedup_rows(record)
    macro = record["speedup"]["full/fast_batch"]
    rows.append(f"macro speedup (full stack, fast+batch vs normal): {macro:.2f}x")
    return record, rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small workload for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_engine.json "
                         "(default: benchmarks/results/BENCH_engine.json)")
    ap.add_argument("--check", action="store_true",
                    help="print non-blocking regression warnings vs --baseline")
    ap.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline JSON for --check "
                         "(default: the committed results file)")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    default_json = results / "BENCH_engine.json"
    out_path = Path(args.json) if args.json else default_json
    baseline_path = Path(args.baseline) if args.baseline else default_json

    baseline = load_bench_json(baseline_path) if args.check else None

    record, rows = run_bench(args.quick)
    title = "Engine throughput: fast paths and extent-batched submission"
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results / "engine_throughput.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")

    if args.check:
        if baseline is None:
            print(f"no baseline at {baseline_path}; skipping regression check")
        else:
            warnings = regression_warnings(record, baseline)
            for w in warnings:
                print(w)
            if not warnings:
                print("regression check: events/sec within 2x of baseline")
    return 0


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_engine_throughput.py)


def test_engine_throughput(results_dir):
    record, rows = run_bench(quick=QUICK)
    title = "Engine throughput: fast paths and extent-batched submission"
    from conftest import write_table

    write_table(results_dir, "engine_throughput", title, rows)
    write_bench_json(results_dir / "BENCH_engine.json", record)
    assert record["speedup"]["full/fast_batch"] > 1.0


if __name__ == "__main__":
    raise SystemExit(main())
