"""Engine throughput: wall-clock cost of the simulator itself.

Drives the six-organization perf workloads (``repro.perf.workloads``)
through four engine/submission modes, on two stacks:

* ``normal``      — legacy hooked engine loop (``fast=False``), a
  collecting :class:`~repro.trace.TraceRecorder`, per-block submission.
  This is the pre-fast-path configuration and the speedup baseline.
* ``fast``        — fast engine loop, :class:`~repro.trace.NullTraceRecorder`,
  per-block submission.
* ``normal_batch``/``fast_batch`` — the same two engines with
  extent-batched (list-I/O) submission (``batch_io=True``).

Stacks: ``bare`` (file system straight onto 4 devices) and ``full``
(I/O nodes + parity resilience + QoS — the macro configuration the
acceptance speedup is measured on).

Every mode pair that must be simulation-equivalent is checked with
:func:`repro.perf.workloads.digest`: fast == normal per submission mode,
on both stacks, for every organization. The fast paths buy wall-clock
only — never a different simulated outcome.

Output: a table in ``benchmarks/results/engine_throughput.txt`` and the
machine-readable ``benchmarks/results/BENCH_engine.json`` (schema in
``repro.perf.report``). Speedups are computed within each stack against
that stack's ``normal`` mode.

CLI::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py --quick \
        [--json PATH] [--check --baseline PATH]

``--check`` prints non-blocking regression warnings (>2x events/sec
drop) against a previously committed baseline JSON. Quick mode
(``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the workload for CI.
"""

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import build_parallel_fs
from repro.baselines import build_sharded_fs
from repro.perf import (
    ORGS,
    WorkloadConfig,
    bench_record,
    digest,
    fs_digest,
    load_bench_json,
    measure_run,
    regression_warnings,
    run_org,
    speedup_rows,
    write_bench_json,
)
from repro.perf.workloads import _fill, seed_file
from repro.qos import QoSConfig
from repro.resilience import ResilienceConfig
from repro.sim import Environment
from repro.trace import NullTraceRecorder, TraceRecorder

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

STACKS = ("bare", "full")
MODES = ("normal", "fast", "normal_batch", "fast_batch")
N_DEVICES = 4
IO_NODES = 2


def workload_config(quick: bool) -> WorkloadConfig:
    if quick:
        return WorkloadConfig(n_records=480)
    return WorkloadConfig(n_records=3840)


def build(mode: str, stack: str):
    """One (engine mode, stack) environment + file system."""
    fast = not mode.startswith("normal")
    env = Environment(fast=None if fast else False)
    recorder = NullTraceRecorder() if fast else TraceRecorder()
    kw = {}
    if stack == "full":
        kw = dict(
            io_nodes=IO_NODES,
            resilience=ResilienceConfig(protection="parity", spares=1),
            qos=QoSConfig(),
        )
    pfs = build_parallel_fs(
        env,
        N_DEVICES,
        recorder=recorder,
        batch_io=mode.endswith("batch"),
        **kw,
    )
    return env, pfs


def run_mode(mode: str, stack: str, cfg: WorkloadConfig, rounds: int = 1):
    """Run all six orgs in one mode; per-org samples + per-org digests.

    Each org is run ``rounds`` times and the minimum wall-clock sample is
    kept (standard noise rejection: the min is the run least disturbed by
    the host). Digests must agree across rounds — same program, same
    simulated outcome.
    """
    samples, digests = [], {}
    for org in ORGS:
        best = None
        for _ in range(rounds):
            env, pfs = build(mode, stack)
            f = run_org(env, pfs, org, cfg)
            sample = measure_run(env, label=org)
            d = digest(env, pfs, [f])
            if org in digests:
                assert digests[org] == d, (
                    f"nondeterministic rerun: {stack}/{mode} org {org}"
                )
            digests[org] = d
            if best is None or sample.wall_s < best.wall_s:
                best = sample
        samples.append(best)
    return samples, digests


def run_bench(quick: bool):
    """The full sweep: returns (record, table rows)."""
    cfg = workload_config(quick)
    rounds = 1 if quick else 3
    modes = {}
    digests = {}
    for stack in STACKS:
        for mode in MODES:
            name = f"{stack}/{mode}"
            modes[name], digests[name] = run_mode(mode, stack, cfg, rounds)

    # The fast loop must not change the simulation: equal digests per
    # (stack, submission mode, org) across engines.
    for stack in STACKS:
        for submission in ("", "_batch"):
            ref = digests[f"{stack}/normal{submission}"]
            got = digests[f"{stack}/fast{submission}"]
            for org in ORGS:
                assert got[org] == ref[org], (
                    f"fast engine changed the simulation: "
                    f"{stack}/fast{submission} org {org}"
                )

    record = bench_record(
        config={
            "workload": cfg.as_dict(),
            "orgs": list(ORGS),
            "n_devices": N_DEVICES,
            "io_nodes": IO_NODES,
            "stacks": list(STACKS),
            "macro": "full",
        },
        modes=modes,
        baseline_mode="full/normal",
        quick=quick,
    )
    # Speedups are only meaningful within a stack: recompute each mode
    # against its own stack's normal run.
    for name, blk in record["modes"].items():
        stack = name.split("/")[0]
        base = record["modes"][f"{stack}/normal"]["wall_s"]
        record["speedup"][name] = base / blk["wall_s"] if blk["wall_s"] else 0.0

    rows = speedup_rows(record)
    macro = record["speedup"]["full/fast_batch"]
    rows.append(f"macro speedup (full stack, fast+batch vs normal): {macro:.2f}x")
    return record, rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small workload for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_engine.json "
                         "(default: benchmarks/results/BENCH_engine.json)")
    ap.add_argument("--check", action="store_true",
                    help="print non-blocking regression warnings vs --baseline")
    ap.add_argument("--baseline", default=None, metavar="PATH",
                    help="baseline JSON for --check "
                         "(default: the committed results file)")
    ap.add_argument("--scale", action="store_true",
                    help="run only the client-count scaling curve "
                         "(sharded vs single-heap) and write "
                         "BENCH_engine_scale.json")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)

    if args.scale:
        record, rows = run_scale_bench(args.quick)
        title = "Engine scaling: sharded vs single-heap client sweeps"
        text = "\n".join([title, "=" * len(title), *rows, ""])
        (results / "engine_scale.txt").write_text(text)
        print(text)
        out_path = (
            Path(args.json) if args.json else results / "BENCH_engine_scale.json"
        )
        write_bench_json(out_path, record)
        print(f"wrote {out_path}")
        return 0

    default_json = results / "BENCH_engine.json"
    out_path = Path(args.json) if args.json else default_json
    baseline_path = Path(args.baseline) if args.baseline else default_json

    baseline = load_bench_json(baseline_path) if args.check else None

    record, rows = run_bench(args.quick)
    title = "Engine throughput: fast paths and extent-batched submission"
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results / "engine_throughput.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")

    if args.check:
        if baseline is None:
            print(f"no baseline at {baseline_path}; skipping regression check")
        else:
            warnings = regression_warnings(record, baseline)
            for w in warnings:
                print(w)
            if not warnings:
                print("regression check: events/sec within 2x of baseline")
    return 0


# -- client-count scaling: sharded vs single-heap -------------------------
#
# The second half of the benchmark: how does the engine hold up as the
# *client count* grows? Each client is a think-sleep loop around one
# record's worth of read + write on a PS file — a light, timer-dominated
# workload whose schedule population scales with the client count (the
# shape the calendar queue and the sharded window loop exist for). Every
# size runs twice: once as SCALE_SHARDS independent file systems under
# ShardedSimulation's conservative windows, once with the identical
# topology on a single heap environment — and the per-file-system
# outcome digests must match exactly (sharding restructures scheduling,
# never results).

SCALE_SHARDS = 4
SCALE_DEVICES = 2  # per shard
SCALE_CLIENTS = (64, 512, 4096, 32768)
SCALE_CLIENTS_QUICK = (64, 512)
SCALE_ROUNDS = 2
RECORD_SIZE = 32


def _think(cid: int, r: int) -> float:
    """Deterministic pseudo-random think time in [1ms, 51ms)."""
    return 0.001 + ((cid * 2654435761 + r * 40503) & 0xFFFF) % 50000 * 1e-6


def _scale_file(pfs, n_clients: int):
    """One PS file with a single record per client."""
    f = pfs.create(
        "scale",
        "PS",
        n_records=n_clients,
        record_size=RECORD_SIZE,
        records_per_block=1,
        n_processes=n_clients,
    )
    seed_file(f)
    return f


def _spawn_scale_clients(env, file, base_cid: int, n_clients: int):
    """``n_clients`` think/read/write loops; global ids for determinism."""

    def client(p, cid):
        for r in range(SCALE_ROUNDS):
            yield env.sleep(_think(cid, r))
            h = file.internal_view(p)
            while not h.eof:
                yield from h.read_next(1)
            yield env.sleep(_think(cid, r + 7))
            w = file.internal_view(p)
            yield from w.write_next(_fill(1, RECORD_SIZE, cid * 131 + r))

    for p in range(n_clients):
        env.process(client(p, base_cid + p))


def _run_scale_single(n_clients: int):
    """All shards' workloads on one heap environment."""
    per_shard = n_clients // SCALE_SHARDS
    env = Environment()
    systems, files = [], []
    for i in range(SCALE_SHARDS):
        pfs = build_parallel_fs(env, SCALE_DEVICES, recorder=NullTraceRecorder())
        f = _scale_file(pfs, per_shard)
        _spawn_scale_clients(env, f, i * per_shard, per_shard)
        systems.append(pfs)
        files.append(f)
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    digests = [fs_digest(systems[i], [files[i]]) for i in range(SCALE_SHARDS)]
    return {
        "wall_s": wall,
        "events": env.steps,
        "events_per_sec": env.steps / wall if wall > 0 else 0.0,
    }, digests


def _run_scale_sharded(n_clients: int):
    """The same topology, one environment per shard, windowed sync."""
    per_shard = n_clients // SCALE_SHARDS
    spfs = build_sharded_fs(SCALE_SHARDS, SCALE_DEVICES, recorder=NullTraceRecorder())
    files = []
    for shard in spfs.shards:
        f = _scale_file(spfs[shard.index], per_shard)
        _spawn_scale_clients(
            shard.env, f, shard.index * per_shard, per_shard
        )
        files.append(f)
    t0 = time.perf_counter()
    spfs.run()
    wall = time.perf_counter() - t0
    sim = spfs.sim
    digests = [fs_digest(spfs[i], [files[i]]) for i in range(SCALE_SHARDS)]
    return {
        "wall_s": wall,
        "events": sim.steps,
        "events_per_sec": sim.steps / wall if wall > 0 else 0.0,
        "windows": sim.windows,
        "lookahead": sim.lookahead,
    }, digests


def run_scale_bench(quick: bool):
    """The scaling curve: returns (record, table rows)."""
    sizes = SCALE_CLIENTS_QUICK if quick else SCALE_CLIENTS
    rows, out = [], []
    for n_clients in sizes:
        single, sd = _run_scale_single(n_clients)
        sharded, hd = _run_scale_sharded(n_clients)
        match = sd == hd
        assert match, (
            f"sharded run diverged from single-heap at {n_clients} clients"
        )
        out.append(
            {
                "clients": n_clients,
                "shards": SCALE_SHARDS,
                "single": single,
                "sharded": sharded,
                "digests_match": match,
            }
        )
        rows.append(
            f"clients={n_clients:>6d}  "
            f"single {single['events_per_sec']:>10,.0f} ev/s  "
            f"sharded {sharded['events_per_sec']:>10,.0f} ev/s "
            f"({sharded['windows']} windows)  digests "
            f"{'identical' if match else 'DIVERGED'}"
        )
    record = {
        "bench": "engine_scale",
        "quick": quick,
        "config": {
            "shards": SCALE_SHARDS,
            "devices_per_shard": SCALE_DEVICES,
            "rounds": SCALE_ROUNDS,
            "record_size": RECORD_SIZE,
            "client_counts": list(sizes),
        },
        "rows": out,
    }
    return record, rows


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_engine_throughput.py)


def test_engine_throughput(results_dir):
    record, rows = run_bench(quick=QUICK)
    title = "Engine throughput: fast paths and extent-batched submission"
    from conftest import write_table

    write_table(results_dir, "engine_throughput", title, rows)
    write_bench_json(results_dir / "BENCH_engine.json", record)
    assert record["speedup"]["full/fast_batch"] > 1.0


def test_engine_scale(results_dir):
    record, rows = run_scale_bench(quick=QUICK)
    title = "Engine scaling: sharded vs single-heap client sweeps"
    from conftest import write_table

    write_table(results_dir, "engine_scale", title, rows)
    write_bench_json(results_dir / "BENCH_engine_scale.json", record)
    assert all(row["digests_match"] for row in record["rows"])


if __name__ == "__main__":
    raise SystemExit(main())
