"""FIG1 — regenerate Figure 1: internal organizations of sequential
parallel files.

The paper's only figure shows, for a file of blocks and three processes,
which process accesses which block under each sequential organization
(S, PS, IS, SS). Here the panels are produced from *measured traces* of
the implementation, not drawn by hand.
"""

import numpy as np
import pytest

from repro import Environment, SSSession, TraceRecorder, build_parallel_fs
from repro.trace import render_figure1_panel, render_timeline

from conftest import write_table

N_BLOCKS = 12
RPB = 2
N_RECORDS = N_BLOCKS * RPB
N_PROCESSES = 3


def _make(env, rec, org):
    pfs = build_parallel_fs(env, 3, recorder=rec)
    f = pfs.create(
        f"fig1_{org}", org, n_records=N_RECORDS, record_size=8,
        records_per_block=RPB, n_processes=N_PROCESSES,
    )

    def setup():
        yield from f.global_view().write(np.zeros((N_RECORDS, 8), dtype=np.uint8))

    env.run(env.process(setup()))
    rec.clear()
    return f


def run_figure1():
    panels = {}

    # (a) Sequential: one process reads the whole file
    env, rec = Environment(), TraceRecorder()
    f = _make(env, rec, "S")

    def s_reader():
        h = f.internal_view(0)
        while not h.eof:
            yield from h.read_next(RPB)

    env.run(env.process(s_reader()))
    panels["a"] = ("Sequential.", rec.blocks_by_process(f.name))

    # (b) Partitioned: contiguous blocks per process
    env, rec = Environment(), TraceRecorder()
    f = _make(env, rec, "PS")

    def part_reader(q):
        h = f.internal_view(q)
        while h.blocks_remaining:
            yield from h.read_next_block()

    def driver():
        yield env.all_of([env.process(part_reader(q)) for q in range(3)])

    env.run(env.process(driver()))
    panels["b"] = ("Partitioned.", rec.blocks_by_process(f.name))

    # (c) Interleaved: stride-P blocks per process
    env, rec = Environment(), TraceRecorder()
    f = _make(env, rec, "IS")

    def part_reader_c(q):
        h = f.internal_view(q)
        while h.blocks_remaining:
            yield from h.read_next_block()

    def driver_c():
        yield env.all_of([env.process(part_reader_c(q)) for q in range(3)])

    env.run(env.process(driver_c()))
    panels["c"] = ("Interleaved.", rec.blocks_by_process(f.name))

    # (d) Self-scheduled: access order decided by request order
    env, rec = Environment(), TraceRecorder()
    f = _make(env, rec, "SS")
    session = SSSession(f)
    order = []

    def ss_reader(q):
        h = session.handle(q)
        while True:
            item = yield from h.read_next()
            if item is None:
                return
            order.append((item[0], q))
            yield env.timeout(0.001 * (q + 1))  # uneven rates, as in real runs

    def driver_d():
        yield env.all_of([env.process(ss_reader(q)) for q in range(3)])

    env.run(env.process(driver_d()))
    session.validate()
    panels["d"] = ("Self-scheduled.", rec.blocks_by_process(f.name))
    return panels, order


@pytest.mark.benchmark(group="fig1")
def test_fig1_access_patterns(benchmark, results_dir):
    panels, ss_order = benchmark.pedantic(run_figure1, rounds=1, iterations=1)

    # -- assertions: the Figure 1 semantics ---------------------------------
    a_desc, a = panels["a"]
    assert a == {0: list(range(N_BLOCKS))}

    b_desc, b = panels["b"]
    assert b == {0: [0, 1, 2, 3], 1: [4, 5, 6, 7], 2: [8, 9, 10, 11]}

    c_desc, c = panels["c"]
    assert c == {0: [0, 3, 6, 9], 1: [1, 4, 7, 10], 2: [2, 5, 8, 11]}

    d_desc, d = panels["d"]
    covered = sorted(blk for blocks in d.values() for blk in blocks)
    assert covered == list(range(N_BLOCKS))          # no skip, no repeat
    assert len(d) == N_PROCESSES                     # every process served

    # -- render the figure ----------------------------------------------------
    rows = []
    for label in "abcd":
        desc, mapping = panels[label]
        rows.append(render_figure1_panel(label, desc, mapping, N_BLOCKS))
        rows.append("")
    rows.append(render_timeline(ss_order))
    write_table(
        results_dir, "fig1",
        "Figure 1: internal organizations of sequential parallel files "
        "(measured traces, 3 processes)",
        rows,
    )
