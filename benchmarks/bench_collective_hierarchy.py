"""X2 (extension) — the four-rung access-optimization hierarchy.

Thakur et al.'s MPI-IO ladder, reproduced on the strided IS workload:
each of ``P`` processes wants every ``P``-th record of a shared file —
the access pattern the paper's interleaved-sequential organization
creates. Four ways to run the same read, from naive to coordinated:

1. **per-segment**   — one request per contiguous piece, sequentially;
2. **list I/O**      — all pieces in one batched submission
                       (``read_view`` over the partition's indexed view,
                       ``batch_io`` merging device-contiguous segments);
3. **data sieving**  — one covering extent per process, scatter in
                       memory (``read_view(sieve=True)``);
4. **collective**    — two-phase: contiguous file domains + in-memory
                       exchange (``CollectiveIO.read_all``).

Each rung must be at least as fast (simulated) as the one above it —
the hierarchy every MPI-IO implementation's defaults are built on.

A second table pins down write correctness across all six organizations:
a collective ``write_all`` must leave media bytes *identical* to the
same records written independently by each process (sha256 of the raw
device extents). SS/GDA have no static ownership, so they run under
``allow_dynamic=True`` with an explicit balanced index split.

Output: ``benchmarks/results/collective_hierarchy.txt`` and the
machine-readable ``benchmarks/results/BENCH_collective.json``.

CLI::

    PYTHONPATH=src python benchmarks/bench_collective_hierarchy.py \
        [--quick] [--json PATH]

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the file for
CI smoke runs.
"""

import argparse
import hashlib
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro import Environment, build_parallel_fs
from repro.collective import CollectiveIO
from repro.core.convert import contiguous_runs
from repro.datatype import view_of_map
from repro.devices import FAST_1989, DiskGeometry
from repro.perf import ORGS, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

RECORD = 256
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
N_DEVICES = 4

RUNGS = ("per_segment", "list_io", "data_sieving", "collective")


def params(quick: bool):
    if quick:
        return dict(n_records=512, p=4)
    return dict(n_records=4096, p=4)


def setup_file(env, org, n_records, p, batch=False, **create_kw):
    pfs = build_parallel_fs(
        env, N_DEVICES, timing=FAST_1989, geometry=GEO, batch_io=batch
    )
    f = pfs.create(
        "x2", org, n_records=n_records, record_size=RECORD,
        records_per_block=1, n_processes=p, layout="striped",
        stripe_unit=65536, **create_kw,
    )

    def fill():
        raw = (np.arange(n_records * RECORD, dtype=np.uint64) % 251)
        yield from f.global_view().write(
            raw.astype(np.uint8).reshape(n_records, RECORD)
        )

    env.run(env.process(fill()))
    return f


# -- the four read rungs ------------------------------------------------------


def run_per_segment(n_records, p):
    env = Environment()
    f = setup_file(env, "IS", n_records, p)
    start = env.now

    def worker(q):
        for run in contiguous_runs(f.map.records_of(q)):
            yield f.read_records(run.start, run.count)

    env.run(env.all_of([env.process(worker(q)) for q in range(p)]))
    return env.now - start


def run_list_io(n_records, p):
    env = Environment()
    f = setup_file(env, "IS", n_records, p, batch=True)
    start = env.now

    def worker(q):
        yield f.read_view(view_of_map(f.map, q))

    env.run(env.all_of([env.process(worker(q)) for q in range(p)]))
    return env.now - start


def run_data_sieving(n_records, p):
    env = Environment()
    f = setup_file(env, "IS", n_records, p, batch=True)
    start = env.now

    def worker(q):
        # the strided partition spans ~the whole file: allow a covering
        # extent p times the payload, big enough window for one read
        yield f.read_view(
            view_of_map(f.map, q),
            sieve=True, sieve_factor=p * 1.25, sieve_window=1 << 26,
        )

    env.run(env.all_of([env.process(worker(q)) for q in range(p)]))
    return env.now - start


def run_collective(n_records, p):
    env = Environment()
    f = setup_file(env, "IS", n_records, p, batch=True)
    coll = CollectiveIO(f)
    start = env.now

    def driver():
        yield from coll.read_all()

    env.run(env.process(driver()))
    return env.now - start


# -- six-organization write identity -----------------------------------------


def media_digest(f):
    raw = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
    return hashlib.sha256(np.ascontiguousarray(raw).tobytes()).hexdigest()


def org_indices(f, org, p):
    """Per-process record ownership for the write-identity check."""
    if f.map.is_static:
        return {q: f.map.records_of(q) for q in range(p)}
    # dynamic orgs: a balanced explicit split
    n = f.n_records
    bounds = np.linspace(0, n, p + 1).astype(np.int64)
    return {q: np.arange(bounds[q], bounds[q + 1]) for q in range(p)}


def check_write_identity(org, n_records, p):
    """Collective write_all vs per-process independent writes: same bytes."""
    data = (
        np.random.default_rng(42).integers(0, 251, (n_records, RECORD))
        .astype(np.uint8)
    )
    def build(env):
        return setup_file(env, org, n_records, p)

    env_c = Environment()
    f_c = build(env_c)
    idx = org_indices(f_c, org, p)
    coll = CollectiveIO(f_c, allow_dynamic=not f_c.map.is_static)
    per_process = {q: data[idx[q]] for q in range(p)}

    def cproc():
        yield from coll.write_all(
            per_process, None if f_c.map.is_static else idx
        )

    env_c.run(env_c.process(cproc()))

    env_i = Environment()
    f_i = build(env_i)

    def writer(q):
        rows, pos = data[idx[q]], 0
        for run in contiguous_runs(idx[q]):
            yield f_i.write_records(run.start, rows[pos : pos + run.count])
            pos += run.count

    env_i.run(env_i.all_of([env_i.process(writer(q)) for q in range(p)]))
    return media_digest(f_c) == media_digest(f_i)


# -- driver -------------------------------------------------------------------


def run_bench(quick: bool):
    cfg = params(quick)
    n, p = cfg["n_records"], cfg["p"]
    times = {
        "per_segment": run_per_segment(n, p),
        "list_io": run_list_io(n, p),
        "data_sieving": run_data_sieving(n, p),
        "collective": run_collective(n, p),
    }
    # each rung at least as fast as the one above (tiny numeric slack)
    hierarchy_ok = (
        times["collective"] <= times["data_sieving"] * 1.001
        and times["data_sieving"] <= times["list_io"] * 1.001
        and times["list_io"] <= times["per_segment"] * 1.001
    )
    write_identical = {org: check_write_identity(org, n, p) for org in ORGS}

    record = {
        "bench": "collective_hierarchy",
        "quick": quick,
        "config": {
            "n_records": n,
            "record_size": RECORD,
            "n_processes": p,
            "n_devices": N_DEVICES,
            "org": "IS",
            "records_per_block": 1,
            "layout": "striped",
        },
        "rungs": {name: {"sim_s": times[name]} for name in RUNGS},
        "hierarchy_ok": hierarchy_ok,
        "write_identical": write_identical,
    }

    rows = [
        f"{name:<14s} elapsed={times[name] * 1e3:9.1f} ms" for name in RUNGS
    ]
    rows.append(f"hierarchy (collective <= sieving <= list <= segment): "
                f"{'OK' if hierarchy_ok else 'VIOLATED'}")
    rows.append(
        "write identity (collective == independent, media sha256): "
        + ", ".join(
            f"{org}={'OK' if ok else 'FAIL'}"
            for org, ok in write_identical.items()
        )
    )
    return record, rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small file for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_collective.json "
                         "(default: benchmarks/results/BENCH_collective.json)")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    out_path = (
        Path(args.json) if args.json else results / "BENCH_collective.json"
    )

    record, rows = run_bench(args.quick)
    title = ("X2 (extension): access-optimization hierarchy, IS strided "
             f"workload, {record['config']['n_processes']} processes")
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results / "collective_hierarchy.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")

    ok = record["hierarchy_ok"] and all(record["write_identical"].values())
    return 0 if ok else 1


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_collective_hierarchy.py)


def test_x2_collective_hierarchy(results_dir):
    record, rows = run_bench(quick=QUICK)
    from conftest import write_table

    title = ("X2 (extension): access-optimization hierarchy, IS strided "
             f"workload, {record['config']['n_processes']} processes")
    write_table(results_dir, "collective_hierarchy", title, rows)
    write_bench_json(results_dir / "BENCH_collective.json", record)
    assert record["hierarchy_ok"]
    assert all(record["write_identical"].values())


if __name__ == "__main__":
    raise SystemExit(main())
