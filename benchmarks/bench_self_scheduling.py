"""E7 — §4: "Some care is needed in the self-scheduled version to assure
proper synchronization without unduly serializing access. The use of
predictable length records reduces the problem, since file pointers can
be adjusted and buffer areas reserved early in an I/O call, thereby
allowing the next call from another process to proceed before the actual
data transfer from the first call has completed."

SS scan over a striped file, P in {1, 2, 4, 8} workers, with the early
pointer-advance optimization on and off. Expected shape: without it,
transfers serialize inside the critical section (no speedup beyond 1
process); with it, speedup approaches the striped-device limit.

Plus the load-balance side: self-scheduling vs a static PS partition under
skewed task costs.
"""

import numpy as np
import pytest

from repro import Environment, SSSession, build_parallel_fs
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 4096
RPB = 4                      # 16 KB blocks (one "work unit" each)
N_RECORDS = 128 * RPB        # 128 blocks
N_DEVICES = 8
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=256)


def make_ss_file(env, pfs):
    f = pfs.create(
        "queue", "SS", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, n_processes=8, stripe_unit=16384,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    return f


def run_ss(n_workers: int, early: bool, compute=lambda b: 0.0):
    env = Environment()
    pfs = build_parallel_fs(env, N_DEVICES, geometry=GEO)
    f = make_ss_file(env, pfs)
    session = SSSession(f, early_advance=early, pointer_cost=1e-4)
    start = env.now
    stats = {q: 0.0 for q in range(n_workers)}

    def worker(q):
        h = session.handle(q)
        while True:
            item = yield from h.read_next()
            if item is None:
                return
            cost = compute(item[0])
            stats[q] += cost
            if cost > 0:
                yield env.timeout(cost)

    def driver():
        yield env.all_of(
            [env.process(worker(q)) for q in range(n_workers)]
        )

    env.run(env.process(driver()))
    session.validate()
    return env.now - start, stats


def run_static_ps(n_workers: int, compute):
    """Static contiguous partition of the same work (no self-scheduling)."""
    env = Environment()
    pfs = build_parallel_fs(env, N_DEVICES, geometry=GEO)
    f = pfs.create(
        "static", "PS", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, n_processes=n_workers, layout="striped",
        stripe_unit=16384,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    start = env.now

    def worker(q):
        h = f.internal_view(q)
        while h.blocks_remaining:
            blk = yield from h.read_next_block()
            cost = compute(blk[0])
            if cost > 0:
                yield env.timeout(cost)

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(n_workers)])

    env.run(env.process(driver()))
    return env.now - start


def skewed_cost(block: int) -> float:
    """A few expensive tasks clustered at the front — the adversarial
    case for static contiguous partitioning."""
    return 0.25 if block < 16 else 0.005


def run_experiment():
    scaling = {
        (p, early): run_ss(p, early)[0]
        for p in (1, 2, 4, 8)
        for early in (True, False)
    }
    balance = {
        "self-scheduled": run_ss(4, True, compute=skewed_cost)[0],
        "static PS": run_static_ps(4, skewed_cost),
    }
    return scaling, balance


@pytest.mark.benchmark(group="e7")
def test_e7_early_pointer_advance(benchmark, results_dir):
    scaling, balance = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for p in (1, 2, 4, 8):
        t_on = scaling[(p, True)]
        t_off = scaling[(p, False)]
        rows.append(
            f"P={p:<3d} early-advance ON={t_on * 1e3:9.1f} ms  "
            f"OFF={t_off * 1e3:9.1f} ms  "
            f"speedup ON={scaling[(1, True)] / t_on:5.2f}x  "
            f"OFF={scaling[(1, False)] / t_off:5.2f}x"
        )
    rows.append("-- load balance under skewed task costs (4 workers) --")
    for k, t in balance.items():
        rows.append(f"{k:<16s} elapsed={t * 1e3:9.1f} ms")

    # with the optimization, SS scales
    assert scaling[(1, True)] / scaling[(4, True)] > 3.0
    assert scaling[(1, True)] / scaling[(8, True)] > 5.0
    # without it, transfers serialize: little to no speedup
    assert scaling[(1, False)] / scaling[(8, False)] < 1.3
    # at any P, ON <= OFF
    for p in (2, 4, 8):
        assert scaling[(p, True)] < scaling[(p, False)]
    # self-scheduling beats static contiguous partitioning under skew
    assert balance["self-scheduled"] < balance["static PS"] * 0.75

    write_table(
        results_dir, "e7_self_scheduling",
        f"E7: self-scheduled scan of {N_RECORDS // RPB} blocks, "
        f"{N_DEVICES} drives (striped)",
        rows,
    )
