"""E11 — multi-tenant QoS: weighted-fair scheduling bounds tail latency.

A greedy batch tenant saturates one device with large reads while a light
interactive tenant issues small reads. Under plain FIFO the interactive
requests queue behind the whole batch backlog, so their p95 latency grows
with the greedy tenant's queue depth. Under WFQ (weights 1:1 here — the
point is isolation, not privilege) each tenant owns a virtual-time lane:
the interactive p95 is bounded by its own arrival rate, not by the
greedy tenant's backlog. The table reports per-op latency percentiles for
both schedulers plus the per-tenant QoS accounting.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the horizon for CI smoke
runs.
"""

import os

import pytest

from repro import Environment, QoSConfig, build_parallel_fs
from repro.devices import DiskGeometry
from repro.sim import PercentileTally
from repro.trace import qos_report

from conftest import write_table

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

GREEDY_WORKERS = 4
GREEDY_NBYTES = 8192
LIGHT_NBYTES = 1024
THINK = 0.004  # interactive think time between small reads
HORIZON = 1.0 if QUICK else 3.0
GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)


def run_mix(scheduler):
    """One greedy + one interactive tenant on one device; returns stats."""
    env = Environment()
    pfs = build_parallel_fs(env, 1, geometry=GEO,
                            qos=QoSConfig(scheduler=scheduler))
    mgr = pfs.qos
    greedy = mgr.tenant("greedy")
    light = mgr.tenant("light")
    dev = pfs.volume.devices[0]
    lat = PercentileTally()

    def batch_worker(i):
        while True:
            yield dev.read(i * GREEDY_NBYTES, GREEDY_NBYTES)

    def interactive():
        while True:
            t0 = env.now
            yield dev.read(0, LIGHT_NBYTES)
            lat.observe(env.now - t0)
            yield env.timeout(THINK)

    for i in range(GREEDY_WORKERS):
        mgr.spawn(greedy, batch_worker(i), name=f"batch-{i}")
    mgr.spawn(light, interactive(), name="interactive")
    env.run(until=HORIZON)
    return {"lat": lat, "mgr": mgr, "greedy": greedy, "light": light}


@pytest.mark.benchmark(group="e11")
def test_e11_wfq_bounds_the_interactive_tail(benchmark, results_dir):
    def run():
        return {mode: run_mix(mode) for mode in ("fifo", "wfq")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for mode, r in out.items():
        lat = r["lat"]
        rows.append(
            f"{mode:<5s} interactive ops={lat.count:>4d}  "
            f"p50={lat.percentile(50) * 1e3:7.2f} ms  "
            f"p95={lat.percentile(95) * 1e3:7.2f} ms  "
            f"max={lat.max * 1e3:7.2f} ms"
        )
    rows.append("")
    rows.append("per-tenant accounting under wfq:")
    rows.extend(qos_report(out["wfq"]["mgr"]))

    fifo, wfq = out["fifo"]["lat"], out["wfq"]["lat"]
    assert fifo.count >= 4 and wfq.count >= 4
    # the acceptance claim: WFQ isolates the light tenant from the greedy
    # backlog — its p95 drops strictly below the FIFO p95
    assert wfq.percentile(95) < fifo.percentile(95)
    # and fairness is not starvation: the greedy tenant keeps flowing
    assert out["wfq"]["greedy"].serviced_bytes > 0
    write_table(
        results_dir, "e11_qos_isolation",
        "E11: interactive latency vs a greedy batch tenant, FIFO vs WFQ",
        rows,
    )
