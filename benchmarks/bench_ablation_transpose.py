"""Ablation A4 — out-of-core transpose: the buffer-space knob end to end.

The §4 remark that performance hinges on "the buffer space available"
applied to the classic out-of-core kernel: transposing a matrix too big
to hold in memory. The tiled algorithm's buffer (tile x n elements) is
swept; the naive column-gather algorithm is the degenerate 1-row buffer.

Expected shape: elapsed time drops roughly with 1/tile (transfer count
is O((n/tile)^2) tiles, each costing ~2 reads + 1 write), saturating when
per-transfer overhead stops dominating.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.workloads import create_matrix_file, transpose_naive, transpose_tiled

from conftest import write_table

N = 32
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=256)


def run(algo):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    src = create_matrix_file(pfs, "A", N)
    dst = create_matrix_file(pfs, "At", N)
    A = np.random.default_rng(0).random((N, N))

    def fill():
        yield from src.global_view().write(A)

    env.run(env.process(fill()))
    start = env.now

    def proc():
        yield from algo(src, dst)

    env.run(env.process(proc()))

    # verify while we are here: correctness is part of the ablation
    def check():
        v = dst.global_view()
        v.seek(0)
        out = yield from v.read()
        return out.reshape(N, N)

    assert np.array_equal(env.run(env.process(check())), A.T)
    return env.now - start


def run_experiment():
    out = {"naive (1-row buffer)": run(transpose_naive)}
    for tile in (2, 4, 8, 16, 32):
        out[f"tiled tile={tile}"] = run(
            lambda s, d, t=tile: transpose_tiled(s, d, t)
        )
    return out


@pytest.mark.benchmark(group="ablation")
def test_a4_transpose_buffer_sweep(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [f"{k:<24s} elapsed={t * 1e3:9.1f} ms" for k, t in out.items()]

    naive = out["naive (1-row buffer)"]
    # tiling wins dramatically over the naive column gather
    assert out["tiled tile=4"] < naive * 0.3
    # monotone improvement with buffer size (small tolerance)
    seq = [out[f"tiled tile={t}"] for t in (2, 4, 8, 16, 32)]
    assert all(a >= b * 0.98 for a, b in zip(seq, seq[1:]))
    # with the whole matrix buffered, I/O collapses to a few big sweeps
    assert naive / out["tiled tile=32"] > 10

    write_table(
        results_dir, "a4_transpose",
        f"A4 (ablation): out-of-core transpose of a {N}x{N} float64 matrix, "
        "4 drives",
        rows,
    )
