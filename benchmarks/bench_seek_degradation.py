"""E3 — §4: "For systems with many processors, it may not be practical to
allocate a separate storage device for each processor. In this case,
blocks belonging to several processes would be allocated to each device.
Seek times are likely to cause some performance degradation as the drive
services requests from different processes. Work is needed here to
determine the best ways to allocate space on the disks to minimize this
problem."

Fixed P=16 processes scanning a PS file over D in {1, 2, 4, 8, 16}
devices. Two placements of co-resident partitions are compared:

* ``clustered`` — each process's partition is contiguous on its device
  (the §4 suggestion): the arm ping-pongs between the partitions of the
  processes sharing a drive;
* ``striped`` — the same file striped finely (no partition locality):
  every process's request can hit every drive.

Plus an arm-scheduling ablation (FCFS vs SCAN) for the worst case.
Expected shape: throughput degrades as P/D grows; seeks per device grow
as more processes share a drive; SCAN recovers part of the loss.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.trace import throughput_mb_s

from conftest import write_table

P = 16
RECORD = 4096
N_RECORDS = 64 * P
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=1024)


def run_scan(n_devices: int, layout: str, scheduling: str = "fcfs",
             jitter: bool = False):
    env = Environment()
    pfs = build_parallel_fs(env, n_devices, geometry=GEO, scheduling=scheduling)
    f = pfs.create(
        "shared", "PS", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=8, n_processes=P, layout=layout,
        stripe_unit=4096, n_devices=n_devices,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    for d in pfs.volume.devices:
        d.disk.total_seeks = 0
        d.disk.total_seek_distance = 0
        d.disk.reset_position(0)
    start = env.now
    from repro.sim import RngStreams

    streams = RngStreams(7)

    def worker(q):
        h = f.internal_view(q)
        while not h.eof:
            yield from h.read_next(4)
            if jitter:
                # uneven per-process compute decorrelates arrival order,
                # which is when arm scheduling starts to matter
                yield env.timeout(streams.uniform(f"think{q}", 0.0, 0.01))

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(P)])

    env.run(env.process(driver()))
    elapsed = env.now - start
    seeks = sum(d.disk.total_seeks for d in pfs.volume.devices)
    seek_cyls = sum(d.disk.total_seek_distance for d in pfs.volume.devices)
    return elapsed, seeks, seek_cyls


def run_experiment():
    out = {}
    for d in (1, 2, 4, 8, 16):
        out[("clustered", d)] = run_scan(d, "clustered")
    out[("striped", 1)] = run_scan(1, "striped")
    return out


def run_random_access(scheduling: str):
    """The arm-scheduling ablation needs *random* arrivals: 16 clients
    doing uniform random record reads on one shared drive."""
    env = Environment()
    pfs = build_parallel_fs(env, 1, geometry=GEO, scheduling=scheduling)
    f = pfs.create(
        "rand", "GDA", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=8, n_processes=P, layout="striped",
        stripe_unit=4096,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    dev = pfs.volume.devices[0]
    dev.disk.total_seeks = 0
    dev.disk.total_seek_distance = 0
    dev.disk.reset_position(0)
    start = env.now
    from repro.workloads import uniform_pattern

    targets = uniform_pattern(N_RECORDS, P * 16, seed=5)

    def client(q):
        h = f.internal_view(q)
        for t in range(q, len(targets), P):
            yield from h.read_record(int(targets[t]))

    def driver():
        yield env.all_of([env.process(client(q)) for q in range(P)])

    env.run(env.process(driver()))
    return env.now - start, dev.disk.total_seeks, dev.disk.total_seek_distance


@pytest.mark.benchmark(group="e3")
def test_e3_seek_degradation(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    nbytes = N_RECORDS * RECORD
    rows = []
    rates = {}
    for (layout, d), (elapsed, seeks, cyls) in out.items():
        rates[(layout, d)] = throughput_mb_s(nbytes, elapsed)
        rows.append(
            f"{layout:<10s} D={d:<3d} P/D={P // d if layout == 'clustered' else P:<3d} "
            f"elapsed={elapsed * 1e3:9.1f} ms  rate={rates[(layout, d)]:7.2f} MB/s  "
            f"seeks={seeks:6d}  seek_cylinders={cyls:8d}"
        )

    # throughput degrades monotonically as more processes share each drive
    assert rates[("clustered", 16)] > rates[("clustered", 8)] > rates[("clustered", 4)]
    assert rates[("clustered", 4)] > rates[("clustered", 1)]
    # per-process-contiguous allocation beats fine striping when a single
    # drive is shared: striping destroys partition locality entirely
    assert rates[("clustered", 1)] >= rates[("striped", 1)] * 0.95
    # the 16-process single drive seeks far more than one-process-per-drive
    assert out[("clustered", 1)][1] > out[("clustered", 16)][1] * 2

    write_table(
        results_dir, "e3_seek_degradation",
        f"E3: {P} processes scanning a PS file over D devices "
        "(per-request reads of 4 records)",
        rows,
    )


@pytest.mark.benchmark(group="e3")
def test_e3_arm_scheduling_ablation(benchmark, results_dir):
    """DESIGN.md ablation: arm scheduling under random shared access.

    Sequential partition scans self-organize into elevator order (the
    main E3 table shows FCFS ~ SCAN there); with random arrivals the
    policies separate: SCAN/SSTF cut arm travel versus FCFS.
    """

    def run():
        return {s: run_random_access(s) for s in ("fcfs", "scan", "sstf")}

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        f"{s:<6s} elapsed={e * 1e3:9.1f} ms  seeks={n:5d}  seek_cylinders={c:8d}"
        for s, (e, n, c) in out.items()
    ]
    assert out["scan"][2] < out["fcfs"][2]
    assert out["sstf"][2] < out["fcfs"][2]
    assert out["scan"][0] <= out["fcfs"][0]
    write_table(
        results_dir, "e3_arm_scheduling",
        f"E3b: arm scheduling, {P} clients x 16 uniform random reads, one drive",
        rows,
    )
