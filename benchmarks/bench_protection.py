"""E9 — §5's protection strategies, exercised against real failures:

* **parity** (Kim [3]): "can handle ... complete failure of a single
  drive. ... However, this method does not appear to be applicable to
  situations in which the disks are being accessed independently, as in
  the PS and IS organizations."
* **shadowing**: "perform exactly the same I/O operations on each disk
  and its 'shadow' ... The drawback is that this approach is very
  expensive in terms of hardware."
* **backup rollback**: "it is not sufficient to restore just that disk
  from backups. Since each drive contains a slice of every file, all of
  the disks will have to be rolled back to the same point in time."

Each scenario injects a drive failure mid-run and reports whether the
data survived, what it cost in devices, and (for RMW parity — the
ablation) what it costs per small write.
"""

import numpy as np
import pytest

from repro import Environment
from repro.devices import (
    WREN_1989,
    DeviceController,
    DiskGeometry,
    DiskModel,
    ShadowPair,
)
from repro.fs import BackupManager, ParallelFileSystem, verify_file
from repro.storage import ParityGroup, StaleParityError, Volume

from conftest import write_table

GEO = DiskGeometry(block_size=512, blocks_per_cylinder=8, cylinders=64)


def make_devices(env, n, prefix="d"):
    return [
        DeviceController(env, DiskModel(GEO, WREN_1989), name=f"{prefix}{i}")
        for i in range(n)
    ]


def scenario_parity_striped():
    """Synchronized (striped) writes + parity: single failure recovered."""
    env = Environment()
    data_devs = make_devices(env, 3)
    parity_dev = make_devices(env, 1, "p")[0]
    group = ParityGroup(env, data_devs, parity_dev, mode="synchronized")
    stripe = [bytes([i + 1]) * 4096 for i in range(3)]
    outcome = {}

    def run():
        yield group.write_stripe(0, stripe)
        data_devs[1].fail()
        rebuilt = yield group.reconstruct(1, 0, 4096)
        outcome["recovered"] = bytes(rebuilt) == stripe[1]

    env.run(env.process(run()))
    return outcome["recovered"], 1  # one extra device


def scenario_parity_independent():
    """PS/IS-style independent writes + parity: recovery refused (stale)."""
    env = Environment()
    data_devs = make_devices(env, 3)
    parity_dev = make_devices(env, 1, "p")[0]
    group = ParityGroup(env, data_devs, parity_dev, mode="synchronized")
    outcome = {}

    def run():
        yield group.write_stripe(0, [b"a" * 4096] * 3)
        # two processes write their own partitions independently
        yield group.write(0, 0, b"P0-data!" * 512)
        yield group.write(2, 0, b"P2-data!" * 512)
        data_devs[2].fail()
        try:
            yield group.reconstruct(2, 0, 4096)
            outcome["recovered"] = True
        except StaleParityError:
            outcome["recovered"] = False

    env.run(env.process(run()))
    return outcome["recovered"], 1


def scenario_parity_rmw():
    """The ablation: RMW parity covers independent writes, at a cost."""
    env = Environment()
    data_devs = make_devices(env, 3)
    parity_dev = make_devices(env, 1, "p")[0]
    group = ParityGroup(env, data_devs, parity_dev, mode="rmw")
    outcome = {}

    def run():
        yield group.write_stripe(0, [b"a" * 4096] * 3)
        payload = b"P2-data!" * 512
        t0 = env.now
        yield group.write(2, 0, payload)
        outcome["write_cost"] = env.now - t0
        data_devs[2].fail()
        rebuilt = yield group.reconstruct(2, 0, 4096)
        outcome["recovered"] = bytes(rebuilt) == payload

    env.run(env.process(run()))

    # baseline: the same write without parity maintenance
    env2 = Environment()
    dev = make_devices(env2, 1)[0]

    def bare():
        yield dev.write(0, b"P2-data!" * 512)

    env2.run(env2.process(bare()))
    outcome["bare_cost"] = env2.now
    return outcome


def scenario_shadow():
    """Shadowing covers any organization's single failure, at 2x devices."""
    env = Environment()
    pairs = [
        ShadowPair(env, *make_devices(env, 2, f"pair{i}_")) for i in range(2)
    ]
    vol = Volume(env, pairs)
    pfs = ParallelFileSystem(env, vol)
    f = pfs.create("mirrored", "PS", n_records=32, record_size=16,
                   dtype="float64", records_per_block=4, n_processes=2)
    data = np.random.default_rng(0).random((32, 2))
    outcome = {}

    def run():
        # independent PS writes — the case parity could not cover
        for q in range(2):
            h = f.internal_view(q)
            yield from h.write_next(data[f.map.records_of(q)])
        pairs[0].primary.fail()
        out = yield from f.global_view().read()
        outcome["recovered"] = np.array_equal(out, data)

    env.run(env.process(run()))
    return outcome["recovered"], 2  # one extra device per data device


def scenario_backup_rollback():
    """Backups: single-disk restore corrupts; full rollback loses recent
    writes but restores consistency."""
    env = Environment()
    devs = make_devices(env, 4)
    vol = Volume(env, devs)
    pfs = ParallelFileSystem(env, vol)
    f = pfs.create("striped", "S", n_records=64, record_size=16,
                   dtype="float64", records_per_block=4, stripe_unit=64)
    old = np.random.default_rng(1).random((64, 2))
    new = np.random.default_rng(2).random((64, 2))
    mgr = BackupManager(env, vol)
    outcome = {}

    def run():
        yield from f.global_view().write(old)
        bset = yield from mgr.take()
        v = f.global_view()
        v.seek(0)
        yield from v.write(new)          # post-backup writes
        devs[1].fail()
        # wrong: restore only the failed disk
        yield from mgr.restore_device(bset, 1)
        outcome["single_restore_old"] = verify_file(f, old)
        outcome["single_restore_new"] = verify_file(f, new)
        # right: roll everything back
        yield from mgr.restore_all(bset)
        outcome["full_rollback_old"] = verify_file(f, old)
        outcome["full_rollback_new"] = verify_file(f, new)

    env.run(env.process(run()))
    return outcome


def run_experiment():
    return {
        "parity+striped": scenario_parity_striped(),
        "parity+independent": scenario_parity_independent(),
        "parity_rmw": scenario_parity_rmw(),
        "shadow": scenario_shadow(),
        "backup": scenario_backup_rollback(),
    }


@pytest.mark.benchmark(group="e9")
def test_e9_protection_coverage(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)

    recovered_striped, extra = out["parity+striped"]
    assert recovered_striped                  # Kim's scheme works for striping
    recovered_indep, _ = out["parity+independent"]
    assert not recovered_indep                # §5: "not applicable" to PS/IS

    rmw = out["parity_rmw"]
    assert rmw["recovered"]                   # the ablation covers PS/IS...
    # ...but a small write becomes 4 transfers in 2 serial phases: ~2x
    # latency (and 4x transfer traffic) versus the bare write
    assert rmw["write_cost"] >= 1.9 * rmw["bare_cost"]

    recovered_shadow, shadow_extra = out["shadow"]
    assert recovered_shadow                   # shadowing covers everything
    assert shadow_extra == 2                  # at 100% device overhead

    bk = out["backup"]
    assert not bk["single_restore_old"] and not bk["single_restore_new"]
    assert bk["full_rollback_old"] and not bk["full_rollback_new"]

    rows = [
        "scheme              covers-striped covers-PS/IS  extra-devices  note",
        f"parity (sync)       {'yes':<14s} {'NO':<13s} 1 per group    stale parity detected on PS/IS write",
        f"parity (RMW ablate) {'yes':<14s} {'yes':<13s} 1 per group    small write costs {out['parity_rmw']['write_cost'] / out['parity_rmw']['bare_cost']:.1f}x bare write",
        f"shadow              {'yes':<14s} {'yes':<13s} 1 per device   'very expensive in terms of hardware'",
        "backup+rollback     to backup pt.  to backup pt. 0              single-disk restore corrupts; full rollback loses post-backup writes",
    ]
    write_table(
        results_dir, "e9_protection",
        "E9: protection schemes vs failure scenarios (all outcomes measured)",
        rows,
    )


def scenario_recovery_times():
    """Wall-clock (simulated) cost of each single-drive recovery path,
    same device class and capacity throughout."""
    times = {}

    # parity rebuild: read all survivors + check disk, write replacement
    env = Environment()
    data_devs = make_devices(env, 3)
    parity_dev = make_devices(env, 1, "p")[0]
    group = ParityGroup(env, data_devs, parity_dev, mode="synchronized")
    cap = data_devs[0].capacity_bytes
    stripe = [bytes(cap), bytes(cap), bytes(cap)]

    def parity_run():
        yield group.write_stripe(0, stripe)
        data_devs[1].fail()
        t0 = env.now
        yield group.rebuild_device(1)
        times["parity rebuild"] = env.now - t0

    env.run(env.process(parity_run()))

    # shadow resilver: stream survivor -> replacement
    env = Environment()
    pair = ShadowPair(env, *make_devices(env, 2, "m"))

    def shadow_run():
        yield pair.write(0, bytes(pair.capacity_bytes))
        pair.primary.fail()
        t0 = env.now
        yield from pair.resilver_timed(chunk_bytes=1 << 16)
        times["shadow resilver"] = env.now - t0

    env.run(env.process(shadow_run()))

    # backup rollback: every device rewritten from the backup set
    env = Environment()
    devs = make_devices(env, 4)
    vol = Volume(env, devs)
    mgr = BackupManager(env, vol)

    def backup_run():
        bset = yield from mgr.take()
        devs[1].fail()
        t0 = env.now
        yield from mgr.restore_all(bset)
        times["backup full rollback"] = env.now - t0

    env.run(env.process(backup_run()))
    return times


@pytest.mark.benchmark(group="e9")
def test_e9_recovery_times(benchmark, results_dir):
    times = benchmark.pedantic(scenario_recovery_times, rounds=1, iterations=1)
    rows = [f"{k:<22s} {t:8.2f} s" for k, t in times.items()]

    # a shadow resilver streams one device's worth of data; the parity
    # rebuild must also read every surviving member, so it cannot be
    # faster than the resilver on equal hardware
    assert times["parity rebuild"] >= times["shadow resilver"] * 0.9
    # full rollback rewrites every device but in parallel: same order of
    # magnitude as one device copy
    assert times["backup full rollback"] < times["shadow resilver"] * 4
    assert all(t > 0 for t in times.values())

    write_table(
        results_dir, "e9_recovery_times",
        "E9b: single-drive recovery times (equal 1989 Winchester drives)",
        rows,
    )
