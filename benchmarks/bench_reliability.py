"""E8 — §5's reliability arithmetic:

    "Assuming a MTBF of 30,000 hours for each storage device, a file
    system containing 10 devices could be expected to fail every 3000
    hours (about 3 times per year, on average), which is probably
    tolerable. A system with 100 devices, on the other hand, would
    average more than one failure every two weeks, which is not likely
    to be acceptable."

Analytic rows plus Monte Carlo validation (exponential lifetimes),
plus the protection-scheme loss-probability comparison that motivates
parity and shadowing.
"""

import pytest

from repro.reliability import (
    HOURS_PER_WEEK,
    mtbf_table_row,
    simulate_fleet,
    simulate_protected_fleet,
    system_mtbf,
)

from conftest import write_table

MTBF = 30_000.0  # "currently achieved by commercially available Winchester disks"


def run_experiment():
    analytic = {n: mtbf_table_row(MTBF, n) for n in (1, 10, 100, 1000)}
    mc = {n: simulate_fleet(n, MTBF, n_trials=3000, seed=42) for n in (1, 10, 100)}
    protection = {
        scheme: simulate_protected_fleet(
            n_devices=100, device_mtbf_hours=MTBF, mttr_hours=24,
            scheme=scheme, n_trials=400, seed=7,
        )
        for scheme in ("none", "parity", "shadow")
    }
    return analytic, mc, protection


@pytest.mark.benchmark(group="e8")
def test_e8_mtbf_table(benchmark, results_dir):
    analytic, mc, protection = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = ["-- analytic (exponential lifetimes) --"]
    for n, row in analytic.items():
        rows.append(
            f"N={n:<5d} system MTBF={row['system_mtbf_hours']:>9.1f} h  "
            f"failures/yr={row['failures_per_year']:>8.2f}  "
            f"weeks between={row['weeks_between_failures']:>7.2f}"
        )
    rows.append("-- Monte Carlo (3000 trials) --")
    for n, r in mc.items():
        rows.append(r.row())
    rows.append("-- P(data loss in 1 yr), 100 devices, 24 h repair --")
    for scheme, p in protection.items():
        rows.append(f"{scheme:<8s} loss probability = {p:6.3f}")

    # the paper's two worked numbers
    assert analytic[10]["system_mtbf_hours"] == pytest.approx(3000)
    assert analytic[10]["failures_per_year"] == pytest.approx(2.92, abs=0.05)
    assert analytic[100]["system_mtbf_hours"] == pytest.approx(300)
    assert analytic[100]["system_mtbf_hours"] < 2 * HOURS_PER_WEEK  # "> 1 per 2 weeks"
    # Monte Carlo agrees with the closed form
    for n in (1, 10, 100):
        assert mc[n].mean_time_to_first_failure == pytest.approx(
            system_mtbf(MTBF, n), rel=0.1
        )
    # protection ordering: none is near-certain loss; parity and shadow
    # reduce it by orders of magnitude; shadow <= parity
    assert protection["none"] > 0.9
    assert protection["parity"] < 0.25
    assert protection["shadow"] <= protection["parity"]

    write_table(
        results_dir, "e8_reliability",
        f"E8: reliability at {MTBF:.0f} h device MTBF (the §5 table)",
        rows,
    )
