"""E10 — §5, problem area 1: a file created with a PS organization must be
read later with an IS internal view. The three remedies, measured:

1. degraded alternate-view software interface (extra transfers);
2. global-view fallback (the consumer reads everything sequentially);
3. a conversion utility copy (one-time full read + write).

Expected shape: the matched (native) view is fastest per pass; the
alternate view degrades (one transfer per owned block instead of one per
partition); conversion pays ~ a full copy once, after which passes run at
native speed — so it wins when the file is consumed often enough.
"""

import numpy as np
import pytest

from repro import Environment, alternate_view, build_parallel_fs, convert_file
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 4096
RPB = 4
N_RECORDS = 256 * RPB
P = 4
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)


def build_ps_file(env, pfs, layout="clustered"):
    f = pfs.create(
        "src", "PS", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, n_processes=P, layout=layout,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    return f


def time_parallel_pass(env, handles):
    start = env.now

    def worker(h):
        yield from h.read_next(h.n_local_records)

    def driver():
        yield env.all_of([env.process(worker(h)) for h in handles])

    env.run(env.process(driver()))
    return env.now - start


def run_experiment():
    out = {}

    # native PS pass (the matched view, for reference)
    env = Environment()
    pfs = build_parallel_fs(env, P, geometry=GEO)
    f = build_ps_file(env, pfs)
    out["native PS pass"] = time_parallel_pass(
        env, [f.internal_view(q) for q in range(P)]
    )

    # remedy 1: IS consumers through the degraded alternate-view interface
    env = Environment()
    pfs = build_parallel_fs(env, P, geometry=GEO)
    f = build_ps_file(env, pfs)
    out["alternate IS view pass"] = time_parallel_pass(
        env, [alternate_view(f, "IS", q) for q in range(P)]
    )

    # remedy 2: global-view fallback (sequential consumer)
    env = Environment()
    pfs = build_parallel_fs(env, P, geometry=GEO)
    f = build_ps_file(env, pfs)
    start = env.now

    def global_read():
        v = f.global_view()
        while not v.eof:
            yield from v.read(64)

    env.run(env.process(global_read()))
    out["global-view fallback pass"] = env.now - start

    # remedy 3: convert once, then native IS passes
    env = Environment()
    pfs = build_parallel_fs(env, P, geometry=GEO)
    f = build_ps_file(env, pfs)
    start = env.now
    holder = {}

    def convert():
        holder["dst"] = yield from convert_file(pfs, f, "dst", "IS")

    env.run(env.process(convert()))
    out["conversion (one-time)"] = env.now - start
    out["native IS pass (after conversion)"] = time_parallel_pass(
        env, [holder["dst"].internal_view(q) for q in range(P)]
    )
    return out


@pytest.mark.benchmark(group="e10")
def test_e10_view_mismatch(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [f"{k:<36s} {t * 1e3:9.1f} ms" for k, t in out.items()]

    native = out["native PS pass"]
    alt = out["alternate IS view pass"]
    conv = out["conversion (one-time)"]
    native_is = out["native IS pass (after conversion)"]

    # the degraded interface is correct but slower than the matched view
    assert alt > native * 1.5
    # conversion costs about a full copy: well above one matched pass
    # (but, being a sequential stream, it can even undercut one seek-bound
    # alternate-view pass — which is why §5 says "each of these solutions
    # could be useful, depending on the situation")
    assert conv > native * 1.8
    # after conversion, passes run at matched-view speed
    assert native_is < alt
    # break-even: conversion amortizes after k passes
    k = (conv - 0) / (alt - native_is)
    rows.append(f"conversion breaks even after {k:.1f} IS passes")
    assert 0 < k < 30

    write_table(
        results_dir, "e10_view_mismatch",
        "E10: PS-created file consumed with an IS view — the three §5 remedies",
        rows,
    )
