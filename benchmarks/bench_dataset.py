"""X5 (extension) — typed dataset API and live serving front-end.

Three result blocks:

1. **hyperslab ladder** — one strided hyperslab of a 2-D variable read
   four ways on the simulated backend: per-element requests, list I/O
   (one request per run), data sieving (covering reads + scatter), and
   two-phase collective (4 processes splitting the slab). Per-element
   access must be at least 2x slower than every compiled path; the
   relative order of the compiled paths is reported, not asserted (the
   fs batches list requests, so sieving pays off only on patterns
   batching cannot merge).
2. **backend identity matrix** — for every file organization, the same
   dataset (create + plain slab writes + collective ``write_slab_all``
   on the sim side, plain writes on the live side) must produce
   *identical container bytes* on modelled devices and on a host file
   (``content_fingerprint``: attrs section masked, everything else
   byte-exact).
3. **server sweep (wall-clock)** — a :class:`DatasetServer` serves
   disjoint-row write+read-back clients at increasing concurrency;
   every payload must verify. Half the clients are an unlimited
   ``gold`` tenant, half a tightly-bucketed ``bronze`` tenant whose
   token-bucket admission must throttle (and stay conformant:
   granted <= burst + rate * elapsed).

Output: ``benchmarks/results/x5_dataset.txt`` and the machine-readable
``benchmarks/results/BENCH_dataset.json``.

CLI::

    PYTHONPATH=src python benchmarks/bench_dataset.py [--quick] [--json PATH]

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the variable
and the client sweep for CI smoke runs.
"""

import argparse
import asyncio
import os
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro import Environment, build_parallel_fs
from repro.dataset import (
    Dataset,
    DatasetSchema,
    LiveDataset,
    content_fingerprint,
)
from repro.devices import FAST_1989, DiskGeometry
from repro.live import LiveParallelFileSystem
from repro.live.server import DatasetClient, DatasetServer
from repro.perf import ORGS, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
N_DEVICES = 4


def params(quick: bool):
    if quick:
        return dict(rows=16, cols=16, clients=(4, 16))
    return dict(rows=64, cols=64, clients=(8, 32, 64))


def build_pfs(env):
    return build_parallel_fs(env, N_DEVICES, timing=FAST_1989, geometry=GEO)


def grid_schema(rows: int, cols: int) -> DatasetSchema:
    return DatasetSchema.build(
        {"row": rows, "col": cols},
        {"grid": ("<f8", ("row", "col"), {"units": "arb"})},
        {"experiment": "X5"},
    )


def grid_data(rows: int, cols: int) -> np.ndarray:
    rng = np.random.default_rng(1989)
    return rng.normal(size=(rows, cols)).astype("<f8")


def run(env, gen):
    box = {}

    def driver():
        box["out"] = yield from gen

    env.run(env.process(driver()))
    return box.get("out")


def make_sim_dataset(rows: int, cols: int, org="IS", writers=4):
    env = Environment()
    pfs = build_pfs(env)
    schema = grid_schema(rows, cols)
    data = grid_data(rows, cols)
    ds = run(env, Dataset.create(
        pfs, "x5", schema, org=org, writers=writers,
        data={"grid": data}, user_string="bench X5",
    ))
    return env, ds, data


# -- block 1: hyperslab ladder ----------------------------------------------


def ladder(rows: int, cols: int):
    """The same half-width slab (all rows, left half of the columns) read
    per-element, as list I/O, sieved, and collectively."""
    start, count = (0, 0), (rows, cols // 2)
    half = grid_data(rows, cols)[:, : cols // 2]
    out = {}

    # per-element: one positioned request per element
    env, ds, _ = make_sim_dataset(rows, cols)
    from repro.datatype import slab_indices

    ext = ds._var_extent("grid")
    itemsize = ds.schema.variable("grid").itemsize
    elems = slab_indices((rows, cols), start, count)

    def per_element():
        chunks = []
        for e in elems:
            raw = yield ds.file.read_records(
                ext.payload_off + int(e) * itemsize, itemsize
            )
            chunks.append(np.asarray(raw, dtype=np.uint8).reshape(-1))
        return np.concatenate(chunks)

    t0 = env.now
    raw = run(env, per_element())
    got = np.frombuffer(raw.tobytes(), "<f8").reshape(count)
    assert np.array_equal(got, half)
    out["per_element_sim_s"] = env.now - t0

    # list I/O: one request per run
    env, ds, _ = make_sim_dataset(rows, cols)
    t0 = env.now
    got = run(env, ds.read_slab("grid", start, count, sieve=False))
    assert np.array_equal(got, half)
    out["list_io_sim_s"] = env.now - t0

    # sieving: covering reads, scatter in memory
    env, ds, _ = make_sim_dataset(rows, cols)
    t0 = env.now
    got = run(env, ds.read_slab("grid", start, count, sieve=True))
    assert np.array_equal(got, half)
    out["sieved_sim_s"] = env.now - t0

    # collective: 4 processes split the slab by rows
    env, ds, _ = make_sim_dataset(rows, cols)
    share = rows // 4
    slabs = [((q * share, 0), (share, cols // 2)) for q in range(4)]
    t0 = env.now
    parts = run(env, ds.read_slab_all("grid", slabs))
    for q in range(4):
        assert np.array_equal(parts[q], half[q * share:(q + 1) * share])
    out["collective_sim_s"] = env.now - t0

    # The load-bearing claim is that every compiled path crushes
    # per-element access. The relative order of list vs sieve vs
    # collective depends on the access pattern (the fs already batches
    # list requests, so sieving's extra covering bytes only pay off on
    # patterns batching can't merge) — report it, don't assert it.
    slowest_optimized = max(
        out["list_io_sim_s"], out["sieved_sim_s"], out["collective_sim_s"]
    )
    out["ladder_ok"] = out["per_element_sim_s"] > 2 * slowest_optimized
    return out


# -- block 2: backend identity matrix ---------------------------------------


def identity_matrix(rows: int, cols: int, tmp: Path):
    schema = grid_schema(rows, cols)
    data = grid_data(rows, cols)
    patch = np.arange(cols, dtype="<f8").reshape(1, cols)
    share = rows // 4
    slabs = [((q * share, 0), (share, cols)) for q in range(4)]
    vals = [np.full((share, cols), float(q), dtype="<f8") for q in range(4)]
    out = {}
    for org in ORGS:
        env = Environment()
        pfs = build_pfs(env)
        ds = run(env, Dataset.create(
            pfs, "x5", schema, org=org, writers=4,
            data={"grid": data}, user_string="bench X5",
        ))
        run(env, ds.write_slab("grid", (1, 0), (1, cols), patch, sieve=True))
        run(env, ds.write_slab_all("grid", slabs, vals))
        run(env, ds.sync())
        raw = ds.file.volume.peek(
            ds.file.entry.extent, ds.file.layout, 0, ds.file.attrs.file_bytes
        )
        sim_fp = content_fingerprint(
            np.ascontiguousarray(raw, dtype=np.uint8).tobytes()
        )

        lfs = LiveParallelFileSystem(tmp / f"id_{org}")
        with LiveDataset.create(
            lfs, "x5", schema, org=org, n_processes=4,
            data={"grid": data}, user_string="bench X5",
        ) as lds:
            lds.write_slab("grid", (1, 0), (1, cols), patch, sieve=True)
            for (s, c), v in zip(slabs, vals):
                lds.write_slab("grid", s, c, v)
            lds.sync()
            live_fp = content_fingerprint(lds.file.path.read_bytes())

        out[org] = {
            "sim_fingerprint": sim_fp,
            "live_fingerprint": live_fp,
            "identical": sim_fp == live_fp,
        }
    out_ok = all(cell["identical"] for cell in out.values())
    return {"orgs": out, "identity_ok": out_ok}


# -- block 3: server sweep (wall-clock) -------------------------------------

BRONZE_RATE = 64 * 1024       # bytes/second
BRONZE_BURST = 2 * 1024       # bytes
ROUNDS = 4                    # write+read round trips per client


async def _client_task(port: int, i: int, cols: int):
    tenant = "bronze" if i % 2 else "gold"
    c = await DatasetClient.connect("127.0.0.1", port, tenant=tenant)
    ok = True
    for r in range(ROUNDS):
        row = np.full((1, cols), float(i * ROUNDS + r), dtype="<f8")
        await c.write("x5", "grid", (i, 0), (1, cols), row)
        got = await c.read("x5", "grid", (i, 0), (1, cols))
        ok = ok and bool(np.array_equal(got, row))
    await c.close()
    return ok


async def _sweep_once(lfs, n_clients: int, cols: int):
    async with DatasetServer(
        lfs, tenants={"bronze": (BRONZE_RATE, BRONZE_BURST)}
    ) as srv:
        t0 = time.monotonic()
        oks = await asyncio.gather(
            *(_client_task(srv.port, i, cols) for i in range(n_clients))
        )
        wall = time.monotonic() - t0
        stats = srv.stats()
    return all(oks), wall, stats


def server_sweep(rows: int, cols: int, clients, tmp: Path):
    out = {}
    for n in clients:
        root = tmp / f"srv_{n}"
        lfs = LiveParallelFileSystem(root)
        LiveDataset.create(
            lfs, "x5", grid_schema(max(rows, n), cols),
        ).close()
        ok, wall, stats = asyncio.run(_sweep_once(lfs, n, cols))
        bronze = stats["tenants"].get("bronze", {})
        conformant = (
            bronze.get("granted_total", 0.0)
            <= BRONZE_BURST + BRONZE_RATE * stats["uptime_s"] + 1e-6
        )
        out[str(n)] = {
            "all_reads_verified": ok,
            "wall_s": round(wall, 6),
            "requests_total": stats["requests_total"],
            "requests_per_s": round(stats["requests_total"] / wall, 1),
            "tenants": stats["tenants"],
            "bronze_throttled_grants": bronze.get("throttled_grants", 0),
            "bronze_admission_wait_s": bronze.get("admission_wait_s", 0.0),
            "bronze_conformant": conformant,
        }
    top = out[str(max(clients))]
    sweep_ok = (
        all(cell["all_reads_verified"] for cell in out.values())
        and all(cell["bronze_conformant"] for cell in out.values())
        and top["bronze_throttled_grants"] > 0
    )
    return {"clients": out, "sweep_ok": sweep_ok}


# -- assembly ----------------------------------------------------------------


def run_bench(quick: bool):
    cfg = params(quick)
    rows, cols, clients = cfg["rows"], cfg["cols"], cfg["clients"]
    with tempfile.TemporaryDirectory(prefix="bench_dataset_") as td:
        tmp = Path(td)
        lad = ladder(rows, cols)
        ident = identity_matrix(rows, cols, tmp)
        sweep = server_sweep(rows, cols, clients, tmp)

    record = {
        "bench": "dataset_api",
        "quick": quick,
        "config": {
            "rows": rows,
            "cols": cols,
            "variable_bytes": rows * cols * 8,
            "n_devices": N_DEVICES,
            "clients": list(clients),
            "bronze_rate_bytes_per_s": BRONZE_RATE,
            "bronze_burst_bytes": BRONZE_BURST,
        },
        "ladder": lad,
        "identity": ident,
        "server_sweep": sweep,
    }

    rows_txt = [
        "hyperslab ladder (simulated seconds, lower is better):",
        f"  per-element {lad['per_element_sim_s'] * 1e3:9.1f} ms",
        f"  list I/O    {lad['list_io_sim_s'] * 1e3:9.1f} ms",
        f"  sieved      {lad['sieved_sim_s'] * 1e3:9.1f} ms",
        f"  collective  {lad['collective_sim_s'] * 1e3:9.1f} ms",
        "ladder (per-element > 2x every compiled path): "
        + ("OK" if lad["ladder_ok"] else "VIOLATED"),
    ]
    for org, cell in ident["orgs"].items():
        rows_txt.append(
            f"{org:<4s} sim==live: "
            f"{'OK' if cell['identical'] else 'FAIL'} "
            f"fp={cell['sim_fingerprint'][:12]}"
        )
    rows_txt.append(
        "backend identity (all orgs, incl. collective writes): "
        + ("OK" if ident["identity_ok"] else "VIOLATED")
    )
    for n, cell in sweep["clients"].items():
        rows_txt.append(
            f"{n:>3s} clients: {cell['wall_s'] * 1e3:8.1f} ms wall, "
            f"{cell['requests_per_s']:8.1f} req/s, "
            f"bronze throttled {cell['bronze_throttled_grants']:4d} "
            f"(waited {cell['bronze_admission_wait_s']:.3f} s), "
            f"reads {'OK' if cell['all_reads_verified'] else 'FAIL'}"
        )
    rows_txt.append(
        "server sweep (all verified, bronze throttled and conformant): "
        + ("OK" if sweep["sweep_ok"] else "VIOLATED")
    )
    return record, rows_txt


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small variable / client sweep for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_dataset.json "
                         "(default: benchmarks/results/BENCH_dataset.json)")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    out_path = (
        Path(args.json) if args.json else results / "BENCH_dataset.json"
    )

    record, rows_txt = run_bench(args.quick)
    title = (
        "X5 (extension): typed dataset API + live serving, "
        f"{record['config']['rows']}x{record['config']['cols']} f8 grid, "
        f"clients in {record['config']['clients']}"
    )
    text = "\n".join([title, "=" * len(title), *rows_txt, ""])
    (results / "x5_dataset.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")

    ok = (
        record["ladder"]["ladder_ok"]
        and record["identity"]["identity_ok"]
        and record["server_sweep"]["sweep_ok"]
    )
    return 0 if ok else 1


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_dataset.py)


def test_x5_dataset_api(results_dir):
    record, rows_txt = run_bench(quick=QUICK)
    from conftest import write_table

    title = (
        "X5 (extension): typed dataset API + live serving, "
        f"{record['config']['rows']}x{record['config']['cols']} f8 grid, "
        f"clients in {record['config']['clients']}"
    )
    write_table(results_dir, "x5_dataset", title, rows_txt)
    write_bench_json(results_dir / "BENCH_dataset.json", record)
    assert record["ladder"]["ladder_ok"]
    assert record["identity"]["identity_ok"]
    assert record["server_sweep"]["sweep_ok"]


if __name__ == "__main__":
    raise SystemExit(main())
