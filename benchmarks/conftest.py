"""Shared benchmark infrastructure.

Each ``bench_*.py`` file regenerates one artifact of the paper (Figure 1
or a §4/§5 claim — see DESIGN.md's per-experiment index). The pytest-
benchmark fixture times the *simulation run* in wall-clock; the scientific
output is the table of *simulated* metrics each experiment prints and
writes to ``benchmarks/results/<exp>.txt``.
"""

import sys
from pathlib import Path

import pytest

# make `benchmarks` helpers importable when pytest rootdir varies
sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_table(results_dir: Path, name: str, title: str, rows: list[str]) -> None:
    """Persist (and echo) one experiment's result table."""
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results_dir / f"{name}.txt").write_text(text)
    print(f"\n{text}")
