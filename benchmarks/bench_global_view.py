"""E6 — §4: "Most of the implementation strategies suggested above would
also yield performance improvements for sequential programs which access
the files using the global view. One exception is the PS organization, in
which all of the data would have to be read from the first disk, followed
by all of the data from the second disk, etc., with no potential for
parallelism. IS type files would have a similar problem if block sizes
approached or exceeded the buffer space available."

A sequential (global view) scan of the same data under three layouts over
4 drives, reading in fixed-size buffer-limited requests:

* striped       — requests span all drives: full parallelism;
* interleaved   — parallel while a request covers >= D blocks; degrades
  to one-drive-at-a-time once the block size reaches the buffer size;
* clustered(PS) — one partition (= one drive) at a time: no parallelism
  at any block size.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.trace import throughput_mb_s

from conftest import write_table

N_DEVICES = 4
RECORD = 4096
N_RECORDS = 512             # 2 MB file
BUFFER_RECORDS = 32         # 128 KB global-reader buffer
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=256)


def run_global_scan(layout: str, rpb: int):
    env = Environment()
    pfs = build_parallel_fs(env, N_DEVICES, geometry=GEO)
    f = pfs.create(
        "g", "PS" if layout == "clustered" else "S",
        n_records=N_RECORDS, record_size=RECORD, records_per_block=rpb,
        n_processes=N_DEVICES, layout=layout, stripe_unit=8192,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    start = env.now

    def reader():
        v = f.global_view()
        v.seek(0)
        while not v.eof:
            yield from v.read(BUFFER_RECORDS)

    env.run(env.process(reader()))
    return env.now - start


def run_experiment():
    out = {"striped": run_global_scan("striped", 8),
           "clustered (PS)": run_global_scan("clustered", 8)}
    # interleaved at increasing block sizes, same buffer
    for rpb in (8, 16, 32, 64):
        out[f"interleaved rpb={rpb}"] = run_global_scan("interleaved", rpb)
    return out


@pytest.mark.benchmark(group="e6")
def test_e6_global_view_parallelism(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    nbytes = N_RECORDS * RECORD
    rates = {k: throughput_mb_s(nbytes, t) for k, t in out.items()}
    rows = [
        f"{k:<22s} elapsed={t * 1e3:9.1f} ms  rate={rates[k]:7.2f} MB/s"
        for k, t in out.items()
    ]

    # striped global scan enjoys ~full device parallelism
    assert rates["striped"] > rates["clustered (PS)"] * 2.5
    # small-block interleaved behaves like striping
    assert rates["interleaved rpb=8"] > rates["clustered (PS)"] * 2.5
    # once blocks reach the buffer size, interleaved degrades toward
    # single-drive behaviour (the §4 caveat)
    assert rates["interleaved rpb=32"] < rates["interleaved rpb=8"] * 0.75
    assert rates["interleaved rpb=64"] == pytest.approx(
        rates["clustered (PS)"], rel=0.35
    )
    # monotone degradation with block size (1% tolerance: at and beyond
    # the buffer size the scan is single-drive either way)
    seq = [rates[f"interleaved rpb={r}"] for r in (8, 16, 32, 64)]
    assert all(a >= b * 0.99 for a, b in zip(seq, seq[1:]))

    write_table(
        results_dir, "e6_global_view",
        f"E6: global (sequential) scan, {BUFFER_RECORDS * RECORD // 1024} KB "
        "reader buffer, 4 drives",
        rows,
    )
