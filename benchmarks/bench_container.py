"""X3 (extension) — serial-equivalent container format.

The paper's §2 requirement that parallel files "appear conventional"
turned into a measurable property: an ``repro.container`` file written
by N cooperating processes must be *byte-identical on media* to the
container one serial writer produces, for every file organization — so
the on-disk artifact is independent of the partitioning that made it.

Three result blocks:

1. **identity matrix** — for each organization and each N in {1,2,4,8},
   sha256 of the raw device extents vs the serial (N=1) digest, plus the
   simulated write time (the parallel speedup rides along for free);
2. **N-writer/M-reader matrix** — a container written by N is read back
   by M in {1,2,4,8} readers; every cell must return the exact payload
   (reported as the count of matching cells), with simulated read times;
3. **corruption check** — one payload byte is flipped on media; the
   verifier must attribute exactly that section (and nothing else).

Output: ``benchmarks/results/container_format.txt`` and the
machine-readable ``benchmarks/results/BENCH_container.json``.

CLI::

    PYTHONPATH=src python benchmarks/bench_container.py [--quick] [--json PATH]

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the payload
and the N/M grid for CI smoke runs.
"""

import argparse
import hashlib
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

import numpy as np

from repro import Environment, build_parallel_fs
from repro.container import (
    ContainerReader,
    ContainerWriter,
    array_section,
    inline_section,
    scan_container,
)
from repro.devices import FAST_1989, DiskGeometry
from repro.perf import ORGS, write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
N_DEVICES = 4
ELEM = 8
LAYOUT_PROCESSES = 4


def params(quick: bool):
    if quick:
        return dict(count=4096, nm=(1, 2, 4))
    return dict(count=65536, nm=(1, 2, 4, 8))


def payload_for(count: int) -> np.ndarray:
    rng = np.random.default_rng(1989)
    return rng.integers(0, 256, size=count * ELEM, dtype=np.uint8)


def sections_for(count: int):
    return [
        inline_section("meta/run"),
        array_section("data/payload", count, ELEM),
    ]


def build_pfs(env):
    return build_parallel_fs(env, N_DEVICES, timing=FAST_1989, geometry=GEO)


def media_digest(f) -> str:
    raw = f.volume.peek(f.entry.extent, f.layout, 0, f.attrs.file_bytes)
    return hashlib.sha256(np.ascontiguousarray(raw).tobytes()).hexdigest()


def write_container(org: str, writers: int, count: int):
    """One full container write; returns (env, pfs, file, sim_seconds)."""
    env = Environment()
    pfs = build_pfs(env)
    payload = payload_for(count)

    def driver():
        w = ContainerWriter.create(
            pfs, "x3", sections_for(count), org=org, writers=writers,
            layout_processes=LAYOUT_PROCESSES, user_string="bench X3",
        )
        yield from w.begin()
        yield from w.write_inline("meta/run", b"x3")
        yield from w.write_array("data/payload", payload)
        return w.file

    start = env.now
    f = env.run(env.process(driver()))
    return env, pfs, f, env.now - start


def read_container(env, pfs, readers: int, count: int):
    """One full read of the payload section; returns (ok, sim_seconds)."""
    expected = payload_for(count).tobytes()

    def driver():
        r = yield from ContainerReader.open(pfs, "x3", readers=readers)
        return (yield from r.read_array("data/payload"))

    start = env.now
    data = env.run(env.process(driver()))
    return data == expected, env.now - start


def identity_matrix(count: int, nm):
    """Block 1: per-org serial digest + per-N digests and write times."""
    out = {}
    for org in ORGS:
        cells = {}
        serial_digest = None
        for n in nm:
            _, _, f, sim_s = write_container(org, n, count)
            digest = media_digest(f)
            if n == 1:
                serial_digest = digest
            cells[str(n)] = {
                "sha256": digest,
                "identical_to_serial": digest == serial_digest,
                "write_sim_s": sim_s,
            }
        out[org] = {"serial_sha256": serial_digest, "writers": cells}
    return out


def reader_matrix(count: int, nm):
    """Block 2: containers written by N, read back by M."""
    out = {}
    for n in nm:
        env, pfs, _, _ = write_container("IS", n, count)
        row = {}
        for m in nm:
            ok, sim_s = read_container(env, pfs, m, count)
            row[str(m)] = {"payload_ok": ok, "read_sim_s": sim_s}
        out[str(n)] = row
    return out


def corruption_check(count: int):
    """Block 3: flip one media byte, expect exactly one attributed finding."""
    _, _, f, _ = write_container("PS", 4, count)
    rep0 = scan_container(f)
    ext = next(
        e for e in rep0.sections if e.decl.section_id == "data/payload"
    )
    target = ext.payload_off + (ext.payload_len // 2)
    row = f.volume.peek(f.entry.extent, f.layout, target, 1)
    f.volume.poke(
        f.entry.extent, f.layout, target,
        np.array([[row.ravel()[0] ^ 0xFF]], dtype=np.uint8),
    )
    rep = scan_container(f)
    return {
        "clean_before": rep0.clean,
        "flipped_offset": int(target),
        "findings": [
            {"kind": x.kind, "section": x.section, "offset": x.offset}
            for x in rep.findings
        ],
        "attributed": (
            [x.kind for x in rep.findings] == ["section-checksum"]
            and rep.findings[0].section == "data/payload"
        ),
    }


def run_bench(quick: bool):
    cfg = params(quick)
    count, nm = cfg["count"], cfg["nm"]
    identity = identity_matrix(count, nm)
    readers = reader_matrix(count, nm)
    corruption = corruption_check(count)

    identity_ok = all(
        cell["identical_to_serial"]
        for org in identity.values()
        for cell in org["writers"].values()
    )
    readers_ok = all(
        cell["payload_ok"] for row in readers.values() for cell in row.values()
    )

    record = {
        "bench": "container_format",
        "quick": quick,
        "config": {
            "elem_size": ELEM,
            "count": count,
            "payload_bytes": count * ELEM,
            "n_devices": N_DEVICES,
            "layout_processes": LAYOUT_PROCESSES,
            "writers_readers": list(nm),
        },
        "identity": identity,
        "identity_ok": identity_ok,
        "reader_matrix": readers,
        "reader_matrix_ok": readers_ok,
        "corruption": corruption,
    }

    rows = []
    for org, block in identity.items():
        cells = " ".join(
            f"N={n}:{'OK' if c['identical_to_serial'] else 'FAIL'}"
            f"({c['write_sim_s'] * 1e3:7.1f} ms)"
            for n, c in block["writers"].items()
        )
        rows.append(f"{org:<4s} {cells}  sha={block['serial_sha256'][:12]}")
    rows.append(
        "media identity (every N == serial, all orgs): "
        + ("OK" if identity_ok else "VIOLATED")
    )
    for n, row in readers.items():
        cells = " ".join(
            f"M={m}:{'OK' if c['payload_ok'] else 'FAIL'}"
            f"({c['read_sim_s'] * 1e3:7.1f} ms)"
            for m, c in row.items()
        )
        rows.append(f"written by N={n}: {cells}")
    rows.append(
        "reader matrix (every (N,M) returns the payload): "
        + ("OK" if readers_ok else "VIOLATED")
    )
    rows.append(
        f"corruption: 1 byte flipped @{corruption['flipped_offset']} -> "
        + (
            "attributed to data/payload (section-checksum)"
            if corruption["attributed"]
            else f"MISATTRIBUTED: {corruption['findings']}"
        )
    )
    return record, rows


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small payload / grid for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_container.json "
                         "(default: benchmarks/results/BENCH_container.json)")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    out_path = (
        Path(args.json) if args.json else results / "BENCH_container.json"
    )

    record, rows = run_bench(args.quick)
    title = (
        "X3 (extension): serial-equivalent container format, "
        f"{record['config']['payload_bytes']} payload bytes, "
        f"N/M in {record['config']['writers_readers']}"
    )
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results / "container_format.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")

    ok = (
        record["identity_ok"]
        and record["reader_matrix_ok"]
        and record["corruption"]["attributed"]
    )
    return 0 if ok else 1


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_container.py)


def test_x3_container_format(results_dir):
    record, rows = run_bench(quick=QUICK)
    from conftest import write_table

    title = (
        "X3 (extension): serial-equivalent container format, "
        f"{record['config']['payload_bytes']} payload bytes, "
        f"N/M in {record['config']['writers_readers']}"
    )
    write_table(results_dir, "container_format", title, rows)
    write_bench_json(results_dir / "BENCH_container.json", record)
    assert record["identity_ok"]
    assert record["reader_matrix_ok"]
    assert record["corruption"]["attributed"]


if __name__ == "__main__":
    raise SystemExit(main())
