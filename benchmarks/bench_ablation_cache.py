"""Ablation A3 — PDA buffer-cache size (§4: "buffer caching techniques
would be helpful when there is some locality of reference, as in the PDA
organization").

The locality curve: a working-set access pattern (90% of accesses to 10%
of each process's blocks) against a per-process block cache swept from 0
(uncached) to the full partition. Expected: hit rate and elapsed time
follow the classic knee — dramatic gains until the hot set fits, little
after.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 4096
RPB = 4
BLOCKS_PER_PROCESS = 32
N_PROCESSES = 4
N_RECORDS = BLOCKS_PER_PROCESS * N_PROCESSES * RPB
N_ACCESSES = 300
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
HOT_BLOCKS = 4   # ~ 12% of each partition


def run_cached_sweep(cache_blocks: int):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = pfs.create(
        "ooc", "PDA", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, n_processes=N_PROCESSES,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    start = env.now
    rng = np.random.default_rng(9)
    handles = []

    def pager(q):
        h = (
            f.internal_view(q, cache_blocks=cache_blocks)
            if cache_blocks > 0
            else f.internal_view(q)
        )
        handles.append(h)
        owned = [int(b) for b in f.map.blocks_of(q)]
        hot = owned[:HOT_BLOCKS]
        for _ in range(N_ACCESSES):
            pool = hot if rng.random() < 0.9 else owned
            b = pool[int(rng.integers(0, len(pool)))]
            first = f.attrs.block_spec.first_record(b)
            yield from h.read_record(first, count=RPB)

    def driver():
        yield env.all_of([env.process(pager(q)) for q in range(N_PROCESSES)])

    env.run(env.process(driver()))
    elapsed = env.now - start
    if cache_blocks > 0:
        hits = sum(h.cache.hits for h in handles)
        misses = sum(h.cache.misses for h in handles)
        hit_rate = hits / (hits + misses)
    else:
        hit_rate = 0.0
    return elapsed, hit_rate


def run_experiment():
    return {c: run_cached_sweep(c) for c in (0, 1, 2, 4, 8, 32)}


@pytest.mark.benchmark(group="ablation")
def test_a3_pda_cache_locality_curve(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [
        f"cache={c:<3d} blocks/process  elapsed={t * 1e3:9.1f} ms  "
        f"hit-rate={hr:6.1%}"
        for c, (t, hr) in out.items()
    ]

    times = {c: t for c, (t, _) in out.items()}
    hit = {c: hr for c, (_, hr) in out.items()}
    # the knee: once the hot set (4 blocks) fits, most accesses hit
    assert hit[4] > 0.75
    assert times[4] < times[0] * 0.4
    # beyond the knee, diminishing returns: each doubling buys less
    assert (times[4] - times[8]) < (times[2] - times[4])
    assert (times[8] - times[32]) < (times[4] - times[8])
    # monotone improvement with cache size
    cs = [0, 1, 2, 4, 8, 32]
    assert all(times[a] >= times[b] * 0.98 for a, b in zip(cs, cs[1:]))

    write_table(
        results_dir, "a3_pda_cache",
        f"A3 (ablation): PDA block cache, 90/{HOT_BLOCKS}-block working set, "
        f"{N_ACCESSES} block reads/process",
        rows,
    )
