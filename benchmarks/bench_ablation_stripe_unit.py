"""Ablation A1 — stripe unit size (§4: "broken into units most
appropriate for the I/O devices involved").

The classic striping trade-off the paper's phrase hides:

* a *small* unit spreads even modest requests over all drives (good for
  bandwidth on large sequential requests, bad for small random requests,
  which now pay several seeks instead of one);
* a *large* unit keeps each request on one drive (good seek economics for
  small random access, no intra-request parallelism for scans).

Measured on 4 drives: a 2 MB sequential scan and 200 random 4 KB record
reads, swept over the stripe unit.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.devices import DiskGeometry
from repro.workloads import uniform_pattern

from conftest import write_table

RECORD = 4096
N_RECORDS = 512
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
UNITS = (1024, 4096, 16384, 65536, 262144)


def make_file(env, pfs, unit):
    f = pfs.create(
        "s", "GDA", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=8, n_processes=4, layout="striped",
        stripe_unit=unit,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    return f


def run_scan(unit):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = make_file(env, pfs, unit)
    start = env.now

    def reader():
        v = f.global_view()
        while not v.eof:
            yield from v.read(64)   # 256 KB requests

    env.run(env.process(reader()))
    return env.now - start


def run_random(unit):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = make_file(env, pfs, unit)
    targets = uniform_pattern(N_RECORDS, 200, seed=3)
    start = env.now

    def client(c):
        h = f.internal_view(c)
        for t in range(c, len(targets), 4):
            yield from h.read_record(int(targets[t]))

    def driver():
        yield env.all_of([env.process(client(c)) for c in range(4)])

    env.run(env.process(driver()))
    return env.now - start


def run_experiment():
    return (
        {u: run_scan(u) for u in UNITS},
        {u: run_random(u) for u in UNITS},
    )


@pytest.mark.benchmark(group="ablation")
def test_a1_stripe_unit_tradeoff(benchmark, results_dir):
    scan, rand = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for u in UNITS:
        rows.append(
            f"unit={u // 1024:>4d} KB  seq-scan={scan[u] * 1e3:9.1f} ms  "
            f"random-4KB-reads={rand[u] * 1e3:9.1f} ms"
        )

    # sequential scans tolerate any unit up to the request size, then
    # lose parallelism: the largest unit (= request size) is the worst
    assert scan[262144] > scan[4096] * 1.5
    # random record reads prefer units >= the record: the smallest unit
    # splits each 4 KB read across all four arms
    assert rand[1024] > rand[16384] * 1.1
    # the sweet spot differs by workload — the trade-off is real
    best_scan = min(UNITS, key=lambda u: scan[u])
    best_rand = min(UNITS, key=lambda u: rand[u])
    assert best_scan < best_rand or rand[best_scan] > rand[best_rand]

    write_table(
        results_dir, "a1_stripe_unit",
        "A1 (ablation): stripe unit vs workload, 4 drives "
        "(2 MB scan in 256 KB requests vs 200 random 4 KB reads)",
        rows,
    )
