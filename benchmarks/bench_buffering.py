"""E5 — §4: "Initial experiments using the S and SS organizations have
shown that buffering overheads can be a significant factor in limiting
speedups. The sequential organizations can mitigate this effect through
the use of multiple buffering and dedicated I/O processors. Since the
order of accesses is predictable, reading ahead and deferred writing can
be used to overlap I/O operations with computation."

An S-type scan with per-block compute, swept over buffer depth:

* depth 0 — single buffering: elapsed ~ I/O + compute (serial);
* depth >= 1 — read-ahead by a dedicated I/O producer: elapsed ~
  max(I/O, compute) plus pipeline fill;

plus the copy-overhead sweep that shows buffering cost itself limiting
the speedup, and the write-side (deferred writing) mirror.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.buffering import BufferPool, WriteStream
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 4096
RPB = 16                    # 64 KB blocks
N_RECORDS = 64 * RPB        # 64 blocks, 4 MB
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=256)
COMPUTE_PER_BLOCK = 0.060   # s — comparable to one block's I/O time


def make_file(env, pfs):
    f = pfs.create(
        "scan", "S", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, stripe_unit=65536,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    return f


def run_read_side(depth: int, copy_cost: float = 0.0, compute: float = COMPUTE_PER_BLOCK):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = make_file(env, pfs)
    pool = BufferPool(
        env, n_buffers=max(depth + 1, 1), buffer_bytes=RECORD * RPB,
        copy_cost_per_byte=copy_cost, per_buffer_overhead=0.0,
    )
    start = env.now

    def consumer():
        stream = f.global_view().stream(pool, depth=depth)
        yield from stream.read_all(compute=lambda i, d: compute)

    env.run(env.process(consumer()))
    return env.now - start


def run_write_side(depth: int):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = pfs.create(
        "out", "S", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, stripe_unit=65536,
    )
    pool = BufferPool(
        env, n_buffers=max(depth + 1, 1), buffer_bytes=RECORD * RPB,
        copy_cost_per_byte=0.0, per_buffer_overhead=0.0,
    )
    ws = WriteStream(env, lambda b, data: f.write_block(b, data), pool, depth=depth)
    block = np.zeros((RPB, RECORD), dtype=np.uint8)
    start = env.now

    def producer():
        for b in range(f.n_blocks):
            yield env.timeout(COMPUTE_PER_BLOCK)  # compute the block
            yield from ws.put(b, block)
        yield from ws.drain()

    env.run(env.process(producer()))
    return env.now - start


def run_experiment():
    read = {d: run_read_side(d) for d in (0, 1, 2, 4)}
    write = {d: run_write_side(d) for d in (0, 1, 2)}
    copy = {c: run_read_side(1, copy_cost=c, compute=0.0)
            for c in (0.0, 2e-8, 1e-7, 4e-7, 1e-6)}
    return read, write, copy


@pytest.mark.benchmark(group="e5")
def test_e5_buffering_overlap(benchmark, results_dir):
    read, write, copy = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    n_blocks = N_RECORDS // RPB
    rows = ["-- read side: per-block compute comparable to I/O --"]
    for d, t in read.items():
        rows.append(f"read  depth={d}  elapsed={t * 1e3:9.1f} ms")
    rows.append("-- write side (deferred writing) --")
    for d, t in write.items():
        rows.append(f"write depth={d}  elapsed={t * 1e3:9.1f} ms")
    rows.append("-- buffer copy overhead sweep (depth=1, no compute) --")
    for c, t in copy.items():
        rows.append(
            f"copy={c * 1e9:6.1f} ns/B  elapsed={t * 1e3:9.1f} ms"
        )

    total_compute = n_blocks * COMPUTE_PER_BLOCK
    # single buffering serializes: elapsed well above total compute
    assert read[0] > total_compute * 1.5
    # double buffering overlaps: close to max(I/O, compute) = compute-ish
    assert read[1] < read[0] * 0.75
    assert read[1] < total_compute * 1.35
    # deeper pipelines give little more once overlapped (compute-bound)
    assert read[2] <= read[1] * 1.01
    assert read[4] <= read[2] * 1.01
    # write side mirrors it
    assert write[1] < write[0] * 0.8
    # copy overhead eats back the gain monotonically (§4's warning)
    ts = [copy[c] for c in sorted(copy)]
    assert ts == sorted(ts)
    assert ts[-1] > ts[0] * 1.5  # 1 us/B copy has eaten the overlap win

    write_table(
        results_dir, "e5_buffering",
        f"E5: buffering — S scan of {n_blocks} x 64 KB blocks, "
        f"compute {COMPUTE_PER_BLOCK * 1e3:.0f} ms/block, 4 drives",
        rows,
    )
