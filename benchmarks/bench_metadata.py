"""X4 (extension) — open/create-storm scaling of the sharded metastore.

§3's Finite Element Machine experience is a *metadata* bottleneck story:
thousands of per-process files that "all had to be created, modified,
and deleted individually" through one directory service. This benchmark
measures the cure: the same open/create storm driven through a
single-catalog FIFO metadata server (1 shard — every request serialized
through one queue) versus the hash-sharded service at 4 and 8 shards.

For each client count N in the grid, N simulated clients each create,
open (lookup), and delete a private batch of files through
:class:`repro.metastore.MetaServer`. The metric is simulated seconds to
drain the storm and the derived ops/sec; the expected curve is FIFO time
growing linearly with N while sharded time flattens toward the
per-shard serialization floor. The run fails (exit 1) if the sharded
service does not beat the FIFO baseline at the highest client count, or
if any storm leaves the namespace invariants dirty.

Output: ``benchmarks/results/metadata_storm.txt`` and the
machine-readable ``benchmarks/results/BENCH_metadata.json``.

CLI::

    PYTHONPATH=src python benchmarks/bench_metadata.py [--quick] [--json PATH]

Quick mode (``--quick`` or ``REPRO_BENCH_QUICK=1``) shrinks the client
grid and per-client batch for CI smoke runs.
"""

import argparse
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro import Environment
from repro.metastore import MetadataService, MetaServer
from repro.metastore.harness import make_entry
from repro.perf import write_bench_json

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

OP_TIME = 5e-5           # simulated seconds per metadata op at a shard
SHARD_COUNTS = (1, 4, 8)


def params(quick: bool):
    if quick:
        return dict(clients=(2, 8), files_per_client=4)
    return dict(clients=(2, 4, 8, 16, 32), files_per_client=8)


def run_storm(n_shards: int, n_clients: int, files_per_client: int):
    """One create/open/delete storm; returns (sim_seconds, total_ops)."""
    env = Environment()
    service = MetadataService(n_shards=n_shards)
    server = MetaServer(env, service, op_time=OP_TIME)

    def client(cid: int):
        names = [f"c{cid}.f{i}" for i in range(files_per_client)]
        for name in names:
            yield server.submit("create", name, make_entry(name))
        for name in names:
            yield server.submit("lookup", name)
        for name in names:
            yield server.submit("delete", name)

    def driver():
        yield env.all_of(
            [env.process(client(c), name=f"client{c}")
             for c in range(n_clients)]
        )

    env.run(env.process(driver(), name="storm"))
    if service.check_invariants():
        raise RuntimeError(
            f"storm left dirty invariants at {n_shards} shard(s), "
            f"{n_clients} client(s)"
        )
    assert len(service) == 0, "every storm file was deleted"
    return env.now, server.total_served


def run_bench(quick: bool):
    cfg = params(quick)
    clients, fpc = cfg["clients"], cfg["files_per_client"]

    curves = {}
    for shards in SHARD_COUNTS:
        points = {}
        for n in clients:
            sim_s, ops = run_storm(shards, n, fpc)
            points[str(n)] = {
                "sim_s": sim_s,
                "ops": ops,
                "ops_per_s": ops / sim_s if sim_s else 0.0,
            }
        curves[str(shards)] = points

    top = str(max(clients))
    fifo_top = curves["1"][top]["sim_s"]
    best_sharded_top = min(
        curves[str(s)][top]["sim_s"] for s in SHARD_COUNTS if s > 1
    )
    sharded_wins = best_sharded_top < fifo_top

    record = {
        "bench": "metadata_storm",
        "quick": quick,
        "config": {
            "op_time_s": OP_TIME,
            "shard_counts": list(SHARD_COUNTS),
            "clients": list(clients),
            "files_per_client": fpc,
            "ops_per_client": 3 * fpc,   # create + lookup + delete
        },
        "curves": curves,
        "fifo_top_sim_s": fifo_top,
        "best_sharded_top_sim_s": best_sharded_top,
        "speedup_at_top": fifo_top / best_sharded_top if best_sharded_top else 0.0,
        "sharded_wins_at_top": sharded_wins,
    }

    rows = []
    header = "shards " + " ".join(f"N={n:>3d}" + " " * 7 for n in clients)
    rows.append(header)
    for shards in SHARD_COUNTS:
        cells = " ".join(
            f"{curves[str(shards)][str(n)]['sim_s'] * 1e3:7.2f} ms"
            for n in clients
        )
        label = "FIFO" if shards == 1 else f"{shards}-way"
        rows.append(f"{label:<6s} {cells}")
    rows.append(
        f"at N={top}: FIFO {fifo_top * 1e3:.2f} ms vs best sharded "
        f"{best_sharded_top * 1e3:.2f} ms "
        f"({record['speedup_at_top']:.2f}x) -> "
        + ("sharded WINS" if sharded_wins else "sharded LOSES")
    )
    return record, rows


def _title(record) -> str:
    cfg = record["config"]
    return (
        "X4 (extension): open/create storm, single-catalog FIFO vs "
        f"sharded metastore, {cfg['ops_per_client']} ops/client, "
        f"clients in {cfg['clients']}"
    )


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", default=QUICK,
                    help="small client grid / batch for CI smoke runs")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="where to write BENCH_metadata.json "
                         "(default: benchmarks/results/BENCH_metadata.json)")
    args = ap.parse_args(argv)

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)
    out_path = (
        Path(args.json) if args.json else results / "BENCH_metadata.json"
    )

    record, rows = run_bench(args.quick)
    title = _title(record)
    text = "\n".join([title, "=" * len(title), *rows, ""])
    (results / "metadata_storm.txt").write_text(text)
    print(text)

    write_bench_json(out_path, record)
    print(f"wrote {out_path}")
    return 0 if record["sharded_wins_at_top"] else 1


# -- pytest entry (CI smoke: REPRO_BENCH_QUICK=1 pytest benchmarks/bench_metadata.py)


def test_x4_metadata_storm(results_dir):
    record, rows = run_bench(quick=QUICK)
    from conftest import write_table

    write_table(results_dir, "metadata_storm", _title(record), rows)
    write_bench_json(results_dir / "BENCH_metadata.json", record)
    assert record["sharded_wins_at_top"]


if __name__ == "__main__":
    raise SystemExit(main())
