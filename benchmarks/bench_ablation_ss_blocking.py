"""Ablation A2 — SS blocking granularity (§3.1: "This organization makes
most sense when there is a single record per block, but self-scheduling
by block for multi-record blocks could be provided if needed.")

The trade-off behind that sentence: single-record blocks give the finest
load balancing but pay the shared-pointer critical section (and a device
request) per record; multi-record blocks amortize both at the cost of
coarser scheduling. Swept over records_per_block at fixed total data,
with and without per-task compute skew.
"""

import numpy as np
import pytest

from repro import Environment, SSSession, build_parallel_fs
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 4096
TOTAL_RECORDS = 256
N_WORKERS = 4
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=32, cylinders=256)
POINTER_COST = 2e-3   # an expensive 1989 lock round-trip, to expose contention


def run_ss(rpb: int, skewed: bool):
    env = Environment()
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = pfs.create(
        "q", "SS", n_records=TOTAL_RECORDS, record_size=RECORD,
        records_per_block=rpb, n_processes=N_WORKERS, stripe_unit=16384,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((TOTAL_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    session = SSSession(f, early_advance=True, pointer_cost=POINTER_COST)
    start = env.now

    def cost(block):
        if not skewed:
            return 0.001 * rpb
        # one very expensive region at the front of the file
        first_record = block * rpb
        return (0.02 if first_record < 32 else 0.001) * rpb

    def worker(q):
        h = session.handle(q)
        while True:
            item = yield from h.read_next()
            if item is None:
                return
            yield env.timeout(cost(item[0]))

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(N_WORKERS)])

    env.run(env.process(driver()))
    session.validate()
    return env.now - start


def run_experiment():
    rpbs = (1, 4, 16, 64)
    return (
        {r: run_ss(r, skewed=False) for r in rpbs},
        {r: run_ss(r, skewed=True) for r in rpbs},
    )


@pytest.mark.benchmark(group="ablation")
def test_a2_ss_blocking_granularity(benchmark, results_dir):
    uniform, skewed = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = ["-- uniform task costs --"]
    rows += [f"rpb={r:<3d} elapsed={t * 1e3:9.1f} ms" for r, t in uniform.items()]
    rows.append("-- skewed task costs (hot region at file front) --")
    rows += [f"rpb={r:<3d} elapsed={t * 1e3:9.1f} ms" for r, t in skewed.items()]

    # uniform work: coarser blocks amortize the pointer critical section
    assert uniform[16] < uniform[1]
    # skewed work: the coarsest blocks lose scheduling freedom — the hot
    # region lands in few hands; a middle granularity beats both extremes
    # or at least the finest stops being the winner
    assert skewed[64] > skewed[4]
    best = min((1, 4, 16, 64), key=lambda r: skewed[r])
    assert best in (4, 16)

    write_table(
        results_dir, "a2_ss_blocking",
        f"A2 (ablation): SS records-per-block, {TOTAL_RECORDS} records, "
        f"{N_WORKERS} workers, pointer critical section {POINTER_COST * 1e3:.0f} ms",
        rows,
    )
