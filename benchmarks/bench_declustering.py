"""E4 — §4 (Livny et al. [2], Kim [3]): "declustering of files across
multiple drives (disk striping) provides performance improvements in a
database context ... by splitting blocks across multiple drives rather
than allocating whole blocks to individual drives, contention problems
caused by non-uniform access patterns are reduced."

An open transaction system against a GDA file on 4 drives: block-sized
transfers arrive at a fixed rate, targets drawn uniform or Zipf over
blocks. Two placements:

* ``whole-block`` — each 128 KB logical block on one drive (interleaved
  layout): a hot block means a hot *drive*;
* ``declustered`` — each block split across all 4 drives (striped with a
  32 KB unit): every access spreads over all arms.

Measured: mean/p95 transaction response time and per-drive utilization.
Expected shape (Livny): declustering wins response time, the win and the
utilization-balance gap grow with skew; whole-block's aggregate seek bill
is lower (its drives are less busy at uniform skew), which is the
trade-off their "most workloads" qualifier acknowledges.
"""

import numpy as np
import pytest

from repro import Environment, RngStreams, build_parallel_fs
from repro.devices import DiskGeometry
from repro.workloads import uniform_pattern, zipf_pattern

from conftest import write_table

N_DEVICES = 4
RECORD = 4096
RPB = 32                        # 128 KB logical blocks
N_BLOCKS = 48
N_RECORDS = N_BLOCKS * RPB
BLOCK_BYTES = RECORD * RPB
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)
N_TX = 240
ARRIVAL_RATE = 12.0             # tx/s (below declustered saturation ~18)


def run_db(layout: str, skew: float):
    env = Environment()
    pfs = build_parallel_fs(env, N_DEVICES, geometry=GEO)
    kw = dict(stripe_unit=BLOCK_BYTES // N_DEVICES) if layout == "striped" else {}
    f = pfs.create(
        "db", "GDA", n_records=N_RECORDS, record_size=RECORD,
        records_per_block=RPB, n_processes=1, layout=layout, **kw,
    )

    def setup():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(setup()))
    for d in pfs.volume.devices:
        d.utilization._busy_total = 0.0
        d.utilization._t0 = env.now

    if skew == 0:
        targets = uniform_pattern(N_BLOCKS, N_TX, seed=11)
    else:
        targets = zipf_pattern(N_BLOCKS, N_TX, skew=skew, seed=11)
    streams = RngStreams(13)
    responses = []
    start = env.now

    def transaction(t):
        arrived = env.now
        first = int(targets[t]) * RPB
        yield f.read_records(first, RPB)
        responses.append(env.now - arrived)

    def arrivals():
        for t in range(N_TX):
            yield env.timeout(streams.exponential("arrive", 1.0 / ARRIVAL_RATE))
            env.process(transaction(t))

    env.run(env.process(arrivals()))
    env.run()  # drain in-flight transactions
    utils = [
        d.utilization.utilization(env.now) for d in pfs.volume.devices
    ]
    resp = np.array(responses)
    return float(resp.mean()), float(np.percentile(resp, 95)), utils


def run_experiment():
    out = {}
    for skew in (0.0, 0.8, 1.4):
        out[("interleaved", skew)] = run_db("interleaved", skew)
        out[("striped", skew)] = run_db("striped", skew)
    return out


@pytest.mark.benchmark(group="e4")
def test_e4_declustering_under_skew(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for (layout, skew), (mean, p95, utils) in sorted(
        out.items(), key=lambda kv: (kv[0][1], kv[0][0])
    ):
        label = "whole-block" if layout == "interleaved" else "declustered"
        spread = max(utils) - min(utils)
        rows.append(
            f"skew={skew:<4.1f} {label:<12s} mean_resp={mean * 1e3:8.1f} ms  "
            f"p95={p95 * 1e3:8.1f} ms  "
            f"util=[{', '.join(f'{u:4.0%}' for u in utils)}]  "
            f"imbalance={spread:5.1%}"
        )

    # declustering wins response time under skew, and balances the drives
    for skew in (0.8, 1.4):
        m_whole, p_whole, u_whole = out[("interleaved", skew)]
        m_decl, p_decl, u_decl = out[("striped", skew)]
        assert m_decl < m_whole, f"skew={skew}"
        assert (max(u_decl) - min(u_decl)) < (max(u_whole) - min(u_whole))
    # the response-time win grows with skew (hot-drive queueing explodes)
    gain = {
        s: out[("interleaved", s)][0] / out[("striped", s)][0]
        for s in (0.0, 0.8, 1.4)
    }
    assert gain[1.4] > gain[0.0]

    write_table(
        results_dir, "e4_declustering",
        "E4: whole-block vs declustered placement, open system at "
        f"{ARRIVAL_RATE:.0f} tx/s of {BLOCK_BYTES // 1024} KB block reads, 4 drives",
        rows,
    )
