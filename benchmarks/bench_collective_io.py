"""X1 (extension) — two-phase collective I/O vs independent strided reads.

The optimization the paper's organizations led to (Bridge tools ->
PASSION -> MPI-IO collective buffering): when each process's piece of a
shared transfer is small and strided (the IS internal view), reading
contiguous *file domains* and redistributing in memory beats issuing the
strided requests directly.

Swept over records-per-block (the stride granularity): fine-grained
striding is where collective wins; for PS (contiguous partitions) the
two-phase detour buys nothing — the crossover the cost model predicts.
"""

import numpy as np
import pytest

from repro import Environment, build_parallel_fs
from repro.collective import CollectiveIO
from repro.devices import DiskGeometry

from conftest import write_table

RECORD = 1024
N_RECORDS = 2048
P = 8
GEO = DiskGeometry(block_size=4096, blocks_per_cylinder=16, cylinders=512)


def setup_file(env, org, rpb):
    pfs = build_parallel_fs(env, 4, geometry=GEO)
    f = pfs.create(
        "coll", org, n_records=N_RECORDS, record_size=RECORD,
        records_per_block=rpb, n_processes=P, layout="striped",
        stripe_unit=65536,
    )

    def fill():
        yield from f.global_view().write(
            np.zeros((N_RECORDS, RECORD), dtype=np.uint8)
        )

    env.run(env.process(fill()))
    return f


def run_independent(org, rpb):
    env = Environment()
    f = setup_file(env, org, rpb)
    start = env.now
    # Natural request sizes: an IS process is limited to one block per
    # contiguous transfer (its blocks are strided); a PS process owns a
    # contiguous partition and fetches it in one sweep.
    def worker(q):
        h = f.internal_view(q)
        chunk = rpb if org == "IS" else h.n_local_records
        while not h.eof:
            yield from h.read_next(chunk)

    def driver():
        yield env.all_of([env.process(worker(q)) for q in range(P)])

    env.run(env.process(driver()))
    return env.now - start


def run_collective(org, rpb):
    env = Environment()
    f = setup_file(env, org, rpb)
    coll = CollectiveIO(f)
    start = env.now

    def driver():
        yield from coll.read_all()

    env.run(env.process(driver()))
    return env.now - start, coll.last_exchange_bytes


def run_experiment():
    out = {}
    for rpb in (1, 4, 16):
        out[("IS", rpb, "independent")] = (run_independent("IS", rpb), None)
        t, xb = run_collective("IS", rpb)
        out[("IS", rpb, "collective")] = (t, xb)
    out[("PS", 4, "independent")] = (run_independent("PS", 4), None)
    t, xb = run_collective("PS", 4)
    out[("PS", 4, "collective")] = (t, xb)
    return out


@pytest.mark.benchmark(group="extension")
def test_x1_two_phase_collective(benchmark, results_dir):
    out = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for (org, rpb, mode), (t, xb) in out.items():
        extra = f"  exchange={xb / 1024:7.0f} KB" if xb is not None else ""
        rows.append(
            f"{org:<3s} rpb={rpb:<3d} {mode:<12s} elapsed={t * 1e3:9.1f} ms{extra}"
        )

    # fine-grained IS striding: collective wins big
    assert out[("IS", 1, "collective")][0] < out[("IS", 1, "independent")][0] * 0.5
    assert out[("IS", 4, "collective")][0] < out[("IS", 4, "independent")][0]
    # the gap narrows as blocks coarsen (independent requests get bigger)
    gain = {
        rpb: out[("IS", rpb, "independent")][0] / out[("IS", rpb, "collective")][0]
        for rpb in (1, 4, 16)
    }
    assert gain[1] > gain[4] > gain[16] * 0.999
    # PS: partitions are already contiguous; two-phase buys ~nothing
    ps_ratio = (
        out[("PS", 4, "collective")][0] / out[("PS", 4, "independent")][0]
    )
    assert ps_ratio > 0.8

    write_table(
        results_dir, "x1_collective",
        f"X1 (extension): two-phase collective read, {P} processes, "
        f"{N_RECORDS} x {RECORD} B records, 4 drives",
        rows,
    )
